"""Table I — BT reduction without NoC.

10 000 kernel-sized packets (25 weights padded to 4 flits of 8 values,
Fig. 2) built from real weights; BTs measured between consecutive flits
of the stream.  Four configurations: float-32 / fixed-8 x random /
trained weights, baseline vs '1'-count descending ordering.

Paper values: 20.38 % (f32 random), 27.70 % (fx8 random),
18.92 % (f32 trained), 55.71 % (fx8 trained).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.summary import ReductionRow, format_table
from repro.workloads.packets import build_packets, measure_stream
from repro.workloads.streams import (
    random_weights,
    trained_lenet_weights,
    words_for_format,
)

N_PACKETS = 10_000
KERNEL = 25
VALUES_PER_FLIT = 8

PAPER_ROWS = {
    "Float-32 random": (113.27, 90.18, 20.38),
    "Fixed-8 random": (31.01, 22.42, 27.70),
    "Float-32 trained": (112.80, 91.46, 18.92),
    "Fixed-8 trained": (30.55, 13.73, 55.71),
}


def run_config(values: np.ndarray, fmt_name: str) -> ReductionRow:
    words, fmt = words_for_format(values, fmt_name)
    base = build_packets(
        words, N_PACKETS, VALUES_PER_FLIT, fmt.width, kernel_size=KERNEL
    )
    ordered = build_packets(
        words,
        N_PACKETS,
        VALUES_PER_FLIT,
        fmt.width,
        kernel_size=KERNEL,
        ordered=True,
    )
    label = f"{'Float-32' if fmt_name == 'float32' else 'Fixed-8'}"
    return ReductionRow(
        label=label,
        flit_bits=base.flit_bits,
        baseline=measure_stream(base).bt_per_flit,
        ordered=measure_stream(ordered).bt_per_flit,
    )


@pytest.fixture(scope="module")
def weight_pools():
    return {
        "random": random_weights(40_000, seed=3),
        "trained": trained_lenet_weights(),
    }


def test_table1_no_noc(benchmark, record_result, weight_pools):
    def run():
        rows = []
        for source in ("random", "trained"):
            for fmt in ("float32", "fixed8"):
                row = run_config(weight_pools[source], fmt)
                rows.append(
                    ReductionRow(
                        label=f"{row.label} {source}",
                        flit_bits=row.flit_bits,
                        baseline=row.baseline,
                        ordered=row.ordered,
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    by_label = {r.label: r for r in rows}

    # --- shape assertions (paper's qualitative claims) -----------------
    for row in rows:
        assert row.reduction > 0, f"{row.label}: ordering must reduce BT"
    # Fixed-8 trained shows the largest reduction (paper: 55.71 %).
    best = max(rows, key=lambda r: r.reduction)
    assert best.label == "Fixed-8 trained"
    assert best.reduction > 40.0
    # Fixed-8 responds more strongly than float-32 on the same source.
    assert (
        by_label["Fixed-8 random"].reduction
        > by_label["Float-32 random"].reduction * 0.8
    )
    # Baselines land near the paper's absolute BT/flit levels.
    assert 90 < by_label["Float-32 random"].baseline < 140
    assert 25 < by_label["Fixed-8 random"].baseline < 40

    lines = [
        format_table(rows, "Table I: BT reduction without NoC (measured)"),
        "",
        "Paper reference:",
    ]
    for label, (base, ordered, red) in PAPER_ROWS.items():
        lines.append(
            f"  {label:<20} baseline {base:>7.2f}  ordered {ordered:>7.2f}"
            f"  reduction {red:>6.2f}%"
        )
    record_result("table1_no_noc", "\n".join(lines))
