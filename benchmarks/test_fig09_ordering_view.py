"""Fig. 9 — '1'-bit counts per flit before and after ordering.

Renders the per-flit, per-lane popcount grid of a trained-weight
stream (8 weights per flit) in the paper's layout: rows are flit ids,
squares are lane counts.  After ordering, the counts must descend
monotonically through the stream.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.packets import build_packets, ones_count_grid
from repro.workloads.streams import trained_lenet_weights, words_for_format

N_SHOW = 26  # flit rows displayed, as in the paper's figure


def render_grid(grid: np.ndarray, title: str) -> str:
    lines = [title]
    for flit_id in range(min(N_SHOW, grid.shape[0])):
        cells = " ".join(f"{c:>2d}" for c in grid[flit_id])
        lines.append(f"flit {flit_id:>3d} | {cells}")
    return "\n".join(lines)


def test_fig09_ordering_view(benchmark, record_result):
    words, fmt = words_for_format(trained_lenet_weights(), "fixed8")

    def run():
        base = build_packets(words, 2000, 8, fmt.width, kernel_size=25)
        ordered = build_packets(
            words, 2000, 8, fmt.width, kernel_size=25, ordered=True
        )
        return ones_count_grid(base), ones_count_grid(ordered)

    grid_base, grid_ordered = benchmark.pedantic(run, rounds=1)

    # After ordering the flat count sequence is non-increasing.
    flat = grid_ordered.reshape(-1)
    assert (np.diff(flat) <= 0).all()
    # The baseline is not sorted (counts fluctuate).
    assert (np.diff(grid_base.reshape(-1)) > 0).any()
    # Per-flit count spread shrinks dramatically after ordering.
    spread_base = float(np.ptp(grid_base[:N_SHOW], axis=1).mean())
    spread_ordered = float(np.ptp(grid_ordered[:N_SHOW], axis=1).mean())
    assert spread_ordered < spread_base

    text = "\n\n".join(
        [
            render_grid(grid_base, "Fig. 9 (left): before ordering"),
            render_grid(grid_ordered, "Fig. 9 (right): after ordering"),
            f"mean per-flit count spread: {spread_base:.2f} -> "
            f"{spread_ordered:.2f}",
        ]
    )
    record_result("fig09_ordering_view", text)
