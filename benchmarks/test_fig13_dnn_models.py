"""Fig. 13 — normalised BTs for different DNN models.

Runs LeNet and the DarkNet-like model (64x64x3 input, Sec. V-B) on the
default 4x4/MC2 NoC for O0/O1/O2 and reports BTs normalised to the O0
baseline.  Paper shape: separated-ordering achieves the highest
reduction for both models, up to 35.93 % (LeNet) and 40.85 % (DarkNet)
for fixed-8.
"""

from __future__ import annotations

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import run_model_on_noc
from repro.analysis.summary import format_series
from repro.ordering.strategies import OrderingMethod

MAX_TASKS = 24


@pytest.mark.parametrize("data_format", ["float32", "fixed8"])
def test_fig13_dnn_models(
    benchmark,
    record_result,
    trained_lenet,
    lenet_image,
    darknet_model,
    darknet_image,
    data_format,
):
    workloads = {
        "LeNet": (trained_lenet, lenet_image),
        "DarkNet": (darknet_model, darknet_image),
    }

    def run():
        series: dict[str, dict[str, float]] = {}
        for name, (model, image) in workloads.items():
            raw = {}
            for method in OrderingMethod:
                cfg = AcceleratorConfig(
                    data_format=data_format,
                    ordering=method,
                    max_tasks_per_layer=MAX_TASKS,
                )
                result = run_model_on_noc(cfg, model, image)
                assert result.all_verified, f"{name} {method.value}"
                raw[method.value] = float(result.total_bit_transitions)
            series[name] = raw
        return series

    series = benchmark.pedantic(run, rounds=1)

    normalised: dict[str, dict[str, float]] = {}
    for name, values in series.items():
        o0 = values["O0"]
        normalised[name] = {k: v / o0 for k, v in values.items()}
        # Separated-ordering achieves the highest reduction (Fig. 13).
        assert normalised[name]["O2"] < normalised[name]["O1"] < 1.0

    lines = [
        format_series(
            normalised,
            f"Fig. 13 ({data_format}): normalised BTs "
            f"(O0 = 1.0, {MAX_TASKS} tasks/layer)",
        ),
        "",
        "Paper: up to 35.93% reduction for LeNet, 40.85% for DarkNet "
        "(fixed-8, separated-ordering).",
    ]
    record_result(f"fig13_dnn_models_{data_format}", "\n".join(lines))
