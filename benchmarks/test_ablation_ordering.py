"""Ablations on the ordering transformation itself (DESIGN.md §6).

* sort direction — descending (paper) vs ascending vs random shuffle;
* ordering scope — per-packet vs window vs whole stream;
* comparison mode — consecutive-stream vs random flit pairs;
* flit size — 4/8/16/32 values per flit.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.summary import reduction_rate
from repro.bits.popcount import popcount_array
from repro.bits.transitions import transition_matrix
from repro.workloads.packets import (
    ComparisonMode,
    OrderingScope,
    build_packets,
    measure_stream,
)
from repro.workloads.streams import trained_lenet_weights, words_for_format

N_PACKETS = 3000


def stream_bt(words, **kwargs) -> float:
    stream = build_packets(words, N_PACKETS, 8, 8, kernel_size=25, **kwargs)
    return measure_stream(stream).bt_per_flit


def test_ablation_sort_direction(benchmark, record_result):
    words, _ = words_for_format(trained_lenet_weights(), "fixed8")
    words = np.asarray(words)

    def run():
        base = build_packets(words, N_PACKETS, 8, 8, kernel_size=25)
        flat = base.flits.reshape(-1)
        counts = popcount_array(flat).astype(np.int64)
        descending = flat[np.argsort(-counts, kind="stable")]
        ascending = flat[np.argsort(counts, kind="stable")]
        shuffled = flat.copy()
        np.random.default_rng(0).shuffle(shuffled)
        out = {}
        for name, seq in (
            ("baseline", flat),
            ("descending", descending),
            ("ascending", ascending),
            ("shuffled", shuffled),
        ):
            out[name] = float(transition_matrix(seq.reshape(-1, 8)).mean())
        return out

    bt = benchmark.pedantic(run, rounds=1)
    # Both monotone orders beat the shuffle and the baseline; the
    # objective is symmetric so they are nearly identical.
    assert bt["descending"] < bt["shuffled"]
    assert bt["ascending"] < bt["shuffled"]
    assert abs(bt["descending"] - bt["ascending"]) < 0.1 * bt["descending"]
    assert bt["descending"] < bt["baseline"]
    record_result(
        "ablation_sort_direction",
        "Sort-direction ablation (fixed-8 trained, BT/flit):\n"
        + "\n".join(f"  {k:<11} {v:7.2f}" for k, v in bt.items())
        + "\n(descending ~= ascending: the proof's ordering, not the "
        "direction, is what matters)",
    )


def test_ablation_ordering_scope(benchmark, record_result):
    words, _ = words_for_format(trained_lenet_weights(), "fixed8")
    words = np.asarray(words)

    def run():
        out = {"baseline": stream_bt(words)}
        out["packet"] = stream_bt(
            words, ordered=True, scope=OrderingScope.PACKET
        )
        for window in (4, 16, 64):
            out[f"window{window}"] = stream_bt(
                words,
                ordered=True,
                scope=OrderingScope.WINDOW,
                window_packets=window,
            )
        out["stream"] = stream_bt(
            words, ordered=True, scope=OrderingScope.STREAM
        )
        return out

    bt = benchmark.pedantic(run, rounds=1)
    # Wider sort scope -> monotonically better (ordering-unit buffer
    # size is the deployment knob).
    assert bt["stream"] <= bt["window64"] <= bt["window4"]
    assert bt["stream"] < bt["baseline"]
    record_result(
        "ablation_ordering_scope",
        "Ordering-scope ablation (fixed-8 trained, BT/flit):\n"
        + "\n".join(f"  {k:<10} {v:7.2f}" for k, v in bt.items()),
    )


def test_ablation_comparison_mode(benchmark, record_result):
    words, _ = words_for_format(trained_lenet_weights(), "fixed8")
    words = np.asarray(words)

    def run():
        ordered = build_packets(
            words, N_PACKETS, 8, 8, kernel_size=25, ordered=True
        )
        base = build_packets(words, N_PACKETS, 8, 8, kernel_size=25)
        rng = np.random.default_rng(4)
        return {
            "stream": (
                measure_stream(base).bt_per_flit,
                measure_stream(ordered).bt_per_flit,
            ),
            "random_pairs": (
                measure_stream(
                    base, ComparisonMode.RANDOM_PAIRS, rng=rng
                ).bt_per_flit,
                measure_stream(
                    ordered, ComparisonMode.RANDOM_PAIRS, rng=rng
                ).bt_per_flit,
            ),
        }

    bt = benchmark.pedantic(run, rounds=1)
    stream_red = reduction_rate(*bt["stream"])
    random_red = reduction_rate(*bt["random_pairs"])
    # The win requires stream locality; random pairing erases most of it.
    assert stream_red > 25.0
    assert random_red < stream_red / 2
    record_result(
        "ablation_comparison_mode",
        "Comparison-mode ablation (fixed-8 trained):\n"
        f"  consecutive stream: {bt['stream'][0]:6.2f} -> "
        f"{bt['stream'][1]:6.2f} BT/flit ({stream_red:5.2f}% reduction)\n"
        f"  random flit pairs:  {bt['random_pairs'][0]:6.2f} -> "
        f"{bt['random_pairs'][1]:6.2f} BT/flit ({random_red:5.2f}% "
        "reduction)\n(wormhole switching provides the stream locality "
        "the method relies on)",
    )


def test_ablation_flit_size(benchmark, record_result):
    words, _ = words_for_format(trained_lenet_weights(), "fixed8")
    words = np.asarray(words)

    def run():
        out = {}
        for vpf in (4, 8, 16, 32):
            base = build_packets(
                words, N_PACKETS, vpf, 8, kernel_size=25
            )
            ordered = build_packets(
                words, N_PACKETS, vpf, 8, kernel_size=25, ordered=True
            )
            out[vpf] = (
                measure_stream(base).bt_per_flit,
                measure_stream(ordered).bt_per_flit,
            )
        return out

    bt = benchmark.pedantic(run, rounds=1)
    lines = ["Flit-size ablation (fixed-8 trained):"]
    for vpf, (base, ordered) in bt.items():
        red = reduction_rate(base, ordered)
        assert red > 10.0
        lines.append(
            f"  {vpf:>2} values/flit ({vpf * 8:>3} bits): "
            f"{base:7.2f} -> {ordered:7.2f} BT/flit ({red:5.2f}%)"
        )
    record_result("ablation_flit_size", "\n".join(lines))
