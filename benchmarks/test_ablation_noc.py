"""NoC-level ablations (DESIGN.md §6).

* fill order — column-major deal (Fig. 3) vs row-major refill for the
  ordered variants;
* separated-ordering index overhead — in-band recovery indices vs the
  paper's side-band minimal index;
* routing — X-Y (paper) vs Y-X.
"""

from __future__ import annotations

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import run_model_on_noc
from repro.analysis.summary import reduction_rate
from repro.ordering.strategies import FillOrder, OrderingMethod

MAX_TASKS = 24


def run_cfg(model, image, **kwargs) -> float:
    defaults = dict(
        data_format="fixed8", max_tasks_per_layer=MAX_TASKS, n_mcs=2
    )
    defaults.update(kwargs)
    cfg = AcceleratorConfig(**defaults)
    result = run_model_on_noc(cfg, model, image)
    assert result.all_verified
    return float(result.total_bit_transitions)


def test_ablation_fill_order(
    benchmark, record_result, trained_lenet, lenet_image
):
    def run():
        base = run_cfg(
            trained_lenet, lenet_image, ordering=OrderingMethod.BASELINE
        )
        deal = run_cfg(
            trained_lenet,
            lenet_image,
            ordering=OrderingMethod.AFFILIATED,
            fill_order=FillOrder.COLUMN_MAJOR_DEAL,
        )
        row = run_cfg(
            trained_lenet,
            lenet_image,
            ordering=OrderingMethod.AFFILIATED,
            fill_order=FillOrder.ROW_MAJOR,
        )
        return base, deal, row

    base, deal, row = benchmark.pedantic(run, rounds=1)
    # Both placements of the sorted sequence beat the baseline; the
    # deal (the proof's interleaving) is at least as good as row-major.
    assert deal < base
    assert row < base
    assert deal <= row * 1.02
    record_result(
        "ablation_fill_order",
        "Fill-order ablation (O1, fixed-8 trained LeNet, total BTs):\n"
        f"  baseline (O0):        {base:12.0f}\n"
        f"  column-major deal:    {deal:12.0f} "
        f"({reduction_rate(base, deal):5.2f}%)\n"
        f"  row-major refill:     {row:12.0f} "
        f"({reduction_rate(base, row):5.2f}%)",
    )


def test_ablation_index_overhead(
    benchmark, record_result, trained_lenet, lenet_image
):
    def run():
        base = run_cfg(
            trained_lenet, lenet_image, ordering=OrderingMethod.BASELINE
        )
        sideband = run_cfg(
            trained_lenet, lenet_image, ordering=OrderingMethod.SEPARATED
        )
        inband = run_cfg(
            trained_lenet,
            lenet_image,
            ordering=OrderingMethod.SEPARATED,
            include_index_payload=True,
        )
        return base, sideband, inband

    base, sideband, inband = benchmark.pedantic(run, rounds=1)
    red_side = reduction_rate(base, sideband)
    red_in = reduction_rate(base, inband)
    # Shipping the recovery indices in-band erodes the win — on the
    # narrow fixed-8 links (5-bit indices vs 8-bit words) it can erase
    # it entirely.  This is exactly why the paper keeps the index a
    # minimal side-band quantity and why O1 avoids it altogether.
    assert red_in < red_side
    assert red_side > 15.0
    record_result(
        "ablation_index_overhead",
        "Separated-ordering index-overhead ablation (fixed-8 trained):\n"
        f"  O0 baseline:            {base:12.0f} BTs\n"
        f"  O2, side-band index:    {sideband:12.0f} ({red_side:5.2f}%)\n"
        f"  O2, in-band index:      {inband:12.0f} ({red_in:5.2f}%)\n"
        "(in-band 5-bit indices on a 128-bit link add ~50% extra flits;\n"
        " the paper's side-band minimal index — or O1, which needs no\n"
        " index — avoids this cost)",
    )


def test_ablation_routing(
    benchmark, record_result, trained_lenet, lenet_image
):
    def run():
        out = {}
        for routing in ("xy", "yx"):
            out[routing] = {
                "O0": run_cfg(
                    trained_lenet,
                    lenet_image,
                    ordering=OrderingMethod.BASELINE,
                    routing=routing,
                ),
                "O2": run_cfg(
                    trained_lenet,
                    lenet_image,
                    ordering=OrderingMethod.SEPARATED,
                    routing=routing,
                ),
            }
        return out

    bt = benchmark.pedantic(run, rounds=1)
    # The ordering win is routing-independent.
    for routing, values in bt.items():
        assert values["O2"] < values["O0"]
    record_result(
        "ablation_routing",
        "Routing ablation (fixed-8 trained LeNet, total BTs):\n"
        + "\n".join(
            f"  {routing}: O0 {values['O0']:12.0f}  O2 {values['O2']:12.0f}"
            f"  ({reduction_rate(values['O0'], values['O2']):5.2f}%)"
            for routing, values in bt.items()
        ),
    )
