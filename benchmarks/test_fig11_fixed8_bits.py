"""Fig. 11 — fixed-8 per-bit-position statistics.

Same analysis as Fig. 10 for the 8-bit fixed-point words.  The paper's
headline observation: the ordered-vs-baseline transition gap is much
larger than for float-32, especially for trained weights (matching the
55.71 % Table I reduction).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distribution import analyze_stream
from repro.bits.popcount import popcount_array
from repro.workloads.streams import (
    random_weights,
    trained_lenet_weights,
    words_for_format,
)


def ordered_stream(words: np.ndarray) -> np.ndarray:
    counts = popcount_array(words)
    return words[np.argsort(-counts.astype(np.int64), kind="stable")]


def test_fig11_fixed8_bits(benchmark, record_result):
    pools = {
        "random": random_weights(30_000, seed=3),
        "trained": trained_lenet_weights(),
    }

    def run():
        out = {}
        for name, values in pools.items():
            words, _ = words_for_format(values, "fixed8")
            words = np.asarray(words)
            out[f"{name} baseline"] = analyze_stream(words, 8)
            out[f"{name} ordered"] = analyze_stream(ordered_stream(words), 8)
        return out

    stats = benchmark.pedantic(run, rounds=1)

    gaps = {}
    for name in ("random", "trained"):
        base = stats[f"{name} baseline"].transition_probability.sum()
        ordered = stats[f"{name} ordered"].transition_probability.sum()
        assert ordered < base
        gaps[name] = (base - ordered) / base

    # The trained gap dominates (the "distinct gap" of Fig. 11
    # bottom-right aligning with Table I's 55.71 %).
    assert gaps["trained"] > gaps["random"]
    assert gaps["trained"] > 0.3

    lines = ["Fig. 11: fixed-8 bit-position statistics (MSB->LSB)"]
    for name, stat in stats.items():
        one = " ".join(f"{p:4.2f}" for p in stat.one_probability)
        tr = " ".join(f"{p:4.2f}" for p in stat.transition_probability)
        lines.append(f"{name}\n  P(bit=1): {one}\n  P(flip) : {tr}")
    lines.append(
        f"relative transition gap: random {100 * gaps['random']:.1f}%  "
        f"trained {100 * gaps['trained']:.1f}%"
    )
    record_result("fig11_fixed8_bits", "\n".join(lines))
