"""Substrate ablation: virtual channels and buffer depth.

The paper fixes 4 VCs x 4-flit buffers; this ablation sweeps both to
show (a) the BT results are structural-parameter-robust and (b) the
simulator exhibits the expected latency behaviour (more VCs/deeper
buffers relieve head-of-line blocking under load).
"""

from __future__ import annotations

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import run_model_on_noc
from repro.analysis.summary import reduction_rate
from repro.ordering.strategies import OrderingMethod

MAX_TASKS = 16


def test_ablation_vc_buffers(benchmark, record_result, trained_lenet, lenet_image):
    sweeps = [(1, 4), (2, 4), (4, 4), (4, 1), (4, 8)]

    def run():
        out = {}
        for n_vcs, depth in sweeps:
            row = {}
            for method in (OrderingMethod.BASELINE, OrderingMethod.SEPARATED):
                cfg = AcceleratorConfig(
                    data_format="fixed8",
                    ordering=method,
                    max_tasks_per_layer=MAX_TASKS,
                    n_vcs=n_vcs,
                    vc_depth=depth,
                )
                result = run_model_on_noc(cfg, trained_lenet, lenet_image)
                assert result.all_verified
                row[method.value] = (
                    result.total_bit_transitions,
                    result.total_cycles,
                )
            out[(n_vcs, depth)] = row
        return out

    data = benchmark.pedantic(run, rounds=1)

    lines = ["VC/buffer ablation (fixed-8 trained LeNet):"]
    for (n_vcs, depth), row in data.items():
        red = reduction_rate(row["O0"][0], row["O2"][0])
        lines.append(
            f"  {n_vcs} VCs x {depth}-flit: O0 {row['O0'][0]:>8d} BTs "
            f"{row['O0'][1]:>6d} cyc | O2 {row['O2'][0]:>8d} BTs "
            f"{row['O2'][1]:>6d} cyc | reduction {red:5.2f}%"
        )
        # The ordering win is robust to the structural parameters.
        assert red > 15.0
    record_result("ablation_vc_buffers", "\n".join(lines))
