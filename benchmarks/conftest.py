"""Shared fixtures and result recording for the benchmark harness.

Every bench regenerates one table or figure of the paper and writes its
paper-style output both to stdout and to ``benchmarks/results/<name>.txt``
so EXPERIMENTS.md can reference the recorded numbers.  The workload
definitions live in :mod:`repro.workloads.figures`, shared with the
golden regression suite so the two cannot drift apart.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.workloads.figures import (
    figure_darknet_image,
    figure_darknet_model,
    figure_lenet_image,
    figure_trained_lenet,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def record_result():
    """Write a bench's rendered table to benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record


@pytest.fixture(scope="session")
def trained_lenet():
    """LeNet trained on the synthetic digit task (cached per session)."""
    return figure_trained_lenet()


@pytest.fixture(scope="session")
def lenet_image():
    return figure_lenet_image()


@pytest.fixture(scope="session")
def darknet_model():
    return figure_darknet_model()


@pytest.fixture(scope="session")
def darknet_image():
    return figure_darknet_image()
