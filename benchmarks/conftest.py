"""Shared fixtures and result recording for the benchmark harness.

Every bench regenerates one table or figure of the paper and writes its
paper-style output both to stdout and to ``benchmarks/results/<name>.txt``
so EXPERIMENTS.md can reference the recorded numbers.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.dnn.datasets import synthetic_digits, synthetic_shapes
from repro.dnn.models import DarkNetSlim
from repro.workloads.streams import trained_lenet_model

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def record_result():
    """Write a bench's rendered table to benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record


@pytest.fixture(scope="session")
def trained_lenet():
    """LeNet trained on the synthetic digit task (cached per session)."""
    return trained_lenet_model()


@pytest.fixture(scope="session")
def lenet_image():
    return synthetic_digits(1, seed=5).images[0]


@pytest.fixture(scope="session")
def darknet_model():
    return DarkNetSlim(rng=np.random.default_rng(21))


@pytest.fixture(scope="session")
def darknet_image():
    return synthetic_shapes(1, seed=5).images[0]
