"""Table II — synthesis results of the ordering unit vs the router.

Regenerates the paper's area/power comparison from the calibrated
component models (see DESIGN.md §5 for the substitution note: the
structural estimator is anchored to the paper's Synopsys DC constants).
"""

from __future__ import annotations

import pytest

from repro.hardware.ordering_unit import OrderingUnitDesign, RouterDesign
from repro.hardware.synthesis import format_table2, model_table2, paper_table2


def test_table2_synthesis(benchmark, record_result):
    model = benchmark.pedantic(model_table2, rounds=5)
    paper = paper_table2()

    for key in ("ordering_unit", "router"):
        assert model[key].area_kge == pytest.approx(
            paper[key].area_kge, rel=0.01
        )
        assert model[key].power_one_mw == pytest.approx(
            paper[key].power_one_mw, rel=0.01
        )
    # The headline overhead claim: 4 ordering units cost a small
    # fraction of the 64-router NoC.
    unit_total = model["ordering_unit"].power_many_mw
    router_total = model["router"].power_many_mw
    assert unit_total < router_total / 100

    text = format_table2(paper, model)
    unit = OrderingUnitDesign()
    router = RouterDesign()
    text += (
        f"\n\nStructural breakdown (model):"
        f"\n  unit: popcount {unit.popcount_gates():.0f} GE, "
        f"registers {unit.register_gates():.0f} GE, "
        f"sorter {unit.sorter_gates():.0f} GE"
        f"\n  router: buffers {router.buffer_gates():.0f} GE, "
        f"crossbar {router.crossbar_gates():.0f} GE, "
        f"allocators {router.allocator_gates():.0f} GE"
        f"\n  ordering cycles per 16-value flit batch: "
        f"{unit.ordering_cycles()}"
    )
    record_result("table2_synthesis", text)
