"""Fig. 1 — Expectation of BT between two 32-bit numbers.

Regenerates the analytic (x, y) -> E surface of Eq. (2) and validates
it against Monte-Carlo sampling on a grid of representative points.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.expectation import (
    expectation_surface,
    monte_carlo_expected_transitions,
)


def render_surface(surface: np.ndarray, step: int = 4) -> str:
    lines = ["Fig. 1: E[BT] between two 32-bit numbers (sampled grid)"]
    counts = list(range(0, 33, step))
    header = "x\\y " + "".join(f"{y:>7}" for y in counts)
    lines.append(header)
    for x in counts:
        row = f"{x:<4}" + "".join(f"{surface[x, y]:>7.2f}" for y in counts)
        lines.append(row)
    return "\n".join(lines)


def test_fig01_expectation_surface(benchmark, record_result):
    surface = benchmark.pedantic(
        expectation_surface, args=(32,), rounds=3, iterations=1
    )
    # Shape checks from the analytic form.
    assert surface[0, 0] == 0.0 and surface[32, 32] == 0.0
    assert surface[0, 32] == 32.0 and surface[32, 0] == 32.0
    # E = x + y - xy/16 is monotone in y with slope 1 - x/16: rows
    # with x < 16 are minimised at y = 0, rows with x > 16 at y = 32,
    # and the x = 16 row is flat at 16 — the saddle structure of Fig. 1.
    assert surface[8].argmin() == 0
    assert surface[24].argmin() == 32
    np.testing.assert_allclose(surface[16], 16.0)
    # Monte-Carlo agreement on a coarse grid.
    rng = np.random.default_rng(1)
    worst = 0.0
    for x in (0, 8, 16, 24, 32):
        for y in (0, 16, 32):
            emp = monte_carlo_expected_transitions(
                x, y, trials=2000, rng=rng
            )
            worst = max(worst, abs(emp - surface[x, y]))
    assert worst < 0.5
    text = render_surface(surface)
    text += f"\n\nMonte-Carlo max |error| over grid: {worst:.3f} bits"
    record_result("fig01_expectation", text)
