"""Ablation: layer-barrier vs pipelined execution.

The paper hides ordering latency in the layer-level interval
(Sec. IV-C-3), which presumes layers execute with a barrier.  This
ablation compares the barrier schedule against free pipelining of all
layers' packets: BT totals stay comparable (same traffic) while the
pipelined schedule compresses the cycle count — and the ordering win is
schedule-independent.
"""

from __future__ import annotations

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import run_model_on_noc
from repro.analysis.summary import reduction_rate
from repro.ordering.strategies import OrderingMethod

MAX_TASKS = 24


def test_ablation_pipeline(benchmark, record_result, trained_lenet, lenet_image):
    def run():
        out = {}
        for barrier in (True, False):
            for method in (OrderingMethod.BASELINE, OrderingMethod.SEPARATED):
                cfg = AcceleratorConfig(
                    data_format="fixed8",
                    ordering=method,
                    max_tasks_per_layer=MAX_TASKS,
                    layer_barrier=barrier,
                )
                result = run_model_on_noc(cfg, trained_lenet, lenet_image)
                assert result.all_verified
                key = ("barrier" if barrier else "pipelined", method.value)
                out[key] = (
                    result.total_bit_transitions,
                    result.total_cycles,
                )
        return out

    data = benchmark.pedantic(run, rounds=1)

    red_barrier = reduction_rate(
        data[("barrier", "O0")][0], data[("barrier", "O2")][0]
    )
    red_pipelined = reduction_rate(
        data[("pipelined", "O0")][0], data[("pipelined", "O2")][0]
    )
    # Pipelining compresses latency.
    assert data[("pipelined", "O0")][1] <= data[("barrier", "O0")][1]
    # The ordering win survives packet interleaving across layers.
    assert red_pipelined > 15.0
    assert abs(red_pipelined - red_barrier) < 15.0

    lines = ["Barrier-vs-pipeline ablation (fixed-8 trained LeNet):"]
    for (schedule, method), (bts, cycles) in data.items():
        lines.append(
            f"  {schedule:<10} {method}: {bts:>9d} BTs  {cycles:>6d} cycles"
        )
    lines.append(
        f"  O2 reduction: barrier {red_barrier:.2f}%  "
        f"pipelined {red_pipelined:.2f}%"
    )
    record_result("ablation_pipeline", "\n".join(lines))
