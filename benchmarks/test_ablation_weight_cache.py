"""Extension study: weight-stationary dataflow + ordering.

Conv filters are reused at every spatial position; a weight-stationary
PE caches each (layer, group, chunk) weight block so repeat tasks ship
input-only packets.  This bench measures how the paper's ordering
composes with the dataflow that removes most weight traffic: the
absolute BT level drops with caching, and the ordering win persists on
the remaining (input-dominated) traffic.
"""

from __future__ import annotations

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import run_model_on_noc
from repro.analysis.summary import reduction_rate
from repro.ordering.strategies import OrderingMethod

MAX_TASKS = 24


def test_ablation_weight_cache(benchmark, record_result, trained_lenet, lenet_image):
    def run():
        out = {}
        for cache in (False, True):
            for method in (OrderingMethod.BASELINE, OrderingMethod.SEPARATED):
                cfg = AcceleratorConfig(
                    data_format="fixed8",
                    ordering=method,
                    max_tasks_per_layer=MAX_TASKS,
                    mapping_policy="group_affine",
                    weight_cache=cache,
                )
                result = run_model_on_noc(cfg, trained_lenet, lenet_image)
                assert result.all_verified
                out[(cache, method.value)] = (
                    result.total_bit_transitions,
                    result.flit_hops,
                )
        return out

    data = benchmark.pedantic(run, rounds=1)

    # Caching removes weight traffic outright.
    assert data[(True, "O0")][1] < data[(False, "O0")][1]
    assert data[(True, "O0")][0] < data[(False, "O0")][0]
    # Ordering still wins on the remaining traffic.
    red_nocache = reduction_rate(
        data[(False, "O0")][0], data[(False, "O2")][0]
    )
    red_cache = reduction_rate(data[(True, "O0")][0], data[(True, "O2")][0])
    assert red_cache > 10.0

    lines = [
        "Weight-stationary extension (fixed-8 trained LeNet, "
        "group-affine mapping):"
    ]
    for (cache, method), (bts, hops) in data.items():
        tag = "cached " if cache else "no-cache"
        lines.append(
            f"  {tag} {method}: {bts:>9d} BTs  {hops:>7d} flit-hops"
        )
    lines.append(
        f"  O2 reduction: no-cache {red_nocache:.2f}%  "
        f"cached {red_cache:.2f}%"
    )
    record_result("ablation_weight_cache", "\n".join(lines))
