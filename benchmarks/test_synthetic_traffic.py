"""NoC validation under standard synthetic traffic patterns.

Not a paper figure — a substrate-validation bench: the NoC must deliver
all packets under uniform/transpose/complement/hotspot patterns, BT
totals must track payload entropy (zero payloads -> zero BTs), and the
hotspot pattern must exhibit the expected congestion signature.

The patterns execute through the campaign engine's ``synthetic`` job
kind — the same dispatch ``repro sweep --kind synthetic`` uses — so
this bench also pins the engine's second workload end to end: grid
expansion, cached replay, and the per-record stats the report layer
reads.
"""

from __future__ import annotations

from repro.experiments import CampaignRunner, ResultCache, SweepSpec
from repro.noc.traffic import TrafficPattern

# Pinned traffic seed + NoC shape, matching the pre-campaign bench.
BASE = {
    "n_packets": 150,
    "seed": 7,
    "width": 4,
    "height": 4,
    "link_width": 128,
}


def test_synthetic_traffic(benchmark, record_result, tmp_path):
    patterns = SweepSpec(
        name="synthetic_patterns",
        kind="synthetic",
        base={**BASE, "injection_window": 150},
        axes={"pattern": [p.value for p in TrafficPattern]},
    )
    zero_payload = SweepSpec(
        name="synthetic_zero",
        kind="synthetic",
        base={**BASE, "payload": "zero"},
        axes={"pattern": ["uniform"]},
    )
    runner = CampaignRunner(cache=ResultCache(tmp_path / "cache"), workers=1)

    def run():
        out = {}
        for spec in (patterns, zero_payload):
            campaign = runner.run(spec)
            assert not campaign.errors, campaign.summary()
            for record in campaign.records:
                pattern = record["config"]["traffic"]["pattern"]
                name = (
                    "zero-payload"
                    if record["config"]["traffic"]["payload"] == "zero"
                    else pattern
                )
                out[name] = record["result"]
        return out

    stats = benchmark.pedantic(run, rounds=1)

    for name, s in stats.items():
        assert s["packets_delivered"] == 150, name
    assert stats["zero-payload"]["total_bit_transitions"] == 0
    assert (
        stats["hotspot"]["mean_packet_latency"]
        > stats["uniform"]["mean_packet_latency"]
    )

    # A replay of both grids must be served entirely from cache.
    for spec in (patterns, zero_payload):
        replay = runner.run(spec)
        assert (replay.hits, replay.misses) == (replay.n_jobs, 0)

    lines = ["Synthetic traffic validation (4x4 mesh, 128-bit links):"]
    for name, s in stats.items():
        lines.append(
            f"  {name:<14} delivered {s['packets_delivered']:>4}  "
            f"cycles {s['total_cycles']:>5}  "
            f"BTs {s['total_bit_transitions']:>8}  "
            f"mean latency {s['mean_packet_latency']:7.2f}"
        )
    record_result("synthetic_traffic", "\n".join(lines))
