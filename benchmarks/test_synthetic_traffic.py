"""NoC validation under standard synthetic traffic patterns.

Not a paper figure — a substrate-validation bench: the NoC must deliver
all packets under uniform/transpose/complement/hotspot patterns, BT
totals must track payload entropy (zero payloads -> zero BTs), and the
hotspot pattern must exhibit the expected congestion signature.
"""

from __future__ import annotations

from repro.noc.network import NoCConfig
from repro.noc.traffic import (
    SyntheticTrafficConfig,
    TrafficPattern,
    run_synthetic,
)

NOC = NoCConfig(width=4, height=4, link_width=128)


def test_synthetic_traffic(benchmark, record_result):
    def run():
        out = {}
        for pattern in TrafficPattern:
            config = SyntheticTrafficConfig(
                pattern=pattern,
                n_packets=150,
                injection_window=150,
                seed=7,
            )
            out[pattern.value] = run_synthetic(config, NOC)
        out["zero-payload"] = run_synthetic(
            SyntheticTrafficConfig(
                n_packets=150, payload="zero", seed=7
            ),
            NOC,
        )
        return out

    stats = benchmark.pedantic(run, rounds=1)

    for name, s in stats.items():
        assert s.packets_delivered == 150, name
    assert stats["zero-payload"].total_bit_transitions == 0
    assert (
        stats["hotspot"].mean_latency > stats["uniform"].mean_latency
    )

    lines = ["Synthetic traffic validation (4x4 mesh, 128-bit links):"]
    for name, s in stats.items():
        lines.append(
            f"  {name:<14} delivered {s.packets_delivered:>4}  "
            f"cycles {s.cycles:>5}  BTs {s.total_bit_transitions:>8}  "
            f"mean latency {s.mean_latency:7.2f}"
        )
    record_result("synthetic_traffic", "\n".join(lines))
