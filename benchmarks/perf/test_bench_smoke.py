"""Smoke coverage for the perf harness (`repro bench`).

Runs the reduced (--smoke) grids for both cores in-process, checks the
BENCH JSON schema, and asserts the machine-independent fast-forward
invariant — never wall-clock thresholds, which are machine-dependent
and flaky by construction.
"""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    BENCH_SCHEMA,
    WORKLOADS,
    check_invariants,
    run_bench,
)

_ENTRY_KEYS = {
    "name",
    "wall_seconds",
    "simulated_cycles",
    "steps_executed",
    "flit_hops",
    "bit_transitions",
    "cycles_per_second",
    "flit_hops_per_second",
}


@pytest.fixture(scope="module")
def smoke_payloads(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench")
    payloads = {}
    for core in ("event", "stepped"):
        payloads[core] = run_bench(
            f"smoke-{core}",
            core=core,
            smoke=True,
            out_path=out / f"BENCH_smoke-{core}.json",
        )
    return out, payloads


class TestBenchSmoke:
    def test_schema(self, smoke_payloads):
        _, payloads = smoke_payloads
        for core, payload in payloads.items():
            assert payload["schema"] == BENCH_SCHEMA
            assert payload["core"] == core
            assert payload["smoke"] is True
            assert payload["peak_rss_bytes"] > 0
            assert {e["name"] for e in payload["workloads"]} == set(
                WORKLOADS
            )
            for entry in payload["workloads"]:
                assert set(entry) == _ENTRY_KEYS
                assert entry["wall_seconds"] >= 0
            assert set(payload["totals"]) == _ENTRY_KEYS - {"name"}

    def test_written_file_round_trips(self, smoke_payloads):
        out, payloads = smoke_payloads
        on_disk = json.loads(
            (out / "BENCH_smoke-event.json").read_text()
        )
        assert on_disk == payloads["event"]

    def test_cores_simulate_identical_cycles_and_hops(
        self, smoke_payloads
    ):
        # The bit-identity acceptance at harness level: both cores
        # simulate the same cycles, hops, and BTs on every workload.
        _, payloads = smoke_payloads
        for ev, st in zip(
            payloads["event"]["workloads"],
            payloads["stepped"]["workloads"],
        ):
            assert ev["name"] == st["name"]
            for key in (
                "simulated_cycles",
                "flit_hops",
                "bit_transitions",
            ):
                assert ev[key] == st[key], (ev["name"], key)

    def test_fast_forward_invariant(self, smoke_payloads):
        _, payloads = smoke_payloads
        for payload in payloads.values():
            assert check_invariants(payload) == []
        # The stepped core steps every cycle; the event core skipped
        # idle cycles somewhere (the sparse synthetic window).
        stepped = payloads["stepped"]["totals"]
        assert stepped["steps_executed"] == stepped["simulated_cycles"]
        event = payloads["event"]["totals"]
        assert event["steps_executed"] < event["simulated_cycles"]

    def test_check_invariants_flags_violations(self, smoke_payloads):
        _, payloads = smoke_payloads
        broken = json.loads(json.dumps(payloads["event"]))
        broken["workloads"][0]["steps_executed"] = (
            broken["workloads"][0]["simulated_cycles"] + 1
        )
        failures = check_invariants(broken)
        assert any("exceeds" in f for f in failures)

    def test_unknown_workload_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown bench workloads"):
            run_bench(
                "x", workloads=["nope"], out_path=tmp_path / "b.json"
            )

    def test_unknown_core_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown network core"):
            run_bench("x", core="warp", out_path=tmp_path / "b.json")
