"""Fig. 12 — BTs across different NoC sizes.

Runs trained LeNet through the full NoC simulator for the paper's three
configurations (4x4/MC2, 8x8/MC4, 8x8/MC8), both data formats and all
three orderings (O0/O1/O2), reporting absolute BTs and reduction rates.

The grid executes through the campaign engine: a declarative
:class:`SweepSpec` expands the mesh x ordering product, the runner
persists every point into a content-addressed cache, and the reported
series is the engine's :func:`pivot` over the records — the same path
``repro sweep`` / ``repro report`` exercise from the CLI.

Paper shape: O2 > O1 > O0 reductions everywhere; affiliated 12.09-18.58 %
(f32) / 7.88-17.75 % (fx8); separated 23.30-32.01 % (f32) /
16.95-35.93 % (fx8); the 8x8/MC4 configuration produces the most
absolute BTs (most routers per MC -> longest routes).
"""

from __future__ import annotations

import pytest

from repro.analysis.summary import format_series
from repro.experiments import (
    CampaignRunner,
    ResultCache,
    ResultStore,
    SweepSpec,
    pivot,
    reduction_series,
)

MESHES = ["4x4:2", "8x8:4", "8x8:8"]
MAX_TASKS = 32


@pytest.mark.parametrize("data_format", ["float32", "fixed8"])
def test_fig12_noc_sizes(
    benchmark, record_result, trained_lenet, tmp_path, data_format
):
    spec = SweepSpec(
        name=f"fig12_{data_format}",
        model="trained_lenet",
        model_seed=3,  # the conftest fixture's training seed
        image_seed=5,
        base={
            "data_format": data_format,
            "max_tasks_per_layer": MAX_TASKS,
            "seed": 2025,  # AcceleratorConfig default, kept explicit
        },
        axes={"mesh": MESHES, "ordering": ["O0", "O1", "O2"]},
    )
    runner = CampaignRunner(
        cache=ResultCache(tmp_path / "cache"),
        store=ResultStore(tmp_path / "runs.jsonl"),
        workers=1,  # inline: reuses the session-trained LeNet
    )

    def run():
        campaign = runner.run(spec)
        assert not campaign.errors, campaign.summary()
        for record in campaign.records:
            result = record["result"]
            assert result["tasks_verified"] == result["tasks_total"], (
                record["job_id"]
            )
        return campaign

    campaign = benchmark.pedantic(run, rounds=1)
    series = pivot(campaign.records)

    # --- shape assertions ------------------------------------------------
    reductions = reduction_series(series)
    for label, values in series.items():
        o0, o1, o2 = values["O0"], values["O1"], values["O2"]
        assert o2 < o1 < o0, f"{label}: expected O2 < O1 < O0"
        assert reductions[label]["O1"] > 5.0
        assert reductions[label]["O2"] > 15.0
    # 8x8/MC4 has the most routers per MC and thus the most hops/BTs.
    assert series["8x8 MC4"]["O0"] > series["4x4 MC2"]["O0"]
    assert series["8x8 MC4"]["O0"] > series["8x8 MC8"]["O0"]

    # A re-run of the same campaign must be served entirely from cache.
    replay = runner.run(spec)
    assert replay.hits == campaign.n_jobs and replay.misses == 0
    assert pivot(replay.records) == series

    lines = [
        format_series(
            series,
            f"Fig. 12 ({data_format}): absolute BTs across NoC sizes "
            f"(LeNet, {MAX_TASKS} tasks/layer)",
        ),
        "",
        format_series(reductions, "Reduction rates vs O0 (%)"),
        "",
        "Paper bands: O1 12.09-18.58% (f32) / 7.88-17.75% (fx8); "
        "O2 23.30-32.01% (f32) / 16.95-35.93% (fx8).",
    ]
    record_result(f"fig12_noc_sizes_{data_format}", "\n".join(lines))
