"""Fig. 12 — BTs across different NoC sizes.

Runs trained LeNet through the full NoC simulator for the paper's three
configurations (4x4/MC2, 8x8/MC4, 8x8/MC8), both data formats and all
three orderings (O0/O1/O2), reporting absolute BTs and reduction rates.

Paper shape: O2 > O1 > O0 reductions everywhere; affiliated 12.09-18.58 %
(f32) / 7.88-17.75 % (fx8); separated 23.30-32.01 % (f32) /
16.95-35.93 % (fx8); the 8x8/MC4 configuration produces the most
absolute BTs (most routers per MC -> longest routes).
"""

from __future__ import annotations

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import run_model_on_noc
from repro.analysis.summary import format_series, reduction_rate
from repro.ordering.strategies import OrderingMethod

MESHES = [
    ("4x4 MC2", dict(width=4, height=4, n_mcs=2)),
    ("8x8 MC4", dict(width=8, height=8, n_mcs=4)),
    ("8x8 MC8", dict(width=8, height=8, n_mcs=8)),
]
MAX_TASKS = 32


@pytest.mark.parametrize("data_format", ["float32", "fixed8"])
def test_fig12_noc_sizes(
    benchmark, record_result, trained_lenet, lenet_image, data_format
):
    def run():
        series: dict[str, dict[str, float]] = {}
        for label, mesh in MESHES:
            series[label] = {}
            for method in OrderingMethod:
                cfg = AcceleratorConfig(
                    data_format=data_format,
                    ordering=method,
                    max_tasks_per_layer=MAX_TASKS,
                    **mesh,
                )
                result = run_model_on_noc(cfg, trained_lenet, lenet_image)
                assert result.all_verified, cfg.label()
                series[label][method.value] = float(
                    result.total_bit_transitions
                )
        return series

    series = benchmark.pedantic(run, rounds=1)

    # --- shape assertions ------------------------------------------------
    reductions: dict[str, dict[str, float]] = {}
    for label, values in series.items():
        o0, o1, o2 = values["O0"], values["O1"], values["O2"]
        assert o2 < o1 < o0, f"{label}: expected O2 < O1 < O0"
        reductions[label] = {
            "O1": reduction_rate(o0, o1),
            "O2": reduction_rate(o0, o2),
        }
        assert reductions[label]["O1"] > 5.0
        assert reductions[label]["O2"] > 15.0
    # 8x8/MC4 has the most routers per MC and thus the most hops/BTs.
    assert series["8x8 MC4"]["O0"] > series["4x4 MC2"]["O0"]
    assert series["8x8 MC4"]["O0"] > series["8x8 MC8"]["O0"]

    lines = [
        format_series(
            series,
            f"Fig. 12 ({data_format}): absolute BTs across NoC sizes "
            f"(LeNet, {MAX_TASKS} tasks/layer)",
        ),
        "",
        format_series(reductions, "Reduction rates vs O0 (%)"),
        "",
        "Paper bands: O1 12.09-18.58% (f32) / 7.88-17.75% (fx8); "
        "O2 23.30-32.01% (f32) / 16.95-35.93% (fx8).",
    ]
    record_result(f"fig12_noc_sizes_{data_format}", "\n".join(lines))
