"""Sec. III-B — machine check of the ordering-optimality proof.

Exhaustively verifies the local pairwise lemma and certifies the
count-based interleaved ordering against brute-force matching search,
and demonstrates convergence of the iterative local rule.
"""

from __future__ import annotations

import numpy as np

from repro.ordering.optimal import interleaved_assignment
from repro.ordering.proofs import (
    bubble_to_optimal,
    verify_global_optimality,
    verify_pairwise_lemma,
)


def test_proof_pairwise_lemma(benchmark, record_result):
    result = benchmark.pedantic(
        verify_pairwise_lemma, kwargs={"max_count": 12}, rounds=1
    )
    assert result
    record_result(
        "proof_pairwise_lemma",
        "Sec III-B local pairwise lemma: verified exhaustively for all "
        "4-count multisets with counts in [0, 12] "
        "(C(13+3,4) = 1820 multisets x 24 placements).",
    )


def test_proof_global_optimality(benchmark, record_result):
    def run():
        for lanes in (2, 3, 4, 5, 6):
            verify_global_optimality(n_lanes=lanes, trials=20)
        return True

    assert benchmark.pedantic(run, rounds=1)
    # Convergence of the iterative rule to the closed-form optimum.
    rng = np.random.default_rng(3)
    for _ in range(20):
        counts = rng.integers(0, 33, size=16).tolist()
        assert bubble_to_optimal(list(counts)) == interleaved_assignment(
            counts
        ).objective
    record_result(
        "proof_global_optimality",
        "Sec III-B global optimality: count-based interleaved ordering "
        "matches exhaustive perfect-matching search for 100 random\n"
        "instances (2-6 lanes), and the iterative pairwise rule "
        "converges to the same objective for 20 random 16-count cases.",
    )
