"""Sec. V-C — link power estimate.

Reproduces the paper's arithmetic exactly: 0.173 pJ/bit (authors'
Innovus extraction) and 0.532 pJ/bit (Banerjee et al.) over 112 links
of an 8x8 NoC at 125 MHz with half the 128-bit wires toggling, then
applies the headline 40.85 % BT reduction.
"""

from __future__ import annotations

import pytest

from repro.hardware.linkpower import (
    BANERJEE_ENERGY_PJ,
    PAPER_ENERGY_PJ,
    LinkPowerModel,
)

HEADLINE_REDUCTION = 40.85


def test_secVC_link_power(benchmark, record_result):
    def run():
        ours = LinkPowerModel.for_mesh(
            8, 8, energy_per_transition_pj=PAPER_ENERGY_PJ
        )
        banerjee = LinkPowerModel.for_mesh(
            8, 8, energy_per_transition_pj=BANERJEE_ENERGY_PJ
        )
        return {
            "ours": (
                ours.power_mw(),
                ours.reduced_power_mw(HEADLINE_REDUCTION),
            ),
            "banerjee": (
                banerjee.power_mw(),
                banerjee.reduced_power_mw(HEADLINE_REDUCTION),
            ),
        }

    powers = benchmark.pedantic(run, rounds=5)

    assert powers["ours"][0] == pytest.approx(155.008, abs=0.001)
    assert powers["ours"][1] == pytest.approx(91.688, abs=0.01)
    assert powers["banerjee"][0] == pytest.approx(476.672, abs=0.001)
    assert powers["banerjee"][1] == pytest.approx(281.951, abs=0.01)

    lines = [
        "Sec. V-C link power (8x8 NoC, 112 links, 128-bit, 125 MHz, "
        "half the wires toggling):",
        f"  ours (0.173 pJ/bit):     {powers['ours'][0]:8.3f} mW -> "
        f"{powers['ours'][1]:8.3f} mW after {HEADLINE_REDUCTION}% BT "
        "reduction (paper: 155.008 -> 91.688)",
        f"  Banerjee (0.532 pJ/bit): {powers['banerjee'][0]:8.3f} mW -> "
        f"{powers['banerjee'][1]:8.3f} mW (paper: 476.672 -> 281.951)",
    ]
    record_result("secVC_link_power", "\n".join(lines))
