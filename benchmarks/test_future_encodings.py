"""Future work (Sec. VI): comparing ordering with bus-encoding methods.

The paper closes with "combining and comparing this work with other BT
reduction works can be explored in the future".  This bench stages that
comparison on identical traffic: a fixed-8 LeNet run is captured as a
per-link wire-image trace, then re-scored under

* O0 / O2 ordering (the paper's methods),
* bus-invert coding (Stan & Burleson) on top of each,
* delta (XOR-difference) coding on top of each.

Link codings transform the wire bits and need decoders; ordering keeps
values intact — the bench quantifies how much each buys and whether
they compose.
"""

from __future__ import annotations

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import AcceleratorSimulator
from repro.analysis.summary import reduction_rate
from repro.ordering.strategies import OrderingMethod
from repro.workloads.traces import TraceCollector, reencode_transitions

MAX_TASKS = 24


def capture_trace(model, image, method: OrderingMethod):
    config = AcceleratorConfig(
        data_format="fixed8",
        ordering=method,
        max_tasks_per_layer=MAX_TASKS,
    )
    sim = AcceleratorSimulator(config, model, image)
    collector = TraceCollector()
    result = sim.run(trace_collector=collector)
    assert result.all_verified
    return collector.finish(config.link_width), result


def test_future_encodings(benchmark, record_result, trained_lenet, lenet_image):
    def run():
        scores: dict[str, int] = {}
        for method in (OrderingMethod.BASELINE, OrderingMethod.SEPARATED):
            trace, result = capture_trace(trained_lenet, lenet_image, method)
            tag = method.value
            scores[f"{tag} plain"] = result.total_bit_transitions
            for coding in ("bus_invert", "delta"):
                scores[f"{tag} + {coding}"] = reencode_transitions(
                    trace, coding
                )
        return scores

    scores = benchmark.pedantic(run, rounds=1)
    base = scores["O0 plain"]

    # Ordering alone beats the baseline.
    assert scores["O2 plain"] < base
    # Bus-invert helps the baseline but less than ordering does here
    # (it bounds worst-case transitions; it cannot exploit value
    # reorderability).
    assert scores["O0 + bus_invert"] < base
    assert scores["O2 plain"] < scores["O0 + bus_invert"]
    # The techniques compose: coding on ordered traffic still helps.
    assert scores["O2 + bus_invert"] <= scores["O2 plain"]

    lines = [
        "Future-work comparison: ordering vs link codings "
        "(fixed-8 trained LeNet, identical traffic, total BTs):"
    ]
    for name, value in scores.items():
        lines.append(
            f"  {name:<18} {value:>10d}  "
            f"({reduction_rate(base, value):6.2f}% vs O0 plain)"
        )
    lines.append(
        "(bus-invert/delta require per-link encoders+decoders; ordering "
        "keeps values intact and composes with both)"
    )
    record_result("future_encodings", "\n".join(lines))
