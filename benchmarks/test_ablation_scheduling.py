"""Extension study: MC packet scheduling by '1' count.

The paper orders values *within* packets.  The same idea extends across
packet boundaries: each MC can stream its queued packets in descending
order of total payload '1' count so consecutive packets on shared links
carry similar bit densities.  (DNN task packets are order-insensitive
at the layer barrier, so this is free.)  This bench measures what the
extra degree of freedom buys on top of O0 and O2.
"""

from __future__ import annotations

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import run_model_on_noc
from repro.analysis.summary import reduction_rate
from repro.ordering.strategies import OrderingMethod

MAX_TASKS = 24


def test_ablation_scheduling(benchmark, record_result, trained_lenet, lenet_image):
    def run():
        out = {}
        for method in (OrderingMethod.BASELINE, OrderingMethod.SEPARATED):
            for scheduling in ("fifo", "count_desc"):
                cfg = AcceleratorConfig(
                    data_format="fixed8",
                    ordering=method,
                    packet_scheduling=scheduling,
                    max_tasks_per_layer=MAX_TASKS,
                )
                result = run_model_on_noc(cfg, trained_lenet, lenet_image)
                assert result.all_verified
                out[(method.value, scheduling)] = (
                    result.total_bit_transitions
                )
        return out

    bts = benchmark.pedantic(run, rounds=1)
    base = bts[("O0", "fifo")]

    # Count-ordered packet streaming should not hurt, and the combined
    # O2 + scheduling configuration is the strongest.
    assert bts[("O2", "count_desc")] <= bts[("O2", "fifo")] * 1.02
    assert bts[("O2", "count_desc")] < base

    lines = [
        "Packet-scheduling extension (fixed-8 trained LeNet, total BTs):"
    ]
    for (method, scheduling), value in bts.items():
        lines.append(
            f"  {method} + {scheduling:<10} {value:>10d}  "
            f"({reduction_rate(base, value):6.2f}% vs O0 fifo)"
        )
    record_result("ablation_scheduling", "\n".join(lines))
