"""Fig. 10 — float-32 per-bit-position statistics.

Top: probability of '1' at each of the 32 positions for random and
trained weights (sign / exponent / mantissa structure).  Bottom:
per-position transition probability, baseline vs ordered — ordering
must lower the curve.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distribution import analyze_stream
from repro.bits.popcount import popcount_array
from repro.workloads.streams import (
    random_weights,
    trained_lenet_weights,
    words_for_format,
)


def ordered_stream(words: np.ndarray) -> np.ndarray:
    counts = popcount_array(words)
    return words[np.argsort(-counts.astype(np.int64), kind="stable")]


def render(stats_by_name: dict, width: int) -> str:
    lines = []
    for name, stats in stats_by_name.items():
        lines.append(name)
        one = " ".join(f"{p:4.2f}" for p in stats.one_probability)
        tr = " ".join(f"{p:4.2f}" for p in stats.transition_probability)
        lines.append(f"  P(bit=1) : {one}")
        lines.append(f"  P(flip)  : {tr}")
    return "\n".join(lines)


def test_fig10_float32_bits(benchmark, record_result):
    pools = {
        "random": random_weights(30_000, seed=3),
        "trained": trained_lenet_weights(),
    }

    def run():
        out = {}
        for name, values in pools.items():
            words, _ = words_for_format(values, "float32")
            words = np.asarray(words)
            out[f"{name} baseline"] = analyze_stream(words, 32)
            out[f"{name} ordered"] = analyze_stream(
                ordered_stream(words), 32
            )
        return out

    stats = benchmark.pedantic(run, rounds=1)

    for name in ("random", "trained"):
        base = stats[f"{name} baseline"]
        fields = base.describe_float32_fields()
        # Sign bit near 0.5; exponent-prefix bits dense for |w| < 1.
        assert abs(fields["sign"] - 0.5) < 0.05
        assert fields["exponent"] > 0.55
        # Ordering lowers the aggregate transition probability.
        ordered = stats[f"{name} ordered"]
        assert (
            ordered.transition_probability.sum()
            < base.transition_probability.sum()
        )
        # Ordering does not change the value statistics.
        np.testing.assert_allclose(
            ordered.one_probability, base.one_probability, atol=1e-12
        )
    # Paper: random mantissa is more uniform than trained mantissa.
    rand_mantissa = stats["random baseline"].one_probability[9:]
    trained_mantissa = stats["trained baseline"].one_probability[9:]
    assert rand_mantissa.std() <= trained_mantissa.std() + 0.02

    record_result(
        "fig10_float32_bits",
        "Fig. 10: float-32 bit-position statistics "
        "(positions MSB->LSB: sign | 8-bit exponent | 23-bit mantissa)\n"
        + render(stats, 32),
    )
