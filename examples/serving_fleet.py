"""Multi-tenant serving: BT reduction vs p99 latency under interference.

The paper evaluates data-transmission ordering with one model owning
the whole mesh.  This example asks the serving question instead: when a
LeNet tenant shares the mesh with a synthetic background tenant, does
ordering still buy its bit-transition reduction, and what happens to
tail latency as the background arrival rate climbs?

For each interference level (background requests/cycle) the fleet runs
once per ordering method on identical arrivals, then prints the
fleet-wide BT reduction vs O0 next to per-tenant p99 latency.

Usage::

    python examples/serving_fleet.py
"""

from __future__ import annotations

from repro.serving import ServingConfig, TenantSpec, run_serving

INTERFERENCE = (0.005, 0.02, 0.08)
ORDERINGS = ("O0", "O1", "O2")


def run_fleet(rate: float, ordering: str):
    # Denser background arrivals get proportionally more requests, so
    # higher interference means more traffic in flight, not just the
    # same two bursts packed closer together.
    config = ServingConfig(
        tenants=(
            TenantSpec(name="lenet", workload="model", model="lenet"),
            TenantSpec(
                name="uniform",
                rate=rate,
                n_requests=max(2, int(rate * 500)),
            ),
        ),
        ordering=ordering,
        n_requests=2,
        max_tasks_per_layer=2,
        seed=7,
    )
    return run_serving(config)


def main() -> None:
    print("LeNet + uniform background on one 4x4 mesh")
    print(
        f"{'bg rate':>8} {'ordering':>8} {'total BTs':>10} "
        f"{'vs O0':>7} {'p99 pkt':>8} {'lenet p99 req':>14} "
        f"{'bg p99 req':>11}"
    )
    for rate in INTERFERENCE:
        baseline = None
        for ordering in ORDERINGS:
            result = run_fleet(rate, ordering)
            total = result.total_bit_transitions
            if baseline is None:
                baseline = total
            reduction = 100.0 * (baseline - total) / baseline
            by_name = {t.name: t.to_dict() for t in result.tenants}
            print(
                f"{rate:>8.3f} {ordering:>8} {total:>10d} "
                f"{reduction:>6.2f}% "
                f"{result.latency_percentile(99):>8.1f} "
                f"{by_name['lenet']['p99_request_latency']:>14.1f} "
                f"{by_name['uniform']['p99_request_latency']:>11.1f}"
            )
    print(
        "\nOrdering keeps saving the same absolute BTs on the model "
        "tenant's\ntraffic, but unordered background traffic dilutes "
        "the fleet-wide\npercentage and drags p99 latency up with the "
        "arrival rate."
    )


if __name__ == "__main__":
    main()
