"""DarkNet-like model across NoC sizes — the Fig. 12 + 13 sweep.

Runs the DarkNet-like model (64x64x3 input, Sec. V-B) through all three
NoC configurations and orderings, for one data format, and prints the
absolute BTs and reduction grid.

The grid executes through the campaign engine
(:mod:`repro.experiments`): points are expanded declaratively, run on a
worker pool, and cached content-addressed under ``--cache-dir`` — a
second invocation reprints the same table without re-simulating.

Usage::

    python examples/darknet_sweep.py [--tasks N] [--format fixed8|float32]
                                     [--workers N] [--cache-dir DIR]
"""

from __future__ import annotations

import argparse

from repro.analysis.summary import format_series
from repro.experiments import (
    CampaignRunner,
    ResultCache,
    SweepSpec,
    pivot,
    reduction_series,
)

MESHES = ["4x4:2", "8x8:4", "8x8:8"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=16)
    parser.add_argument("--format", default="fixed8",
                        choices=("float32", "fixed8"))
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cache-dir", default=None,
                        help="reuse results across invocations")
    args = parser.parse_args()

    spec = SweepSpec(
        name="darknet_sweep",
        model="darknet",
        model_seed=21,
        image_seed=5,
        base={
            "data_format": args.format,
            "max_tasks_per_layer": args.tasks,
            # Pinned to the AcceleratorConfig default the hand-rolled
            # loop used, so the printed numbers are unchanged.
            "seed": 2025,
        },
        axes={"mesh": MESHES, "ordering": ["O0", "O1", "O2"]},
    )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    runner = CampaignRunner(cache=cache, workers=args.workers)
    campaign = runner.run(spec, progress=print)
    assert not campaign.errors, campaign.summary()
    for record in campaign.records:
        assert record["result"]["tasks_verified"] == (
            record["result"]["tasks_total"]
        ), record["job_id"]

    series = pivot(campaign.records)
    reductions = reduction_series(series)

    print()
    print(format_series(series, f"DarkNet absolute BTs ({args.format})"))
    print()
    print(format_series(reductions, "Reductions vs O0 (%)"))
    print()
    print(campaign.summary())


if __name__ == "__main__":
    main()
