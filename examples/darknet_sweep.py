"""DarkNet-like model across NoC sizes — the Fig. 12 + 13 sweep.

Runs the DarkNet-like model (64x64x3 input, Sec. V-B) through all three
NoC configurations and orderings, for one data format, and prints the
absolute BTs and reduction grid.

Usage::

    python examples/darknet_sweep.py [--tasks N] [--format fixed8|float32]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.accelerator import AcceleratorConfig, run_model_on_noc
from repro.analysis.summary import format_series, reduction_rate
from repro.dnn import DarkNetSlim, synthetic_shapes
from repro.ordering import OrderingMethod

MESHES = [
    ("4x4 MC2", dict(width=4, height=4, n_mcs=2)),
    ("8x8 MC4", dict(width=8, height=8, n_mcs=4)),
    ("8x8 MC8", dict(width=8, height=8, n_mcs=8)),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=16)
    parser.add_argument("--format", default="fixed8",
                        choices=("float32", "fixed8"))
    args = parser.parse_args()

    model = DarkNetSlim(rng=np.random.default_rng(21))
    image = synthetic_shapes(1, seed=5).images[0]

    series: dict[str, dict[str, float]] = {}
    reductions: dict[str, dict[str, float]] = {}
    for label, mesh in MESHES:
        series[label] = {}
        for method in OrderingMethod:
            config = AcceleratorConfig(
                data_format=args.format,
                ordering=method,
                max_tasks_per_layer=args.tasks,
                **mesh,
            )
            result = run_model_on_noc(config, model, image)
            assert result.all_verified
            series[label][method.value] = float(result.total_bit_transitions)
            print(
                f"  {label} {method.value}: "
                f"{result.total_bit_transitions:>10d} BTs "
                f"({result.total_cycles} cycles)"
            )
        o0 = series[label]["O0"]
        reductions[label] = {
            m.value: reduction_rate(o0, series[label][m.value])
            for m in (OrderingMethod.AFFILIATED, OrderingMethod.SEPARATED)
        }

    print()
    print(format_series(series, f"DarkNet absolute BTs ({args.format})"))
    print()
    print(format_series(reductions, "Reductions vs O0 (%)"))


if __name__ == "__main__":
    main()
