"""A sweep served to a small worker fleet — with one worker killed.

Runs the whole distributed campaign stack in one process tree: a
:class:`repro.service.SweepServer` owns the job queue, journal, and
store; a fleet of worker *processes* attaches over the socket, claims
jobs under time-bounded leases, and streams results back.  One worker
is dealt a ``kill`` fault (``os._exit`` mid-job) to show the recovery
path: its lease expires, the job returns to the queue, and a surviving
worker steals it — the final records are identical to what a local
``repro sweep`` of the same grid would produce.

Usage::

    python examples/distributed_sweep.py [--workers N] [--lease S]
"""

from __future__ import annotations

import argparse
import multiprocessing
import tempfile

from repro.experiments import campaign_report
from repro.experiments.faults import FaultAction, FaultPlan
from repro.experiments.spec import SweepSpec
from repro.experiments.store import ResultStore
from repro.service import SweepServer, run_worker


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--lease", type=float, default=2.0,
                        help="lease seconds (short, so the killed "
                        "worker's job is stolen quickly)")
    args = parser.parse_args()

    spec = SweepSpec(
        name="distributed",
        model="lenet",
        base={"max_tasks_per_layer": 2},
        axes={"mesh": ["2x2:1", "3x3:1"], "ordering": ["O0", "O2"]},
    )
    # Job 0's first attempt dies mid-execution; attempt 2 (on another
    # worker, after the lease lapses) runs clean.
    plan = FaultPlan({0: [FaultAction("kill", attempt=1)]})

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(f"{tmp}/distributed.jsonl")
        server = SweepServer(
            spec,
            store=store,
            lease_seconds=args.lease,
            max_retries=2,
            fault_plan=plan,
        )
        host, port = server.start()
        print(f"serving {len(spec.expand())} jobs on {host}:{port}")

        fleet = [
            multiprocessing.Process(
                target=run_worker,
                args=(host, port),
                kwargs={"name": f"worker-{i}"},
            )
            for i in range(args.workers)
        ]
        for proc in fleet:
            proc.start()

        result = server.wait()
        server.linger()
        server.close()
        for proc in fleet:
            proc.join(timeout=30.0)
            state = proc.exitcode
            print(f"  {proc.name}: exit {state}"
                  + ("  <- killed by the fault plan" if state else ""))

        print()
        print(result.summary())
        print(f"leases expired: "
              f"{result.metrics['service.leases.expired']}, "
              f"jobs stolen: {result.metrics['service.jobs.stolen']}")
        print()
        print(campaign_report(result.records))


if __name__ == "__main__":
    main()
