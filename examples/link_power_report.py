"""Turn simulated BT counts into link energy and power (Sec. V-C).

Runs a fixed-8 LeNet workload through the 8x8/MC4 NoC with and without
separated-ordering, then feeds the measured BT counts and the measured
reduction rate into the calibrated link-power models, alongside the
paper's closed-form example, and reports the ordering-unit overhead
from Table II for comparison.

Usage::

    python examples/link_power_report.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerator import AcceleratorConfig, run_model_on_noc
from repro.analysis.summary import reduction_rate
from repro.dnn import LeNet5, synthetic_digits
from repro.hardware import (
    BANERJEE_ENERGY_PJ,
    LinkPowerModel,
    OrderingUnitDesign,
    RouterDesign,
)
from repro.ordering import OrderingMethod


def main() -> None:
    model = LeNet5(rng=np.random.default_rng(1))
    image = synthetic_digits(1, seed=5).images[0]

    runs = {}
    for method in (OrderingMethod.BASELINE, OrderingMethod.SEPARATED):
        config = AcceleratorConfig(
            width=8,
            height=8,
            n_mcs=4,
            data_format="fixed8",
            ordering=method,
            max_tasks_per_layer=24,
        )
        runs[method] = run_model_on_noc(config, model, image)

    base = runs[OrderingMethod.BASELINE]
    ordered = runs[OrderingMethod.SEPARATED]
    measured_reduction = reduction_rate(
        base.total_bit_transitions, ordered.total_bit_transitions
    )
    print("Measured on the simulator (8x8 MC4, fixed-8 LeNet):")
    print(f"  O0 bit transitions: {base.total_bit_transitions:>12d}")
    print(f"  O2 bit transitions: {ordered.total_bit_transitions:>12d}")
    print(f"  reduction:          {measured_reduction:>11.2f}%")

    for name, energy in (
        ("ours (Innovus, 0.173 pJ)", None),
        ("Banerjee et al. (0.532 pJ)", BANERJEE_ENERGY_PJ),
    ):
        model_kwargs = {} if energy is None else {
            "energy_per_transition_pj": energy
        }
        lp = LinkPowerModel.for_mesh(8, 8, **model_kwargs)
        saved_energy = lp.energy_for_transitions(
            base.total_bit_transitions - ordered.total_bit_transitions
        )
        print(f"\nLink model {name}:")
        print(f"  nominal link power:    {lp.power_mw():9.3f} mW")
        print(
            f"  after measured red.:   "
            f"{lp.reduced_power_mw(measured_reduction):9.3f} mW"
        )
        print(
            f"  energy saved this run: {saved_energy * 1e9:9.3f} nJ "
            f"({base.total_bit_transitions - ordered.total_bit_transitions} "
            "transitions avoided)"
        )

    unit = OrderingUnitDesign()
    router = RouterDesign()
    print("\nOverhead context (Table II):")
    print(
        f"  4 ordering units: {4 * unit.power_mw():8.3f} mW, "
        f"{4 * unit.area_kge():8.2f} kGE"
    )
    print(
        f"  64 routers:       {64 * router.power_mw():8.2f} mW, "
        f"{64 * router.area_kge():8.2f} kGE"
    )
    print(
        "  -> the ordering units cost "
        f"{100 * 4 * unit.power_mw() / (64 * router.power_mw()):.2f}% of "
        "router power while saving tens of percent of link power."
    )


if __name__ == "__main__":
    main()
