"""Quickstart: count bit transitions and reduce them by ordering.

Runs in a few seconds:

1. builds a packet stream from randomly initialised weights,
2. measures BT/flit with and without '1'-count descending ordering,
3. sends one ordered vs one baseline LeNet layer through the real NoC
   simulator and compares the NoC-wide BT sums.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerator import AcceleratorConfig, run_model_on_noc
from repro.analysis.summary import reduction_rate
from repro.dnn import LeNet5, synthetic_digits
from repro.ordering import OrderingMethod
from repro.workloads import (
    build_packets,
    measure_stream,
    random_weights,
    words_for_format,
)


def no_noc_demo() -> None:
    print("=== No-NoC flit stream (Table I style) ===")
    values = random_weights(20_000, seed=3)
    for fmt_name in ("float32", "fixed8"):
        words, fmt = words_for_format(values, fmt_name)
        base = build_packets(words, 2000, 8, fmt.width, kernel_size=25)
        ordered = build_packets(
            words, 2000, 8, fmt.width, kernel_size=25, ordered=True
        )
        bt_base = measure_stream(base).bt_per_flit
        bt_ord = measure_stream(ordered).bt_per_flit
        print(
            f"  {fmt_name:8s} ({base.flit_bits:3d}-bit flits): "
            f"{bt_base:7.2f} -> {bt_ord:7.2f} BT/flit  "
            f"({reduction_rate(bt_base, bt_ord):5.2f}% reduction)"
        )


def with_noc_demo() -> None:
    print("\n=== LeNet on the 4x4 NoC (Fig. 12 style, small workload) ===")
    model = LeNet5(rng=np.random.default_rng(1))
    image = synthetic_digits(1, seed=5).images[0]
    baseline_bt = None
    for method in OrderingMethod:
        config = AcceleratorConfig(
            data_format="fixed8",
            ordering=method,
            max_tasks_per_layer=16,
        )
        result = run_model_on_noc(config, model, image)
        if baseline_bt is None:
            baseline_bt = result.total_bit_transitions
        print(
            f"  {method.value} ({method.name.lower():<10}): "
            f"{result.total_bit_transitions:>9d} BTs, "
            f"{result.total_cycles:>5d} cycles, "
            f"MACs verified {result.tasks_verified}/{result.tasks_total}, "
            f"reduction {reduction_rate(baseline_bt, result.total_bit_transitions):5.2f}%"
        )


if __name__ == "__main__":
    no_noc_demo()
    with_noc_demo()
