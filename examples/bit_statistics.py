"""Bit-level statistics of DNN weights (the Fig. 9/10/11 analyses).

Prints, for random and trained LeNet weights in both wire formats:

* per-bit-position '1' probability (exposing the float-32
  sign/exponent/mantissa structure),
* per-position transition probability before vs after ordering,
* the Fig. 9 '1'-count heat map of the first flits of the stream.

Usage::

    python examples/bit_statistics.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import analyze_stream
from repro.bits.popcount import popcount_array
from repro.workloads import (
    build_packets,
    ones_count_grid,
    random_weights,
    trained_lenet_weights,
    words_for_format,
)


def sparkline(values: np.ndarray) -> str:
    blocks = " .:-=+*#%@"
    scaled = np.clip((values * (len(blocks) - 1)).round(), 0, 9).astype(int)
    return "".join(blocks[i] for i in scaled)


def report(name: str, values: np.ndarray, fmt_name: str) -> None:
    words, fmt = words_for_format(values, fmt_name)
    words = np.asarray(words)
    counts = popcount_array(words)
    ordered = words[np.argsort(-counts.astype(np.int64), kind="stable")]
    base = analyze_stream(words, fmt.width)
    after = analyze_stream(ordered, fmt.width)
    print(f"\n--- {name} / {fmt_name} ({fmt.width}-bit words) ---")
    print(f"  P(bit=1) MSB->LSB : {sparkline(base.one_probability)}")
    print(f"  P(flip) baseline  : {sparkline(base.transition_probability)}")
    print(f"  P(flip) ordered   : {sparkline(after.transition_probability)}")
    print(
        f"  mean flip prob: {base.transition_probability.mean():.4f} -> "
        f"{after.transition_probability.mean():.4f}"
    )
    if fmt.width == 32:
        fields = base.describe_float32_fields()
        print(
            f"  IEEE-754 fields P(1): sign {fields['sign']:.2f}  "
            f"exponent {fields['exponent']:.2f}  "
            f"mantissa {fields['mantissa']:.2f}"
        )


def fig9_heatmap(values: np.ndarray) -> None:
    words, fmt = words_for_format(values, "fixed8")
    ordered = build_packets(
        np.asarray(words), 500, 8, fmt.width, kernel_size=25, ordered=True
    )
    base = build_packets(
        np.asarray(words), 500, 8, fmt.width, kernel_size=25
    )
    print("\n--- Fig. 9: '1'-counts per flit (left: before, right: after) ---")
    gb, go = ones_count_grid(base), ones_count_grid(ordered)
    for flit in range(12):
        left = " ".join(f"{c}" for c in gb[flit])
        right = " ".join(f"{c}" for c in go[flit])
        print(f"  flit {flit:>2} | {left}   ->   {right}")


def main() -> None:
    pools = {
        "random": random_weights(30_000, seed=3),
        "trained LeNet": trained_lenet_weights(),
    }
    for name, values in pools.items():
        for fmt_name in ("float32", "fixed8"):
            report(name, values, fmt_name)
    fig9_heatmap(pools["trained LeNet"])


if __name__ == "__main__":
    main()
