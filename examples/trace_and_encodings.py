"""Capture a packet traffic trace, re-analyse it offline, replay it.

Demonstrates the NocDAS-style trace output (Fig. 7): a fixed-8 LeNet
run is captured link by link with the full-fidelity TraceRecorder,
persisted to the compressed v2 trace format, reloaded, validated
against the live recorders, re-scored under the related-work link
codings (bus-invert, delta) without re-running the simulator, and
finally *replayed* through both network cores — the recorded traffic
re-injected cycle-for-cycle, reproducing the per-link BT ledger
bit-exactly.  Ends with a per-router BT heat map of the run.

Usage::

    python examples/trace_and_encodings.py [--out run.trace.gz]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.accelerator import AcceleratorConfig, AcceleratorSimulator
from repro.analysis import bar_chart
from repro.dnn import LeNet5, synthetic_digits
from repro.ordering import OrderingMethod
from repro.noc import TraceRecorder, network_core
from repro.workloads import (
    TrafficTrace,
    reencode_transitions,
    replay_through_network,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="where to store the trace JSON")
    args = parser.parse_args()
    out = Path(args.out) if args.out else (
        Path(tempfile.gettempdir()) / "repro_run.trace.gz"
    )

    model = LeNet5(rng=np.random.default_rng(1))
    image = synthetic_digits(1, seed=5).images[0]
    config = AcceleratorConfig(
        data_format="fixed8",
        ordering=OrderingMethod.SEPARATED,
        max_tasks_per_layer=16,
    )
    sim = AcceleratorSimulator(config, model, image)
    recorder = TraceRecorder()
    result = sim.run(trace_collector=recorder)
    trace = recorder.finish(sim.last_network.config)

    print(f"Captured {trace.total_flit_traversals()} flit traversals over "
          f"{len(trace.links)} links.")
    assert trace.total_transitions() == result.total_bit_transitions
    print("Offline BT recount matches the live Fig. 8 recorders: "
          f"{trace.total_transitions()} transitions.")

    trace.save(out)
    reloaded = TrafficTrace.load(out)
    print(f"Trace persisted to {out} "
          f"({out.stat().st_size / 1024:.1f} KiB) and reloaded intact: "
          f"{reloaded == trace}")

    print()
    for core in ("event", "stepped"):
        with network_core(core):
            replayed = replay_through_network(reloaded)
        exact = replayed.ledger.per_link() == trace.per_link_transitions()
        print(f"Replayed {len(reloaded.packets)} recorded packets through "
              f"the {core} core: per-link BT ledger reproduced "
              f"bit-exactly: {exact}")
    reordered = replay_through_network(reloaded, ordering="popcount_desc")
    print("Same traffic with descending-popcount ordering re-applied at "
          f"injection: {reordered.stats.total_bit_transitions} BTs "
          f"(recorded: {trace.total_transitions()}).")

    scores = {
        "ordered (O2) plain": trace.total_transitions(),
        "O2 + bus-invert": reencode_transitions(trace, "bus_invert"),
        "O2 + delta": reencode_transitions(trace, "delta"),
    }
    print()
    print(bar_chart(scores, "BT totals under additional link codings:"))

    busiest = sorted(
        trace.per_link_transitions().items(), key=lambda kv: -kv[1]
    )[:8]
    print()
    print(bar_chart(dict(busiest), "Busiest links by BT:"))


if __name__ == "__main__":
    main()
