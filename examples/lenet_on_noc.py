"""Full LeNet inference as NoC traffic, with per-layer BT accounting.

Trains LeNet on the synthetic digit task (the paper's trained-weight
configuration), then drives every layer's neuron tasks through the
4x4/MC2 NoC under all three orderings and prints the per-layer traffic
and BT breakdown, ending with the functional verification summary.

Usage::

    python examples/lenet_on_noc.py [--tasks N] [--format fixed8|float32]
"""

from __future__ import annotations

import argparse

from repro.accelerator import AcceleratorConfig, run_model_on_noc
from repro.analysis.summary import reduction_rate
from repro.dnn import evaluate_accuracy, synthetic_digits
from repro.ordering import OrderingMethod
from repro.workloads.streams import trained_lenet_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=32,
                        help="neuron tasks sampled per layer")
    parser.add_argument("--format", default="fixed8",
                        choices=("float32", "fixed8"))
    args = parser.parse_args()

    print("Training LeNet on the synthetic digit task ...")
    model = trained_lenet_model()
    dataset = synthetic_digits(256, seed=8)
    print(f"  accuracy on fresh samples: "
          f"{evaluate_accuracy(model, dataset):.3f}")
    image = dataset.images[0]

    results = {}
    for method in OrderingMethod:
        config = AcceleratorConfig(
            data_format=args.format,
            ordering=method,
            max_tasks_per_layer=args.tasks,
        )
        results[method] = run_model_on_noc(config, model, image)

    base = results[OrderingMethod.BASELINE]
    print(f"\nPer-layer breakdown ({args.format}, O0 baseline):")
    header = (f"  {'layer':<8}{'tasks':>6}{'of':>8}{'packets':>9}"
              f"{'flits':>8}{'BTs':>12}{'cycles':>8}")
    print(header)
    print("  " + "-" * (len(header) - 2))
    for summary in base.layers:
        print(
            f"  {summary.layer_name:<8}{summary.n_tasks:>6}"
            f"{summary.total_neurons:>8}{summary.packets:>9}"
            f"{summary.flits:>8}{summary.bit_transitions:>12}"
            f"{summary.cycles:>8}"
        )

    print("\nOrdering comparison:")
    for method, result in results.items():
        red = reduction_rate(
            base.total_bit_transitions, result.total_bit_transitions
        )
        print(
            f"  {method.value} {method.name.lower():<11} "
            f"BTs {result.total_bit_transitions:>10d}  "
            f"reduction {red:6.2f}%  "
            f"latency {result.mean_packet_latency:7.1f} cycles/packet  "
            f"verified {result.tasks_verified}/{result.tasks_total}"
        )
    assert all(r.all_verified for r in results.values())
    print("\nAll NoC-computed MACs match the reference — ordering "
          "preserved functional correctness.")


if __name__ == "__main__":
    main()
