"""Synthetic NoC traffic across meshes — a campaign of the second kind.

Sweeps the standard synthetic traffic patterns (uniform random,
transpose, bit-complement, hotspot) over a grid of mesh sizes through
the campaign engine's ``synthetic`` job kind: points expand
declaratively, run on a worker pool, and cache content-addressed under
``--cache-dir`` — a second invocation reprints the same tables without
re-simulating.  No DNN is involved; this is the NoC substrate under
link-level load, the traffic class the related sorting-unit papers
evaluate on.

Usage::

    python examples/synthetic_sweep.py [--packets N] [--payload random|zero|counter]
                                       [--workers N] [--cache-dir DIR]
"""

from __future__ import annotations

import argparse

from repro.experiments import CampaignRunner, ResultCache, SweepSpec, campaign_report

MESHES = ["4x4", "8x8"]
PATTERNS = ["uniform", "transpose", "complement", "hotspot"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--packets", type=int, default=150)
    parser.add_argument("--payload", default="random",
                        choices=("random", "zero", "counter"))
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cache-dir", default=None,
                        help="reuse results across invocations")
    args = parser.parse_args()

    spec = SweepSpec(
        name="synthetic_sweep",
        kind="synthetic",
        base={
            "n_packets": args.packets,
            "payload": args.payload,
            "injection_window": 200,
            "link_width": 128,
        },
        axes={"mesh": MESHES, "pattern": PATTERNS},
    )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    runner = CampaignRunner(cache=cache, workers=args.workers)
    campaign = runner.run(spec, progress=print)
    assert not campaign.errors, campaign.summary()
    for record in campaign.records:
        result = record["result"]
        assert result["packets_delivered"] == args.packets, record["job_id"]

    print()
    print(campaign_report(campaign.records))
    print()
    print(campaign_report(campaign.records, "link").splitlines()[0], "…")
    print(campaign.summary())


if __name__ == "__main__":
    main()
