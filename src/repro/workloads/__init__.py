"""Workload generation: weight streams and no-NoC packet experiments."""

from repro.workloads.packets import (
    ComparisonMode,
    OrderingScope,
    PacketStream,
    StreamResult,
    build_packets,
    measure_stream,
    ones_count_grid,
)
from repro.workloads.traces import (
    TraceCollector,
    TrafficTrace,
    reencode_transitions,
)
from repro.workloads.streams import (
    model_weight_values,
    random_weights,
    trained_lenet_model,
    trained_lenet_weights,
    words_for_format,
)

__all__ = [
    "ComparisonMode",
    "OrderingScope",
    "PacketStream",
    "StreamResult",
    "build_packets",
    "measure_stream",
    "ones_count_grid",
    "model_weight_values",
    "random_weights",
    "trained_lenet_model",
    "trained_lenet_weights",
    "words_for_format",
    "TraceCollector",
    "TrafficTrace",
    "reencode_transitions",
]
