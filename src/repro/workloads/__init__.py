"""Workload generation: weight streams and no-NoC packet experiments."""

from repro.workloads.packets import (
    ComparisonMode,
    OrderingScope,
    PacketStream,
    StreamResult,
    build_packets,
    measure_stream,
    ones_count_grid,
)
from repro.workloads.traces import (
    PacketEvent,
    TraceCollector,
    TrafficTrace,
    reencode_per_link,
    reencode_transitions,
    replay_through_network,
    trace_digest,
)
from repro.workloads.streams import (
    model_weight_values,
    random_weights,
    trained_lenet_model,
    trained_lenet_weights,
    words_for_format,
)

__all__ = [
    "ComparisonMode",
    "OrderingScope",
    "PacketStream",
    "StreamResult",
    "build_packets",
    "measure_stream",
    "ones_count_grid",
    "model_weight_values",
    "random_weights",
    "trained_lenet_model",
    "trained_lenet_weights",
    "words_for_format",
    "PacketEvent",
    "TraceCollector",
    "TrafficTrace",
    "reencode_per_link",
    "reencode_transitions",
    "replay_through_network",
    "trace_digest",
]
