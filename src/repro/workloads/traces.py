"""Packet traffic traces: capture, persistence, offline re-analysis.

NocDAS exposes a "packet traffic trace" output (Fig. 7); the equivalent
here is a per-link record of every wire image in traversal order.
Attach a :class:`TraceCollector` to a network before running::

    network.trace_collector = TraceCollector()
    ... run ...
    trace = network.trace_collector.finish(link_width)
    trace.save("run.trace.json")

Offline, a trace supports exact BT recomputation (validated against the
live recorders), re-encoding with the related-work link codings (bus
invert / delta) without re-running the simulator, and per-link
summaries.  Payload ints can exceed 64 bits, so persistence uses hex
strings in a plain-JSON envelope.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.bits.transitions import stream_transitions
from repro.ordering.encodings import (
    bus_invert_encode,
    delta_encode,
    stream_transitions_with_invert_line,
)

__all__ = ["TraceCollector", "TrafficTrace", "reencode_transitions"]

_FORMAT_VERSION = 1


class TraceCollector:
    """Accumulates per-link wire images during a simulation."""

    def __init__(self) -> None:
        self._links: dict[str, list[int]] = {}
        self._cycles: dict[str, list[int]] = {}

    def record(self, link_name: str, bits: int, cycle: int) -> None:
        """Network hook: one flit crossed ``link_name``."""
        self._links.setdefault(link_name, []).append(bits)
        self._cycles.setdefault(link_name, []).append(cycle)

    def finish(self, link_width: int) -> "TrafficTrace":
        """Freeze the collected data into a trace."""
        return TrafficTrace(
            link_width=link_width,
            links={k: tuple(v) for k, v in self._links.items()},
            cycles={k: tuple(v) for k, v in self._cycles.items()},
        )


@dataclass(frozen=True)
class TrafficTrace:
    """Immutable per-link wire-image trace.

    Attributes:
        link_width: wire width in bits.
        links: link name -> wire images in traversal order.
        cycles: link name -> traversal cycles (same lengths).
    """

    link_width: int
    links: dict[str, tuple[int, ...]]
    cycles: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def total_transitions(self) -> int:
        """Exact BT recomputation (matches the live Fig. 8 recorders)."""
        return sum(
            stream_transitions(payloads) for payloads in self.links.values()
        )

    def total_flit_traversals(self) -> int:
        return sum(len(p) for p in self.links.values())

    def per_link_transitions(self) -> dict[str, int]:
        return {
            name: stream_transitions(payloads)
            for name, payloads in self.links.items()
        }

    # -- persistence -----------------------------------------------------

    def save(self, path: str | pathlib.Path) -> None:
        """Write the trace as JSON (payloads as hex strings)."""
        doc = {
            "version": _FORMAT_VERSION,
            "link_width": self.link_width,
            "links": {
                name: [format(p, "x") for p in payloads]
                for name, payloads in self.links.items()
            },
            "cycles": {
                name: list(cycles) for name, cycles in self.cycles.items()
            },
        }
        pathlib.Path(path).write_text(json.dumps(doc))

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "TrafficTrace":
        """Read a trace written by :meth:`save`."""
        doc = json.loads(pathlib.Path(path).read_text())
        if doc.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace version {doc.get('version')!r}"
            )
        return cls(
            link_width=int(doc["link_width"]),
            links={
                name: tuple(int(p, 16) for p in payloads)
                for name, payloads in doc["links"].items()
            },
            cycles={
                name: tuple(int(c) for c in cycles)
                for name, cycles in doc.get("cycles", {}).items()
            },
        )


def reencode_transitions(trace: TrafficTrace, coding: str) -> int:
    """Total BTs if every link additionally applied a link coding.

    Args:
        trace: the captured wire images (post-ordering, if any).
        coding: "none", "bus_invert" or "delta".

    Returns:
        NoC-wide BT count under the requested coding (bus-invert is
        charged for its extra line's transitions).
    """
    if coding == "none":
        return trace.total_transitions()
    total = 0
    for payloads in trace.links.values():
        if coding == "bus_invert":
            encoded = bus_invert_encode(payloads, trace.link_width)
        elif coding == "delta":
            encoded = delta_encode(payloads, trace.link_width)
        else:
            raise ValueError(f"unknown coding {coding!r}")
        total += stream_transitions_with_invert_line(encoded)
    return total
