"""Packet traffic traces: capture, persistence, replay, re-analysis.

NocDAS exposes a "packet traffic trace" output (Fig. 7); the equivalent
here is a per-link record of every wire image in traversal order, plus
the packet injection schedule that produced it.  Two capture hooks
exist:

* :class:`TraceCollector` (this module) — the lightweight wire-image
  collector: link payloads and cycles only, enough for offline BT
  re-scoring and the link-coding studies.
* :class:`repro.noc.recorder.TraceRecorder` — the full-fidelity hook:
  wire images with VC and owning packet per hop, plus every
  ``send_packet`` event, enough to *replay* the identical traffic
  through a fresh network (either cycle-loop core).

On-disk format
--------------

Traces are versioned.  Version 1 is the legacy plain-JSON envelope
(payloads as hex strings; wire images and cycles only).  Version 2 —
the default — is a gzip-compressed JSON envelope whose payload arrays
are packed as fixed-width words (``ceil(link_width / 8)`` bytes each,
``byte_order`` recorded in the envelope) and base64-encoded, and which
additionally carries per-hop VCs and packet ids, the packet injection
schedule, and the recorded :class:`~repro.noc.network.NoCConfig`.
:meth:`TrafficTrace.load` sniffs compression and dispatches on the
version field; truncated or corrupt files of either version raise
:class:`ValueError` rather than leaking codec internals.

Offline, a trace supports exact BT recomputation (validated against the
live recorders), re-applying the paper's transmission ordering at flit
granularity (:meth:`TrafficTrace.reordered`), re-encoding with the
related-work link codings (bus invert / delta) without re-running the
simulator, and — for full-fidelity traces — cycle-accurate replay
through either network core (:func:`replay_through_network`).

Storage
-------

Per-link columns are numpy-backed: wire images live in uint64 arrays
and cycles / VCs / packet ids in int64 arrays, wrapped in
:class:`repro.bits.wordarray.WordArray` so the tuple-facing API
(indexing, iteration, ``==`` against plain tuples) is unchanged while
``_stream_bts``, :meth:`TrafficTrace.reordered`,
:func:`trace_slice` and the :mod:`repro.obs` analytics stack operate
on the arrays directly.  Wire images wider than 64 bits (synthetic
link widths, header-carrying captures) fall back per column to an
arbitrary-precision tuple backing and the scalar scoring loops.
"""

from __future__ import annotations

import base64
import binascii
import dataclasses
import gzip
import hashlib
import json
import pathlib
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.bits.popcount import popcount_array
from repro.ioutil import atomic_write_bytes
from repro.bits.transitions import stream_transitions, stream_transitions_bytes
from repro.bits.wordarray import WordArray, as_int64_array
from repro.ordering.encodings import (
    bus_invert_encode,
    delta_encode,
    stream_transitions_with_invert_line,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.noc.network import Network

__all__ = [
    "TRACE_FORMAT_VERSION",
    "REPLAY_ORDERINGS",
    "TraceCollector",
    "PacketEvent",
    "TrafficTrace",
    "replay_through_network",
    "replay_window",
    "reencode_transitions",
    "reencode_per_link",
    "trace_digest",
    "trace_slice",
]

#: Default on-disk format version written by :meth:`TrafficTrace.save`.
TRACE_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)
_BYTE_ORDERS = ("big", "little")
_GZIP_MAGIC = b"\x1f\x8b"

#: Orderings that can be re-applied to recorded traffic at replay time.
#: "popcount_desc" is the paper's descending '1'-count transmission
#: ordering applied at flit granularity within each packet.
REPLAY_ORDERINGS = ("none", "popcount_desc")


class TraceCollector:
    """Accumulates per-link wire images during a simulation.

    The lightweight hook: records what each link saw and when, which is
    all the offline re-scoring paths need.  For replayable captures use
    :class:`repro.noc.recorder.TraceRecorder` instead.
    """

    def __init__(self) -> None:
        self._links: dict[str, list[int]] = {}
        self._cycles: dict[str, list[int]] = {}

    def record(
        self,
        link_name: str,
        bits: int,
        cycle: int,
        vc: int = 0,
        flit: Any = None,
    ) -> None:
        """Network hook: one flit crossed ``link_name``.

        ``vc`` and ``flit`` are part of the network's hook protocol but
        deliberately ignored here; :class:`TraceRecorder` keeps them.
        """
        self._links.setdefault(link_name, []).append(bits)
        self._cycles.setdefault(link_name, []).append(cycle)

    def finish(self, link_width: int) -> "TrafficTrace":
        """Freeze the collected data into a trace.

        The raw per-link lists go straight into the trace, whose
        ``__post_init__`` packs each into its numpy column in one
        pass — no intermediate tuples.
        """
        return TrafficTrace(
            link_width=link_width,
            links=dict(self._links),
            cycles=dict(self._cycles),
        )


@dataclass(frozen=True)
class PacketEvent:
    """One recorded packet injection: the replayable traffic unit.

    Attributes:
        cycle: network cycle at which ``send_packet`` was called.
        src / dst: endpoints of the packet.
        payloads: per-flit payload ints, head first.
    """

    cycle: int
    src: int
    dst: int
    payloads: tuple[int, ...]


@dataclass(frozen=True)
class TrafficTrace:
    """Immutable per-link wire-image trace.

    Attributes:
        link_width: wire width in bits.
        links: link name -> wire images in traversal order.
        cycles: link name -> traversal cycles (same lengths).
        vcs: link name -> output VC per traversal (full captures only).
        packet_ids: link name -> owning packet per traversal (full
            captures only; -1 marks an unknown owner).
        packets: packet injection schedule in send order (full
            captures only) — what :func:`replay_through_network`
            re-injects.
        noc: the recorded NoC config dict, if captured.

    Construction normalises every per-link column into a
    :class:`~repro.bits.wordarray.WordArray` (uint64 for wire images,
    int64 for cycles / VCs / packet ids), so plain tuples, lists, or
    already-wrapped columns are all accepted and compare equal through
    the tuple-facing API.  Wire images beyond 64 bits keep an
    arbitrary-precision tuple backing per column.
    """

    link_width: int
    links: dict[str, "WordArray | tuple[int, ...]"]
    cycles: dict[str, "WordArray | tuple[int, ...]"] = field(
        default_factory=dict
    )
    vcs: dict[str, "WordArray | tuple[int, ...]"] = field(
        default_factory=dict
    )
    packet_ids: dict[str, "WordArray | tuple[int, ...]"] = field(
        default_factory=dict
    )
    packets: tuple[PacketEvent, ...] = ()
    noc: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        # Idempotent column normalisation (dataclasses.replace re-runs
        # this on mixed already-wrapped / freshly-built dicts).
        object.__setattr__(
            self,
            "links",
            {k: WordArray(v, np.uint64) for k, v in self.links.items()},
        )
        for name in ("cycles", "vcs", "packet_ids"):
            object.__setattr__(
                self,
                name,
                {
                    k: WordArray(v, np.int64)
                    for k, v in getattr(self, name).items()
                },
            )

    def total_transitions(self) -> int:
        """Exact BT recomputation (matches the live Fig. 8 recorders)."""
        return sum(
            _stream_bts(payloads, self.link_width)
            for payloads in self.links.values()
        )

    def total_flit_traversals(self) -> int:
        return sum(len(p) for p in self.links.values())

    def per_link_transitions(self) -> dict[str, int]:
        return {
            name: _stream_bts(payloads, self.link_width)
            for name, payloads in self.links.items()
        }

    @property
    def is_replayable(self) -> bool:
        """True when the trace carries a packet schedule + NoC config."""
        return bool(self.packets) and self.noc is not None

    # -- offline re-ordering ---------------------------------------------

    def reordered(self, ordering: str = "popcount_desc") -> "TrafficTrace":
        """Re-apply a transmission ordering to the recorded traffic.

        Within each packet's run of flits on a link, the wire images
        are re-sorted by descending '1' count — the paper's ordering
        idea applied at flit granularity to traffic that already
        crossed the links.  Cycles, VCs and packet ids keep their
        recorded positions (the *slots* are unchanged; the contents
        are permuted).  The packet injection schedule is dropped from
        the result: it describes the *original* payload order, so a
        reordered trace is an offline artifact, not replayable (use
        :func:`replay_through_network` with ``ordering=`` to re-run
        reordered traffic through a network instead).

        Requires per-hop packet ids (a :class:`TraceRecorder` capture);
        the lightweight collector's traces cannot be reordered because
        packet boundaries are unknown.
        """
        if ordering == "none":
            return self
        if ordering not in REPLAY_ORDERINGS:
            raise ValueError(
                f"unknown replay ordering {ordering!r}; "
                f"use one of {REPLAY_ORDERINGS}"
            )
        missing = set(self.links) - set(self.packet_ids)
        if missing:
            raise ValueError(
                "trace carries no per-hop packet ids for links "
                f"{sorted(missing)}; record with TraceRecorder to "
                "re-apply orderings"
            )
        new_links: dict[str, WordArray] = {}
        for name, payloads in self.links.items():
            pids = as_int64_array(self.packet_ids[name])
            n = len(payloads)
            if n < 2:
                new_links[name] = payloads
                continue
            # One vectorised pass per link: runs of equal packet ids
            # become a run index, and a stable lexsort by (run,
            # -popcount) reproduces the per-run descending '1'-count
            # sort with arrival-order tie-breaks.
            arr = getattr(payloads, "array", None)
            if arr is not None:
                counts = popcount_array(arr).astype(np.int64)
            else:
                counts = np.fromiter(
                    (p.bit_count() for p in payloads),
                    dtype=np.int64,
                    count=n,
                )
            runs = np.empty(n, dtype=np.int64)
            runs[0] = 0
            np.cumsum(pids[1:] != pids[:-1], out=runs[1:])
            order = np.lexsort((-counts, runs))
            new_links[name] = payloads.take(order)
        return dataclasses.replace(self, links=new_links, packets=())

    # -- persistence -----------------------------------------------------

    def save(
        self,
        path: str | pathlib.Path,
        *,
        version: int = TRACE_FORMAT_VERSION,
        compress: bool | None = None,
        byte_order: str = "big",
    ) -> None:
        """Write the trace to disk.

        Args:
            path: output file (convention: ``*.trace.gz`` for the
                compressed default, ``*.trace.json`` for plain).
            version: on-disk format version (2 default; 1 writes the
                legacy plain-JSON envelope, which carries wire images
                and cycles only — the replay fields don't fit it).
            compress: gzip the envelope; defaults to True for v2 and
                False for v1.  Either version loads either way.
            byte_order: "big" or "little" — word packing order of the
                v2 payload arrays, recorded in the envelope so readers
                never guess.
        """
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported trace version {version!r}; "
                f"use one of {_SUPPORTED_VERSIONS}"
            )
        if byte_order not in _BYTE_ORDERS:
            raise ValueError(
                f"unknown byte order {byte_order!r}; use one of "
                f"{_BYTE_ORDERS}"
            )
        if version == 1:
            doc: dict[str, Any] = {
                "version": 1,
                "link_width": self.link_width,
                "links": {
                    name: [format(p, "x") for p in payloads]
                    for name, payloads in self.links.items()
                },
                "cycles": {
                    name: list(cycles)
                    for name, cycles in self.cycles.items()
                },
            }
        else:
            # Wire images can exceed link_width (include_header_bits
            # folds a side-band header above the payload), so the word
            # size is computed from the widest recorded image and
            # written into the envelope — never guessed by readers.
            widest = self.link_width
            for payloads in self.links.values():
                arr = getattr(payloads, "array", None)
                if arr is not None:
                    if arr.size:
                        top = int(arr.max()).bit_length()
                        if top > widest:
                            widest = top
                    continue
                for p in payloads:
                    if p.bit_length() > widest:
                        widest = p.bit_length()
            for event in self.packets:
                for p in event.payloads:
                    if p.bit_length() > widest:
                        widest = p.bit_length()
            word_bytes = _word_bytes(widest)
            doc = {
                "version": 2,
                "link_width": self.link_width,
                "byte_order": byte_order,
                "word_bytes": word_bytes,
                "links": {
                    name: _pack_words(payloads, word_bytes, byte_order)
                    for name, payloads in self.links.items()
                },
                "cycles": {
                    name: list(cycles)
                    for name, cycles in self.cycles.items()
                },
                "vcs": {
                    name: list(vcs) for name, vcs in self.vcs.items()
                },
                "packet_ids": {
                    name: list(pids)
                    for name, pids in self.packet_ids.items()
                },
                "packets": [
                    [
                        ev.cycle,
                        ev.src,
                        ev.dst,
                        _pack_words(ev.payloads, word_bytes, byte_order),
                    ]
                    for ev in self.packets
                ],
                "noc": self.noc,
            }
        raw = json.dumps(doc).encode("utf-8")
        if compress is None:
            compress = version >= 2
        if compress:
            # Fixed mtime keeps the bytes content-addressable: the same
            # trace always hashes to the same digest.
            raw = gzip.compress(raw, mtime=0)
        # Atomic temp-then-rename: a kill mid-save never leaves a torn
        # (and gzip-unreadable) trace where a good one used to be.
        atomic_write_bytes(pathlib.Path(path), raw)

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "TrafficTrace":
        """Read a trace written by :meth:`save` (any version).

        Compression is sniffed from the gzip magic, so renamed files
        load fine.  Truncated or corrupt files — torn writes, partial
        downloads, bad base64 — raise :class:`ValueError` naming the
        file instead of leaking codec exceptions.
        """
        path = pathlib.Path(path)
        return cls.from_bytes(path.read_bytes(), source=str(path))

    @classmethod
    def from_bytes(
        cls, raw: bytes, source: str = "<bytes>"
    ) -> "TrafficTrace":
        """Decode trace file content already in memory (see :meth:`load`).

        ``source`` names the origin in error messages.  Lets callers
        that also hash the file (the replay job kind) read it once.
        """
        path = source
        if raw[:2] == _GZIP_MAGIC:
            try:
                raw = gzip.decompress(raw)
            except (EOFError, OSError, zlib.error) as exc:
                raise ValueError(
                    f"truncated or corrupt trace file {path}: {exc}"
                ) from exc
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ValueError(
                f"truncated or corrupt trace file {path}: {exc}"
            ) from exc
        if not isinstance(doc, dict):
            raise ValueError(
                f"truncated or corrupt trace file {path}: envelope is "
                f"not an object"
            )
        version = doc.get("version")
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported trace version {version!r} in {path}; "
                f"supported: {_SUPPORTED_VERSIONS}"
            )
        try:
            if version == 1:
                return cls._from_v1(doc)
            return cls._from_v2(doc)
        except (KeyError, TypeError, ValueError, binascii.Error) as exc:
            raise ValueError(
                f"truncated or corrupt trace file {path}: {exc}"
            ) from exc

    @classmethod
    def _from_v1(cls, doc: dict[str, Any]) -> "TrafficTrace":
        return cls(
            link_width=int(doc["link_width"]),
            links={
                name: tuple(int(p, 16) for p in payloads)
                for name, payloads in doc["links"].items()
            },
            cycles={
                name: tuple(int(c) for c in cycles)
                for name, cycles in doc.get("cycles", {}).items()
            },
        )

    @classmethod
    def _from_v2(cls, doc: dict[str, Any]) -> "TrafficTrace":
        link_width = int(doc["link_width"])
        byte_order = doc["byte_order"]
        if byte_order not in _BYTE_ORDERS:
            raise ValueError(f"unknown byte order {byte_order!r}")
        word_bytes = doc.get("word_bytes")
        if word_bytes is None:  # envelopes written before the field
            word_bytes = _word_bytes(link_width)
        word_bytes = int(word_bytes)
        if word_bytes < 1:
            raise ValueError(f"bad word size {word_bytes}")
        return cls(
            link_width=link_width,
            links={
                name: _unpack_words(packed, word_bytes, byte_order)
                for name, packed in doc["links"].items()
            },
            cycles={
                name: tuple(int(c) for c in cycles)
                for name, cycles in doc.get("cycles", {}).items()
            },
            vcs={
                name: tuple(int(v) for v in vcs)
                for name, vcs in doc.get("vcs", {}).items()
            },
            packet_ids={
                name: tuple(int(p) for p in pids)
                for name, pids in doc.get("packet_ids", {}).items()
            },
            packets=tuple(
                PacketEvent(
                    cycle=int(cycle),
                    src=int(src),
                    dst=int(dst),
                    payloads=_unpack_words(
                        packed, word_bytes, byte_order
                    ).to_tuple(),
                )
                for cycle, src, dst, packed in doc.get("packets", [])
            ),
            noc=doc.get("noc"),
        )


def _stream_bts(payloads: Any, link_width: int) -> int:
    """Per-link BT count, vectorised where the payloads allow it.

    Array-backed columns (any :class:`TrafficTrace` whose wire images
    fit 64 bits) go straight through the byte-matrix kernel with no
    per-call conversion; plain tuples up to 64 bits pay one
    ``np.fromiter``.  Wider images — >64-bit links, or captures whose
    recorded header bits overflow uint64 — keep the scalar
    arbitrary-precision loop, which beats converting each bignum to
    bytes first.
    """
    n = len(payloads)
    if n < 2:
        return 0
    arr = getattr(payloads, "array", None)
    if arr is None and link_width <= 64:
        try:
            arr = np.fromiter(payloads, dtype="<u8", count=n)
        except (OverflowError, ValueError):
            arr = None
    if arr is not None:
        images = np.ascontiguousarray(arr.astype("<u8", copy=False))
        return stream_transitions_bytes(
            images.view(np.uint8).reshape(-1, 8)
        )
    return stream_transitions(payloads)


def _word_bytes(link_width: int) -> int:
    """Bytes per packed payload word."""
    return max(1, (link_width + 7) // 8)


def _pack_words(
    payloads: Any, word_bytes: int, byte_order: str
) -> str:
    """Fixed-width word array -> base64 text.

    Accepts array-backed :class:`~repro.bits.wordarray.WordArray`
    columns (used directly, no conversion) as well as plain tuples.
    """
    arr = getattr(payloads, "array", None)
    if word_bytes <= 8 and len(payloads) and arr is None:
        # Words that fit a numpy lane: one array pass instead of a
        # per-word to_bytes loop (the hot path for narrow-link traces).
        arr = np.fromiter(payloads, dtype="<u8", count=len(payloads))
    if word_bytes <= 8 and arr is not None and len(payloads):
        arr = np.ascontiguousarray(arr.astype("<u8", copy=False))
        if word_bytes < 8 and int(arr.max()) >> (8 * word_bytes):
            # Same loud failure the per-word to_bytes loop raised —
            # never silently truncate a payload's high bytes.
            raise OverflowError(
                f"payload wider than {word_bytes} bytes"
            )
        image = arr.view(np.uint8).reshape(-1, 8)[:, :word_bytes]
        if byte_order == "big":
            image = image[:, ::-1]
        blob = np.ascontiguousarray(image).tobytes()
    else:
        blob = b"".join(
            p.to_bytes(word_bytes, byte_order) for p in payloads
        )
    return base64.b64encode(blob).decode("ascii")


def _unpack_words(
    packed: str, word_bytes: int, byte_order: str
) -> WordArray:
    """Inverse of :func:`_pack_words`; rejects torn word arrays.

    Returns a :class:`~repro.bits.wordarray.WordArray`: on the ≤8-byte
    fast path the decoded uint64 array becomes the column's backing
    directly (no tuple materialisation); wider words (256/512-bit
    links) keep the arbitrary-precision from_bytes loop and the tuple
    fallback backing.
    """
    blob = base64.b64decode(packed.encode("ascii"), validate=True)
    if len(blob) % word_bytes:
        raise ValueError(
            f"payload array of {len(blob)} bytes is not a multiple of "
            f"the {word_bytes}-byte word size"
        )
    if word_bytes <= 8 and blob:
        # The lane-unpacking fast path: widen each word to a uint64
        # lane in one vectorised pass; wider words (256/512-bit links)
        # keep the arbitrary-precision from_bytes loop.
        lanes = np.frombuffer(blob, dtype=np.uint8).reshape(-1, word_bytes)
        if byte_order == "big":
            lanes = lanes[:, ::-1]
        wide = np.zeros((lanes.shape[0], 8), dtype=np.uint8)
        wide[:, :word_bytes] = lanes
        return WordArray(
            wide.reshape(-1).view("<u8").astype(np.uint64, copy=False)
        )
    return WordArray(
        tuple(
            int.from_bytes(blob[i : i + word_bytes], byte_order)
            for i in range(0, len(blob), word_bytes)
        )
    )


def trace_digest(source: str | pathlib.Path | bytes) -> str:
    """Short content hash of a trace file (cache-key component).

    Hashes the raw file bytes (pass ``bytes`` directly when the file
    is already in memory), so the digest pins exactly what replay
    jobs will read — any rewrite, even a lossless re-encode, changes
    the identity and re-simulates the point.
    """
    raw = (
        source
        if isinstance(source, bytes)
        else pathlib.Path(source).read_bytes()
    )
    return hashlib.sha256(raw).hexdigest()[:16]


def replay_through_network(
    trace: TrafficTrace,
    core: str | None = None,
    ordering: str = "none",
    overrides: dict[str, Any] | None = None,
    max_cycles: int = 500_000,
    trace_collector: Any = None,
) -> "Network":
    """Re-inject a recorded trace's traffic through a fresh network.

    The recorded packet schedule (cycle, src, dst, payloads) is
    replayed injection-for-injection on a mesh rebuilt from the
    trace's recorded NoC config, so — absent overrides — the replayed
    run reproduces the original link traffic exactly and the live BT
    ledger matches the recorded wire images.  This is the durable
    oracle the cross-core conformance suite replays through both
    cycle-loop cores.

    Args:
        trace: a full-fidelity (TraceRecorder) capture.
        core: cycle-loop core for the replay network; None uses the
            trace's recorded core setting / process default.
        ordering: "none" replays the traffic verbatim;
            "popcount_desc" re-applies the paper's descending
            '1'-count ordering to each packet's payloads before
            injection.
        overrides: NoC config fields to override at replay time
            (e.g. ``{"link_latency": 2}`` for timing what-ifs).
        max_cycles: drain budget.
        trace_collector: optional collector / recorder attached to the
            replay network before driving, so the replayed traffic can
            itself be re-captured (the edge-safe replay probe in
            :func:`repro.obs.diff.bisect_divergence` scores a
            re-capture instead of the drained ledger).

    Returns:
        The drained :class:`Network` (stats + ledger readable).
    """
    from repro.noc.flit import make_packet
    from repro.noc.network import Network, NoCConfig
    from repro.noc.traffic import drive_schedule

    if not trace.packets:
        raise ValueError(
            "trace has no packet injection events; record with "
            "repro.noc.recorder.TraceRecorder to enable replay"
        )
    if trace.noc is None:
        raise ValueError(
            "trace records no NoC config; cannot rebuild the mesh"
        )
    if ordering not in REPLAY_ORDERINGS:
        raise ValueError(
            f"unknown replay ordering {ordering!r}; "
            f"use one of {REPLAY_ORDERINGS}"
        )
    noc_kwargs = dict(trace.noc)
    if overrides:
        noc_kwargs.update(overrides)
    noc = NoCConfig.from_dict(noc_kwargs)
    network = Network(noc, core=core)
    network.trace_collector = trace_collector
    events = []
    for event in trace.packets:
        payloads = list(event.payloads)
        if ordering == "popcount_desc":
            payloads.sort(key=int.bit_count, reverse=True)
        events.append(
            (
                event.cycle,
                make_packet(event.src, event.dst, payloads, noc.link_width),
            )
        )
    return drive_schedule(network, events, max_cycles=max_cycles)


def trace_slice(
    trace: TrafficTrace, start: int, stop: int
) -> TrafficTrace:
    """Restrict a trace to the half-open cycle window ``[start, stop)``.

    Per-link hops keep only traversals whose recorded cycle falls in
    the window (VCs and packet ids are sliced in lockstep when
    present), and the packet schedule keeps only injections inside the
    window — so a sliced full-fidelity trace stays replayable via
    :func:`replay_window`.  Traversal cycles are non-decreasing per
    link, so a slice preserves each link's hop order and a prefix
    slice (``start == 0``) yields exact BT prefix sums.

    Window-edge semantics (pinned): hops and injections are filtered
    *independently* by their own cycles.  A packet injected before
    ``start`` contributes the hops it made inside the window but not
    its injection event, and a packet injected inside the window
    whose hops spill past ``stop`` keeps its injection but loses the
    spilled hops.  Replaying a slice's schedule therefore does **not**
    reproduce the slice's hop record at the window edges; probes that
    mix live replay with offline slice scoring must re-capture and
    slice the replayed traffic (see
    :func:`repro.obs.diff.bisect_divergence`'s edge-safe replay
    probe) rather than compare a drained ledger against a slice.

    Requires per-hop cycles for every link with traffic (any
    :class:`TraceCollector` / :class:`TraceRecorder` capture has
    them; hand-built traces without timing cannot be sliced).
    """
    if start < 0 or stop < start:
        raise ValueError(
            f"bad cycle window [{start}, {stop}): need 0 <= start <= stop"
        )
    missing = [
        name
        for name, payloads in trace.links.items()
        if payloads and len(trace.cycles.get(name, ())) != len(payloads)
    ]
    if missing:
        raise ValueError(
            "trace carries no per-hop cycles for links "
            f"{sorted(missing)}; cannot slice by cycle window"
        )
    links: dict[str, WordArray] = {}
    cycles: dict[str, WordArray] = {}
    vcs: dict[str, WordArray] = {}
    packet_ids: dict[str, WordArray] = {}
    empty = np.zeros(0, dtype=np.int64)
    for name, payloads in trace.links.items():
        link_cycles = trace.cycles.get(name)
        if link_cycles is None or not len(link_cycles):
            keep = empty
            link_cycles = WordArray(empty)
        else:
            carr = as_int64_array(link_cycles)
            keep = np.flatnonzero((carr >= start) & (carr < stop))
        links[name] = WordArray(payloads, np.uint64).take(keep)
        cycles[name] = WordArray(link_cycles, np.int64).take(keep)
        link_vcs = trace.vcs.get(name)
        if link_vcs is not None:
            vcs[name] = WordArray(link_vcs, np.int64).take(keep)
        link_pids = trace.packet_ids.get(name)
        if link_pids is not None:
            packet_ids[name] = WordArray(link_pids, np.int64).take(keep)
    return dataclasses.replace(
        trace,
        links=links,
        cycles=cycles,
        vcs=vcs,
        packet_ids=packet_ids,
        packets=tuple(
            ev for ev in trace.packets if start <= ev.cycle < stop
        ),
    )


def replay_window(
    trace: TrafficTrace,
    start: int,
    stop: int,
    core: str | None = None,
    ordering: str = "none",
    overrides: dict[str, Any] | None = None,
    max_cycles: int = 500_000,
    trace_collector: Any = None,
) -> "Network":
    """Replay only the packets injected in cycles ``[start, stop)``.

    A windowed :func:`replay_through_network`: the mesh is rebuilt
    from the trace's recorded NoC config and the schedule is filtered
    to the window before injection (injection cycles keep their
    recorded absolute values, and the network drains fully past
    ``stop``).  Replaying ``[0, span)`` therefore reproduces the
    whole-trace replay exactly — the bisection probes in
    :func:`repro.obs.diff.bisect_divergence` rely on the prefix form.
    """
    if start < 0 or stop < start:
        raise ValueError(
            f"bad cycle window [{start}, {stop}): need 0 <= start <= stop"
        )
    if not trace.packets:
        raise ValueError(
            "trace has no packet injection events; record with "
            "repro.noc.recorder.TraceRecorder to enable replay"
        )
    window_packets = tuple(
        ev for ev in trace.packets if start <= ev.cycle < stop
    )
    if not window_packets:
        # An idle window: rebuild the empty mesh so callers still get
        # a Network with a zeroed ledger rather than a special case.
        from repro.noc.network import Network, NoCConfig

        if trace.noc is None:
            raise ValueError(
                "trace records no NoC config; cannot rebuild the mesh"
            )
        noc_kwargs = dict(trace.noc)
        if overrides:
            noc_kwargs.update(overrides)
        network = Network(NoCConfig.from_dict(noc_kwargs), core=core)
        network.trace_collector = trace_collector
        return network
    return replay_through_network(
        dataclasses.replace(trace, packets=window_packets),
        core=core,
        ordering=ordering,
        overrides=overrides,
        max_cycles=max_cycles,
        trace_collector=trace_collector,
    )


def reencode_transitions(trace: TrafficTrace, coding: str) -> int:
    """Total BTs if every link additionally applied a link coding.

    Args:
        trace: the captured wire images (post-ordering, if any).
        coding: "none", "bus_invert" or "delta".

    Returns:
        NoC-wide BT count under the requested coding (bus-invert is
        charged for its extra line's transitions).
    """
    return sum(reencode_per_link(trace, coding).values())


def reencode_per_link(trace: TrafficTrace, coding: str) -> dict[str, int]:
    """Per-link BT counts under a link coding (see
    :func:`reencode_transitions`)."""
    out: dict[str, int] = {}
    for name, payloads in trace.links.items():
        if coding == "none":
            out[name] = _stream_bts(payloads, trace.link_width)
        elif coding == "bus_invert":
            encoded = bus_invert_encode(payloads, trace.link_width)
            out[name] = stream_transitions_with_invert_line(encoded)
        elif coding == "delta":
            encoded = delta_encode(payloads, trace.link_width)
            out[name] = stream_transitions_with_invert_line(encoded)
        else:
            raise ValueError(f"unknown coding {coding!r}")
    return out
