"""Weight/value streams for the no-NoC experiments (Sec. V-A).

Table I distinguishes four payload sources: random vs trained weights,
each in float-32 or fixed-8.  This module produces those value streams:

* :func:`random_weights` — the "randomly initialised" configuration
  (Kaiming-style uniform fan-in init, the stock initialisation of the
  mini framework).
* :func:`trained_lenet_weights` — trains LeNet on the synthetic digit
  task (the documented MNIST substitute) and concatenates all conv /
  linear weights.  Cached per (seed, epochs) because training is by
  far the slowest step of the no-NoC benches.
* :func:`words_for_format` — value stream -> wire words in either
  format (fixed-8 uses symmetric per-tensor quantisation).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.bits.formats import DataFormat, Float32Format
from repro.dnn.datasets import synthetic_digits
from repro.dnn.models import LeNet5, ModelSpec
from repro.dnn.quantize import quantize_symmetric
from repro.dnn.training import train_classifier

__all__ = [
    "random_weights",
    "model_weight_values",
    "trained_lenet_weights",
    "words_for_format",
]


def random_weights(n: int, seed: int = 3, fan_in: int = 25) -> np.ndarray:
    """Randomly initialised weights (uniform Kaiming bound for fan_in)."""
    if n <= 0:
        raise ValueError("need a positive number of weights")
    rng = np.random.default_rng(seed)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=n)


def model_weight_values(model: ModelSpec) -> np.ndarray:
    """All conv/linear weight scalars of a model, concatenated."""
    chunks = [
        layer.weight.value.reshape(-1)
        for _, layer in model.weighted_layers()
    ]
    if not chunks:
        raise ValueError("model has no weighted layers")
    return np.concatenate(chunks)


@lru_cache(maxsize=4)
def _trained_lenet_cached(
    seed: int, epochs: int, n_samples: int, weight_decay: float
) -> tuple[ModelSpec, float]:
    """Train LeNet once per configuration; returns (model, final_loss)."""
    rng = np.random.default_rng(seed)
    model = LeNet5(rng=rng)
    dataset = synthetic_digits(n_samples, seed=seed)
    report = train_classifier(
        model,
        dataset,
        epochs=epochs,
        batch_size=32,
        lr=0.05,
        weight_decay=weight_decay,
        seed=seed,
    )
    return model, report.final_loss


def trained_lenet_weights(
    seed: int = 3,
    epochs: int = 4,
    n_samples: int = 768,
    weight_decay: float = 2e-3,
) -> np.ndarray:
    """Weights of a LeNet trained on the synthetic digit task.

    The default regime (4 epochs, mild weight decay) drives the weight
    distribution toward the small-magnitude profile of converged
    training runs — the statistics Table I's "trained" rows measure.
    """
    model, _ = _trained_lenet_cached(seed, epochs, n_samples, weight_decay)
    return model_weight_values(model)


def trained_lenet_model(
    seed: int = 3,
    epochs: int = 4,
    n_samples: int = 768,
    weight_decay: float = 2e-3,
) -> ModelSpec:
    """The trained LeNet itself (for the with-NoC trained configs)."""
    model, _ = _trained_lenet_cached(seed, epochs, n_samples, weight_decay)
    return model


def words_for_format(
    values: np.ndarray, data_format: str
) -> tuple[np.ndarray, DataFormat]:
    """Convert real values to wire words in the requested format.

    Returns:
        (words, format): unsigned word array plus the codec that
        produced it (fixed-8 carries its per-tensor scale).
    """
    if data_format == "float32":
        fmt: DataFormat = Float32Format()
        return fmt.encode(values), fmt
    if data_format == "fixed8":
        quant = quantize_symmetric(values)
        from repro.bits.formats import Fixed8Format

        fmt = Fixed8Format(scale=quant.scale)
        return quant.words(), fmt
    raise ValueError(f"unknown data format {data_format!r}")
