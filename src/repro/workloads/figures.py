"""Canonical paper-figure workloads.

One definition of the (model, image) pairs the Fig. 12/13 benches
simulate, shared by ``benchmarks/conftest.py`` and the golden
regression suite (``tests/test_golden_figures.py``) so the two can
never drift apart: if a seed here changes, the benches and the golden
tests move together and the recorded tables must be regenerated in the
same commit.
"""

from __future__ import annotations

import numpy as np

from repro.dnn.datasets import synthetic_digits, synthetic_shapes
from repro.dnn.models import DarkNetSlim
from repro.workloads.streams import trained_lenet_model

__all__ = [
    "figure_trained_lenet",
    "figure_lenet_image",
    "figure_darknet_model",
    "figure_darknet_image",
]


def figure_trained_lenet():
    """The benches' trained LeNet (training seed 3, cached)."""
    return trained_lenet_model()


def figure_lenet_image() -> np.ndarray:
    """The Fig. 12/13 LeNet sample image."""
    return synthetic_digits(1, seed=5).images[0]


def figure_darknet_model() -> DarkNetSlim:
    """The Fig. 13 DarkNet-like model (init seed 21)."""
    return DarkNetSlim(rng=np.random.default_rng(21))


def figure_darknet_image() -> np.ndarray:
    """The Fig. 13 DarkNet sample image."""
    return synthetic_shapes(1, seed=5).images[0]
