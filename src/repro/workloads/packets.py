"""The no-NoC packet-stream experiment (Sec. V-A, Table I, Fig. 9).

10 000 packets are generated from real weights.  Following Fig. 2, a
packet carries one *kernel* worth of weights (25 for LeNet's 5x5
kernels), zero-padded up to a whole number of flits ("zeros are padded
when the weight's kernel size doesn't exactly match the flit size").
BTs are measured between consecutive flits of the stream — wormhole
switching keeps a packet's flits contiguous on a link.

Ordering sorts values by '1'-bit count descending.  The *scope* of the
sort matters (DESIGN.md §6):

* ``STREAM`` — one global sort over the whole stream, producing the
  monotone count descent of Fig. 9 (padded zeros gather into zero
  flits at the tail).  This is the Table I configuration.
* ``WINDOW`` — sort within fixed windows of packets, modelling a
  finite ordering-unit buffer.
* ``PACKET`` — sort each packet independently (the granularity the
  with-NoC ordering units use).

Alternative comparison modes quantify how much of the win depends on
stream locality (random flit pairs erase it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.bits.lanes import lane_fast_path, pack_lane_matrix
from repro.bits.popcount import popcount_array
from repro.bits.transitions import transition_matrix

__all__ = [
    "ComparisonMode",
    "OrderingScope",
    "PacketStream",
    "StreamResult",
    "build_packets",
    "measure_stream",
    "ones_count_grid",
]


class ComparisonMode(enum.Enum):
    """How flit pairs are chosen for BT measurement."""

    STREAM = "stream"  # consecutive flits of the full stream (default)
    RANDOM_PAIRS = "random_pairs"  # random flit pairs (ablation)
    INTRA_PACKET = "intra_packet"  # consecutive flits within packets only


class OrderingScope(enum.Enum):
    """How far the '1'-count sort reaches."""

    PACKET = "packet"
    WINDOW = "window"
    STREAM = "stream"


@dataclass(frozen=True)
class PacketStream:
    """A generated flit stream.

    Attributes:
        flits: shape ``(n_flits, values_per_flit)`` unsigned word
            matrix, in link order.
        flits_per_packet: packet length in flits.
        word_width: lane width in bits.
    """

    flits: np.ndarray
    flits_per_packet: int
    word_width: int

    @property
    def values_per_flit(self) -> int:
        return int(self.flits.shape[1])

    @property
    def flit_bits(self) -> int:
        return self.values_per_flit * self.word_width

    @property
    def n_flits(self) -> int:
        return int(self.flits.shape[0])

    @property
    def n_packets(self) -> int:
        return self.n_flits // self.flits_per_packet

    def payload_ints(self) -> list[int]:
        """Per-flit payload integers (lane 0 in the low bits)."""
        if lane_fast_path(self.word_width):
            return pack_lane_matrix(self.flits, self.word_width)
        out = []
        for row in self.flits:
            payload = 0
            for lane, word in enumerate(row):
                payload |= int(word) << (lane * self.word_width)
            out.append(payload)
        return out


@dataclass(frozen=True)
class StreamResult:
    """BT measurement of one stream.

    Attributes:
        total_transitions: BTs summed over all compared pairs.
        comparisons: number of flit pairs compared.
    """

    total_transitions: int
    comparisons: int

    @property
    def bt_per_flit(self) -> float:
        """Mean BTs per comparison — the Table I metric."""
        if self.comparisons == 0:
            return 0.0
        return self.total_transitions / self.comparisons


def build_packets(
    words: np.ndarray,
    n_packets: int,
    values_per_flit: int,
    word_width: int,
    kernel_size: int | None = None,
    flits_per_packet: int | None = None,
    ordered: bool = False,
    scope: OrderingScope = OrderingScope.STREAM,
    window_packets: int = 32,
    rng: np.random.Generator | None = None,
) -> PacketStream:
    """Assemble a packet stream from a weight-word pool.

    Args:
        words: wire-word pool (cycled when shorter than the demand).
        n_packets: packets to build (paper: 10 000).
        values_per_flit: lanes per flit (paper: 8).
        word_width: lane width (32 or 8).
        kernel_size: real weights per packet before zero padding
            (paper/Fig. 2: 25).  Defaults to filling the packet.
        flits_per_packet: packet length; defaults to the smallest
            number of flits that holds ``kernel_size`` values.
        ordered: apply the '1'-count descending ordering.
        scope: sort reach (stream = Table I default).
        window_packets: window size for ``OrderingScope.WINDOW``.
        rng: when given, randomises each packet's starting offset in
            the pool (otherwise packets tile the pool sequentially).
    """
    if n_packets <= 0 or values_per_flit <= 0:
        raise ValueError("stream geometry must be positive")
    pool = np.asarray(words).reshape(-1)
    if pool.dtype.kind != "u":
        raise ValueError(f"expected unsigned words, got {pool.dtype}")
    if pool.size == 0:
        raise ValueError("empty word pool")
    if kernel_size is None:
        if flits_per_packet is None:
            flits_per_packet = 4
        kernel_size = values_per_flit * flits_per_packet
    if kernel_size <= 0:
        raise ValueError("kernel_size must be positive")
    if flits_per_packet is None:
        flits_per_packet = -(-kernel_size // values_per_flit)
    slots = flits_per_packet * values_per_flit
    if kernel_size > slots:
        raise ValueError(
            f"kernel of {kernel_size} values does not fit "
            f"{flits_per_packet} flits of {values_per_flit}"
        )
    # Draw kernel_size consecutive words per packet, zero-pad to slots.
    data = np.zeros((n_packets, slots), dtype=pool.dtype)
    if rng is None:
        starts = (np.arange(n_packets) * kernel_size) % pool.size
    else:
        starts = rng.integers(0, pool.size, size=n_packets)
    offsets = np.arange(kernel_size)
    indices = (starts[:, None] + offsets[None, :]) % pool.size
    data[:, :kernel_size] = pool[indices]

    if ordered:
        data = _apply_ordering(data, scope, window_packets)
    flits = data.reshape(n_packets * flits_per_packet, values_per_flit)
    return PacketStream(
        flits=flits,
        flits_per_packet=flits_per_packet,
        word_width=word_width,
    )


def _apply_ordering(
    data: np.ndarray, scope: OrderingScope, window_packets: int
) -> np.ndarray:
    """Sort slot values by popcount descending at the requested scope.

    Sorting is stable so equal-count values keep their arrival order,
    matching :func:`repro.ordering.strategies.sort_by_popcount`.
    """
    if scope is OrderingScope.PACKET:
        counts = popcount_array(data)
        order = np.argsort(-counts.astype(np.int64), axis=1, kind="stable")
        return np.take_along_axis(data, order, axis=1)
    if scope is OrderingScope.STREAM:
        flat = data.reshape(-1)
        counts = popcount_array(flat)
        order = np.argsort(-counts.astype(np.int64), kind="stable")
        return flat[order].reshape(data.shape)
    if scope is OrderingScope.WINDOW:
        if window_packets <= 0:
            raise ValueError("window_packets must be positive")
        out = data.copy()
        for start in range(0, data.shape[0], window_packets):
            chunk = out[start : start + window_packets].reshape(-1)
            counts = popcount_array(chunk)
            order = np.argsort(-counts.astype(np.int64), kind="stable")
            out[start : start + window_packets] = chunk[order].reshape(
                out[start : start + window_packets].shape
            )
        return out
    raise ValueError(f"unhandled ordering scope {scope}")


def measure_stream(
    stream: PacketStream,
    mode: ComparisonMode = ComparisonMode.STREAM,
    rng: np.random.Generator | None = None,
    n_random_pairs: int | None = None,
) -> StreamResult:
    """Measure BTs over a stream under a comparison mode."""
    flits = stream.flits
    if mode is ComparisonMode.STREAM:
        bts = transition_matrix(flits)
        return StreamResult(int(bts.sum()), int(bts.size))
    if mode is ComparisonMode.INTRA_PACKET:
        fpp = stream.flits_per_packet
        total = 0
        comparisons = 0
        for start in range(0, stream.n_flits, fpp):
            bts = transition_matrix(flits[start : start + fpp])
            total += int(bts.sum())
            comparisons += int(bts.size)
        return StreamResult(total, comparisons)
    if mode is ComparisonMode.RANDOM_PAIRS:
        if rng is None:
            rng = np.random.default_rng(0)
        n = n_random_pairs or stream.n_flits
        idx_a = rng.integers(0, stream.n_flits, size=n)
        idx_b = rng.integers(0, stream.n_flits, size=n)
        xored = flits[idx_a] ^ flits[idx_b]
        total = int(popcount_array(xored).sum())
        return StreamResult(total, n)
    raise ValueError(f"unhandled comparison mode {mode}")


def ones_count_grid(stream: PacketStream) -> np.ndarray:
    """Per-flit, per-lane '1'-bit counts — the Fig. 9 visualisation."""
    return popcount_array(stream.flits).astype(np.int64)
