"""Observability layer: metrics registry, trace analytics, trace diff.

The subsystem has three parts:

- :mod:`repro.obs.metrics` — a lightweight metrics registry (counters,
  maxima/"gauges", histograms, timers) that the simulator, NoC cores,
  codec, and campaign runner publish into when enabled.  Hot loops keep
  plain integer attribute counters that cost nothing extra; the registry
  is the opt-in aggregation and serialisation layer on top.
- :mod:`repro.obs.analytics` — vectorised analytics over
  :class:`~repro.workloads.traces.TrafficTrace`: per-link BT heat
  bucketed by cycle window, BT attribution by packet owner, burstiness
  and link-utilisation summaries.
- :mod:`repro.obs.diff` — ``trace_diff`` plus log2 window bisection of
  a divergence down to its first offending cycle window and link.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    active_registry,
    disable_metrics,
    enable_metrics,
    merge_metrics,
    metric_family,
    metrics_enabled,
    metrics_session,
    metrics_suspended,
)
from repro.obs.analytics import (
    DEFAULT_WINDOW,
    LinkHeat,
    TraceStats,
    bt_by_owner,
    burstiness,
    hop_transitions,
    link_heat,
    link_utilisation,
    trace_span,
    trace_stats,
)
from repro.obs.diff import (
    BisectResult,
    LinkDelta,
    TraceDiff,
    bisect_divergence,
    trace_diff,
)

__all__ = [
    "BisectResult",
    "DEFAULT_WINDOW",
    "LinkDelta",
    "LinkHeat",
    "MetricsRegistry",
    "TraceDiff",
    "TraceStats",
    "active_registry",
    "bisect_divergence",
    "bt_by_owner",
    "burstiness",
    "disable_metrics",
    "enable_metrics",
    "hop_transitions",
    "link_heat",
    "link_utilisation",
    "merge_metrics",
    "metric_family",
    "metrics_enabled",
    "metrics_session",
    "metrics_suspended",
    "trace_diff",
    "trace_span",
    "trace_stats",
]
