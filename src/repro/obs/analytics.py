"""Vectorised trace analytics: heat, attribution, burstiness.

Everything here is offline analysis over a recorded
:class:`~repro.workloads.traces.TrafficTrace`.  The kernels reuse the
byte-matrix machinery from :mod:`repro.bits` — per-hop bit transitions
are one XOR + LUT-popcount pass over the packed wire images, and the
cycle-window bucketing on top is a single ``np.add.at`` scatter.

Terminology: a *hop* is one flit traversal of one link (one entry in
``trace.links[name]``); hop ``i`` (``i >= 1``) is charged the BTs of
flipping the link's wires from image ``i-1`` to image ``i``, at the
cycle the arriving flit crossed (``trace.cycles[name][i]``).  A
*window* is a half-open cycle range ``[w*window, (w+1)*window)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.bits.lanes import payloads_to_bytes
from repro.bits.popcount import POPCOUNT_LUT
from repro.bits.wordarray import as_int64_array
from repro.workloads.traces import TrafficTrace

__all__ = [
    "DEFAULT_WINDOW",
    "LinkHeat",
    "TraceStats",
    "bt_by_owner",
    "burstiness",
    "hop_transitions",
    "link_heat",
    "link_utilisation",
    "trace_span",
    "trace_stats",
]

#: Default cycle-window width for heat bucketing and diff/bisect.
DEFAULT_WINDOW = 64


def hop_transitions(
    payloads: Sequence[int], link_width: int
) -> np.ndarray:
    """Per-hop BT vector for one link's wire-image stream.

    Entry ``i`` is the transition count between images ``i`` and
    ``i+1`` (length ``len(payloads) - 1``; empty for fewer than two
    hops).  Summing reproduces the trace's per-link BT exactly.
    """
    n = len(payloads)
    if n < 2:
        return np.zeros(0, dtype=np.int64)
    arr = getattr(payloads, "array", None)
    if arr is None and link_width <= 64:
        try:
            arr = np.fromiter(payloads, dtype="<u8", count=n)
        except (OverflowError, ValueError):
            arr = None
    if arr is not None:
        arr = np.ascontiguousarray(arr.astype("<u8", copy=False))
        mat = arr.view(np.uint8).reshape(-1, 8)
        return POPCOUNT_LUT[mat[1:] ^ mat[:-1]].sum(
            axis=1, dtype=np.int64
        )
    # Wide or header-carrying images: pack at the exact byte width.
    word_bytes = max(
        1, (max(int(p).bit_length() for p in payloads) + 7) // 8
    )
    mat = payloads_to_bytes(payloads, word_bytes)
    return POPCOUNT_LUT[mat[1:] ^ mat[:-1]].sum(axis=1, dtype=np.int64)


def trace_span(trace: TrafficTrace) -> int:
    """Cycle span of a trace: one past the last recorded cycle.

    Considers both link traversal cycles and the packet injection
    schedule (an injected-but-undelivered packet still extends the
    span).  Empty traces span 0 cycles.
    """
    last = -1
    for cycles in trace.cycles.values():
        if len(cycles):
            arr = getattr(cycles, "array", None)
            if arr is not None:
                last = max(last, int(arr.max()))
            else:
                last = max(last, max(cycles))
    for event in trace.packets:
        if event.cycle > last:
            last = event.cycle
    return last + 1


def _require_cycles(trace: TrafficTrace) -> None:
    missing = [
        name
        for name, payloads in trace.links.items()
        if len(payloads) > 1
        and len(trace.cycles.get(name, ())) != len(payloads)
    ]
    if missing:
        raise ValueError(
            "trace carries no per-hop cycles for links "
            f"{sorted(missing)}; cycle-window analytics need a capture "
            "with timing (TraceCollector or TraceRecorder)"
        )


@dataclass(frozen=True)
class LinkHeat:
    """Per-link BT heat bucketed by cycle window.

    Attributes:
        window: bucket width in cycles.
        n_windows: bucket count (covers ``[0, n_windows * window)``).
        heat: link name -> per-window BT counts (len ``n_windows``).
        flits: link name -> per-window flit traversal counts.
    """

    window: int
    n_windows: int
    heat: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    flits: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def totals(self) -> Dict[str, int]:
        """Per-link BT totals (equals ``per_link_transitions``)."""
        return {name: int(sum(row)) for name, row in self.heat.items()}

    def window_totals(self) -> Tuple[int, ...]:
        """NoC-wide BT per window (summed across links)."""
        out = np.zeros(self.n_windows, dtype=np.int64)
        for row in self.heat.values():
            out += np.asarray(row, dtype=np.int64)
        return tuple(int(v) for v in out)

    def hottest(self, top: int = 5) -> list[Tuple[str, int, int]]:
        """The ``top`` hottest (link, window, bts) cells."""
        cells = [
            (name, w, bts)
            for name, row in self.heat.items()
            for w, bts in enumerate(row)
            if bts
        ]
        cells.sort(key=lambda c: (-c[2], c[0], c[1]))
        return cells[:top]


def link_heat(
    trace: TrafficTrace, window: int = DEFAULT_WINDOW
) -> LinkHeat:
    """Bucket every link's BTs (and flit counts) by cycle window.

    Hop ``i``'s transitions land in the window of its arrival cycle.
    Per-link heat rows sum to exactly
    :meth:`TrafficTrace.per_link_transitions`.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    _require_cycles(trace)
    span = trace_span(trace)
    n_windows = max(1, -(-span // window))
    heat: Dict[str, Tuple[int, ...]] = {}
    flits: Dict[str, Tuple[int, ...]] = {}
    for name, payloads in trace.links.items():
        cycles = as_int64_array(trace.cycles.get(name, ()))
        buckets = np.zeros(n_windows, dtype=np.int64)
        counts = np.zeros(n_windows, dtype=np.int64)
        if cycles.size:
            np.add.at(counts, cycles // window, 1)
        if len(payloads) > 1:
            bts = hop_transitions(payloads, trace.link_width)
            np.add.at(buckets, cycles[1:] // window, bts)
        heat[name] = tuple(int(v) for v in buckets)
        flits[name] = tuple(int(v) for v in counts)
    return LinkHeat(
        window=window, n_windows=n_windows, heat=heat, flits=flits
    )


def bt_by_owner(trace: TrafficTrace) -> Dict[int, int]:
    """BT attribution by owning packet id, across all links.

    Hop ``i``'s transitions are charged to the packet that drove the
    new wire image (``packet_ids[name][i]``); ``-1`` collects hops
    with an unknown owner.  Requires a full-fidelity capture
    (:class:`~repro.noc.recorder.TraceRecorder`).
    """
    missing = [
        name
        for name, payloads in trace.links.items()
        if len(payloads) > 1
        and len(trace.packet_ids.get(name, ())) != len(payloads)
    ]
    if missing:
        raise ValueError(
            "trace carries no per-hop packet ids for links "
            f"{sorted(missing)}; record with TraceRecorder for "
            "owner attribution"
        )
    out: Dict[int, int] = {}
    for name, payloads in trace.links.items():
        if len(payloads) < 2:
            continue
        bts = hop_transitions(payloads, trace.link_width)
        owners = as_int64_array(trace.packet_ids[name])[1:]
        for pid in np.unique(owners):
            total = int(bts[owners == pid].sum())
            if total:
                key = int(pid)
                out[key] = out.get(key, 0) + total
    return out


def burstiness(
    trace: TrafficTrace, window: int = DEFAULT_WINDOW
) -> Dict[str, float]:
    """Per-link burstiness: coefficient of variation of flits/window.

    0 means perfectly uniform traffic; larger values mean burstier.
    Links with no traffic report 0.
    """
    hm = link_heat(trace, window)
    out: Dict[str, float] = {}
    for name, counts in hm.flits.items():
        arr = np.asarray(counts, dtype=np.float64)
        mean = arr.mean() if arr.size else 0.0
        out[name] = float(arr.std() / mean) if mean > 0 else 0.0
    return out


def link_utilisation(trace: TrafficTrace) -> Dict[str, float]:
    """Per-link utilisation: flit traversals / trace cycle span."""
    span = trace_span(trace)
    if span <= 0:
        return {name: 0.0 for name in trace.links}
    return {
        name: len(payloads) / span
        for name, payloads in trace.links.items()
    }


@dataclass(frozen=True)
class TraceStats:
    """One-screen summary of a trace (the ``repro trace stats`` view)."""

    link_width: int
    links: int
    active_links: int
    flit_hops: int
    total_bts: int
    span_cycles: int
    packets: int
    replayable: bool
    per_link: Dict[str, int] = field(default_factory=dict)
    mean_utilisation: float = 0.0
    peak_link: str = ""
    peak_link_bts: int = 0

    def lines(self) -> list[str]:
        """Render as aligned report lines."""
        out = [
            f"link width        : {self.link_width} bits",
            f"links             : {self.links} "
            f"({self.active_links} active)",
            f"flit hops         : {self.flit_hops}",
            f"total BTs         : {self.total_bts}",
            f"cycle span        : {self.span_cycles}",
            f"packets           : {self.packets}"
            + (" (replayable)" if self.replayable else ""),
            f"mean utilisation  : {self.mean_utilisation:.4f}",
        ]
        if self.peak_link:
            out.append(
                f"hottest link      : {self.peak_link} "
                f"({self.peak_link_bts} BTs)"
            )
        return out


def trace_stats(trace: TrafficTrace) -> TraceStats:
    """Compute the summary :class:`TraceStats` for a trace."""
    per_link = trace.per_link_transitions()
    util = link_utilisation(trace)
    peak_link, peak_bts = "", 0
    for name in sorted(per_link):
        if per_link[name] > peak_bts:
            peak_link, peak_bts = name, per_link[name]
    return TraceStats(
        link_width=trace.link_width,
        links=len(trace.links),
        active_links=sum(1 for p in trace.links.values() if p),
        flit_hops=trace.total_flit_traversals(),
        total_bts=sum(per_link.values()),
        span_cycles=trace_span(trace),
        packets=len(trace.packets),
        replayable=trace.is_replayable,
        per_link=per_link,
        mean_utilisation=(
            float(np.mean(list(util.values()))) if util else 0.0
        ),
        peak_link=peak_link,
        peak_link_bts=peak_bts,
    )
