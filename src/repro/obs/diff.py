"""Trace diffing and log2 window bisection of BT divergences.

``trace_diff`` compares two traces' per-link / per-window BT heat and
reports exactly where they disagree.  ``bisect_divergence`` answers
the harder production question — *which cycle window first went wrong*
— with a binary search over prefix windows, probing either offline
(slice + rescore, cheap) or by windowed replay through a fresh network
(:func:`~repro.workloads.traces.replay_window`, the expensive oracle
that log2 probing exists for).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.obs.analytics import DEFAULT_WINDOW, link_heat, trace_span
from repro.workloads.traces import (
    TrafficTrace,
    replay_window,
    trace_slice,
)

__all__ = [
    "BisectResult",
    "LinkDelta",
    "TraceDiff",
    "bisect_divergence",
    "trace_diff",
]


@dataclass(frozen=True)
class LinkDelta:
    """One diverging link in a trace diff.

    Attributes:
        link: link name.
        bts_a / bts_b: total BTs on the link in each trace.
        delta: ``bts_b - bts_a``.
        first_window: index of the first cycle window whose BT counts
            differ.
        windows: every diverging window as ``(index, delta)`` pairs,
            ascending by index.
    """

    link: str
    bts_a: int
    bts_b: int
    delta: int
    first_window: int
    windows: Tuple[Tuple[int, int], ...] = ()


@dataclass(frozen=True)
class TraceDiff:
    """Result of :func:`trace_diff`.

    Empty (``is_empty``) iff the traces carry identical per-link,
    per-window BT heat.  Swapping the operands negates every delta
    and swaps ``only_a``/``only_b`` — nothing else changes.
    """

    window: int
    n_windows: int
    only_a: Tuple[str, ...] = ()
    only_b: Tuple[str, ...] = ()
    deltas: Tuple[LinkDelta, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (self.only_a or self.only_b or self.deltas)

    def first_divergence(self) -> Optional[Tuple[str, int]]:
        """Earliest diverging ``(link, window)``; None when empty.

        Ties on window break alphabetically by link name.
        """
        best: Optional[Tuple[str, int]] = None
        for d in self.deltas:
            if (
                best is None
                or d.first_window < best[1]
                or (d.first_window == best[1] and d.link < best[0])
            ):
                best = (d.link, d.first_window)
        return best

    def lines(self, top: int = 10) -> list[str]:
        """Render as report lines (``top`` bounds per-link rows)."""
        if self.is_empty:
            return ["traces are identical (per-link, per-window BT heat)"]
        out = [
            f"{len(self.deltas)} diverging link(s) at window={self.window}"
        ]
        for name in self.only_a:
            out.append(f"  only in A: {name}")
        for name in self.only_b:
            out.append(f"  only in B: {name}")
        shown = self.deltas[:top]
        for d in shown:
            out.append(
                f"  {d.link}: {d.bts_a} -> {d.bts_b} BTs "
                f"(delta {d.delta:+d}, first diverging window "
                f"{d.first_window} = cycles "
                f"[{d.first_window * self.window}, "
                f"{(d.first_window + 1) * self.window}), "
                f"{len(d.windows)} window(s) differ)"
            )
        if len(self.deltas) > len(shown):
            out.append(
                f"  ... and {len(self.deltas) - len(shown)} more link(s)"
            )
        first = self.first_divergence()
        if first is not None:
            link, w = first
            out.append(
                f"first divergence: link {link}, window {w} "
                f"(cycles [{w * self.window}, {(w + 1) * self.window}))"
            )
        return out


def trace_diff(
    a: TrafficTrace, b: TrafficTrace, window: int = DEFAULT_WINDOW
) -> TraceDiff:
    """Diff two traces' per-link BT heat at cycle-window granularity.

    A link diverges when its per-window BT vector differs between the
    traces (links absent from one side but carrying traffic in the
    other are reported separately under ``only_a``/``only_b``).
    ``trace_diff(t, t)`` is empty for any trace; the diff is symmetric
    up to sign.
    """
    if a.link_width != b.link_width:
        raise ValueError(
            f"traces have different link widths "
            f"({a.link_width} vs {b.link_width}); refusing to diff"
        )
    heat_a = link_heat(a, window)
    heat_b = link_heat(b, window)
    n_windows = max(heat_a.n_windows, heat_b.n_windows)

    def padded(row: Tuple[int, ...]) -> Tuple[int, ...]:
        return row + (0,) * (n_windows - len(row))

    names_a, names_b = set(heat_a.heat), set(heat_b.heat)
    # A link missing from one trace only matters if the other saw
    # traffic on it (an idle link and an absent link are the same
    # physical statement).
    only_a = tuple(
        sorted(
            n for n in names_a - names_b if any(heat_a.heat[n])
            or any(heat_a.flits[n])
        )
    )
    only_b = tuple(
        sorted(
            n for n in names_b - names_a if any(heat_b.heat[n])
            or any(heat_b.flits[n])
        )
    )
    deltas = []
    for name in sorted(names_a & names_b):
        row_a = padded(heat_a.heat[name])
        row_b = padded(heat_b.heat[name])
        diverging = tuple(
            (w, vb - va)
            for w, (va, vb) in enumerate(zip(row_a, row_b))
            if va != vb
        )
        if not diverging:
            continue
        deltas.append(
            LinkDelta(
                link=name,
                bts_a=sum(row_a),
                bts_b=sum(row_b),
                delta=sum(row_b) - sum(row_a),
                first_window=diverging[0][0],
                windows=diverging,
            )
        )
    return TraceDiff(
        window=window,
        n_windows=n_windows,
        only_a=only_a,
        only_b=only_b,
        deltas=tuple(deltas),
    )


@dataclass(frozen=True)
class BisectResult:
    """Result of :func:`bisect_divergence`.

    Attributes:
        diverged: False when the traces never diverge.
        window: bucket width in cycles.
        first_window: index of the first offending window.
        cycle_start / cycle_stop: the offending half-open cycle range.
        links: links whose BT delta first moves inside that window.
        probes: predicate evaluations spent (2 trace scorings each).
        probe: "offline" or "replay".
    """

    diverged: bool
    window: int
    probe: str
    probes: int
    first_window: int = -1
    cycle_start: int = -1
    cycle_stop: int = -1
    links: Tuple[str, ...] = ()

    def lines(self) -> list[str]:
        if not self.diverged:
            return [
                f"no divergence ({self.probes} {self.probe} probe(s))"
            ]
        links = ", ".join(self.links) if self.links else "?"
        return [
            f"first diverging window: {self.first_window} "
            f"(cycles [{self.cycle_start}, {self.cycle_stop}))",
            f"diverging link(s) in window: {links}",
            f"localised in {self.probes} {self.probe} probe(s) "
            f"at window={self.window}",
        ]


def _offline_prefix(trace: TrafficTrace, stop: int) -> Dict[str, int]:
    """Per-link BT totals of the prefix slice ``[0, stop)``."""
    return {
        name: bts
        for name, bts in trace_slice(
            trace, 0, stop
        ).per_link_transitions().items()
        if bts
    }


def _replay_prefix(
    trace: TrafficTrace, stop: int, core: Optional[str], max_cycles: int
) -> Dict[str, int]:
    """Per-link BT totals of replaying injections in ``[0, stop)``.

    Edge-safe: the replay drains fully past ``stop``, so scoring the
    drained ledger directly would charge hops the offline prefix slice
    excludes (and miss in-flight traffic an earlier injection carried
    into the window — :func:`trace_slice` filters hops and injections
    independently).  Instead the replayed traffic is re-captured with
    a :class:`~repro.noc.recorder.TraceRecorder` and scored through
    the *same* hop-cycle slice as the offline probe, so both probe
    modes agree at window boundaries.
    """
    from repro.noc.recorder import TraceRecorder

    recorder = TraceRecorder()
    network = replay_window(
        trace, 0, stop, core=core, max_cycles=max_cycles,
        trace_collector=recorder,
    )
    replayed = recorder.finish(network.config)
    return {
        name: bts
        for name, bts in trace_slice(
            replayed, 0, stop
        ).per_link_transitions().items()
        if bts
    }


def bisect_divergence(
    a: TrafficTrace,
    b: TrafficTrace,
    window: int = DEFAULT_WINDOW,
    probe: str = "offline",
    core: Optional[str] = None,
    max_cycles: int = 500_000,
) -> BisectResult:
    """Binary-search the first cycle window where two traces diverge.

    The predicate "do the per-link BT totals of the prefix ``[0, k *
    window)`` differ?" is evaluated O(log2 n_windows) times instead of
    once per window.  Two probe modes:

    - ``"offline"``: slice both traces and rescore (cheap, exact; works
      on any timed capture, including non-replayable ``reordered``
      re-encodes).
    - ``"replay"``: re-inject each trace's windowed packet schedule
      through a fresh network and compare the live ledgers (the
      expensive oracle; needs full-fidelity captures on both sides).

    Prefix BT deltas can cancel (a +5 window followed by a -5 window
    leaves the prefix equal), so after the search the result is
    cross-checked against the exact per-window diff when the probes
    are offline; replay probes report the bisection answer as found.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if probe not in ("offline", "replay"):
        raise ValueError(
            f"unknown probe mode {probe!r}; use 'offline' or 'replay'"
        )
    span = max(trace_span(a), trace_span(b))
    n_windows = max(1, -(-span // window))
    probes = 0
    cache: Dict[int, Tuple[Dict[str, int], Dict[str, int]]] = {}

    def prefixes(k: int) -> Tuple[Dict[str, int], Dict[str, int]]:
        nonlocal probes
        hit = cache.get(k)
        if hit is not None:
            return hit
        probes += 1
        stop = k * window
        if probe == "offline":
            pair = (_offline_prefix(a, stop), _offline_prefix(b, stop))
        else:
            pair = (
                _replay_prefix(a, stop, core, max_cycles),
                _replay_prefix(b, stop, core, max_cycles),
            )
        cache[k] = pair
        return pair

    def pred(k: int) -> bool:
        pa, pb = prefixes(k)
        return pa != pb

    if not pred(n_windows):
        # Prefix totals agree at full span.  Window-level deltas could
        # still exist but cancel; the exact diff settles it.
        diff = trace_diff(a, b, window)
        if diff.is_empty:
            return BisectResult(
                diverged=False, window=window, probe=probe, probes=probes
            )
        first = diff.first_divergence()
        assert first is not None
        _, w = first
        return BisectResult(
            diverged=True,
            window=window,
            probe=probe,
            probes=probes,
            first_window=w,
            cycle_start=w * window,
            cycle_stop=(w + 1) * window,
            links=tuple(
                sorted(
                    d.link for d in diff.deltas if d.first_window == w
                )
            ),
        )

    lo, hi = 1, n_windows
    while lo < hi:
        mid = (lo + hi) // 2
        if pred(mid):
            hi = mid
        else:
            lo = mid + 1
    first_window = lo - 1  # windows are 0-indexed; prefix k covers k windows

    if probe == "offline":
        # Offline probing is cheap enough to verify against the exact
        # per-window diff, which is immune to prefix-sum cancellation.
        diff = trace_diff(a, b, window)
        first = diff.first_divergence()
        if first is not None and first[1] != first_window:
            w = first[1]
            return BisectResult(
                diverged=True,
                window=window,
                probe=probe,
                probes=probes,
                first_window=w,
                cycle_start=w * window,
                cycle_stop=(w + 1) * window,
                links=tuple(
                    sorted(
                        d.link
                        for d in diff.deltas
                        if d.first_window == w
                    )
                ),
            )

    pa_after, pb_after = prefixes(first_window + 1)
    pa_before, pb_before = (
        prefixes(first_window) if first_window > 0 else ({}, {})
    )
    links = tuple(
        sorted(
            name
            for name in set(pa_after) | set(pb_after)
            | set(pa_before) | set(pb_before)
            if (pa_after.get(name, 0) - pb_after.get(name, 0))
            != (pa_before.get(name, 0) - pb_before.get(name, 0))
        )
    )
    return BisectResult(
        diverged=True,
        window=window,
        probe=probe,
        probes=probes,
        first_window=first_window,
        cycle_start=first_window * window,
        cycle_stop=(first_window + 1) * window,
        links=links,
    )
