"""Lightweight metrics registry with near-zero cost when disabled.

Design contract
---------------

The hot paths (event-core stepping, router arbitration, codec batching)
never consult this module: they bump plain integer attributes on the
objects they already own.  Those counts are part of the deterministic
simulation output, so ``RunResult.metrics`` is byte-identical whether or
not a registry is active and regardless of how many sweep workers ran
the job.  The registry is the *aggregation* layer: code that has
finished a unit of work publishes its counter snapshot into the active
registry (one dict merge per run, not per cycle), and timers/histograms
are only recorded when a registry is enabled.

Metric names are flat dotted strings; the *family* is the prefix before
the first dot (``event.heap_pushes`` belongs to family ``event``).
When merging snapshots, names ending in ``.peak`` combine by ``max``;
everything else sums.

Resilience families published by the campaign runner per run:
``runner.retries`` / ``runner.timeouts`` / ``runner.worker_crashes`` /
``runner.quarantined`` / ``runner.resumed`` count the fault-tolerance
machinery's interventions, and ``cache.corrupt_entries`` counts cache
entries that failed their verify-on-read digest and were quarantined
for re-simulation.  All are plain sums (zero on a healthy run), so a
chaos sweep's metrics dump shows exactly how much turbulence the
campaign absorbed.

The sweep job server (:class:`repro.service.SweepServer`) publishes
the ``service`` family once per served campaign:
``service.leases.granted`` / ``service.leases.renewed`` /
``service.leases.expired`` count the lease lifecycle,
``service.jobs.stolen`` counts expired leases re-granted to a
different worker (the dead-worker-recovery path),
``service.heartbeats.missed`` counts expiries whose holder had gone
silent for two beat intervals, and ``service.heartbeats`` /
``service.reconnects`` / ``service.results.duplicate`` /
``service.protocol.errors`` / ``service.workers.peak`` (a ``.peak``,
merged by max) describe wire traffic.  A clean single-worker campaign
shows only grants and heartbeats; everything else is turbulence.

Serving fleets (:func:`repro.serving.run_serving`) publish the
``serving`` family per run: ``serving.tenants`` and the request
funnel ``serving.requests_arrived`` / ``serving.requests_admitted`` /
``serving.requests_rejected`` / ``serving.requests_completed``, plus
``serving.packets_injected`` and ``serving.batch_delay_cycles`` (total
cycles requests sat in batching windows).  Like the simulator counters
these ride inside the deterministic result payload, so a campaign's
``--metrics`` aggregate sums them across every fleet in the sweep.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "MetricsRegistry",
    "active_registry",
    "disable_metrics",
    "enable_metrics",
    "merge_metrics",
    "metric_family",
    "metrics_enabled",
    "metrics_session",
    "metrics_suspended",
]


def metric_family(name: str) -> str:
    """Family of a metric name: the prefix before the first dot."""
    dot = name.find(".")
    return name if dot < 0 else name[:dot]


def merge_metrics(
    into: Dict[str, Any], update: Dict[str, Any]
) -> Dict[str, Any]:
    """Merge ``update`` into ``into`` in place and return ``into``.

    Names ending in ``.peak`` merge by max; all other numeric values
    sum.  Non-numeric values (rare; e.g. tag strings) overwrite.
    """
    for name, value in update.items():
        if not isinstance(value, (int, float)):
            into[name] = value
        elif name.endswith(".peak"):
            prev = into.get(name, 0)
            into[name] = value if value > prev else prev
        else:
            into[name] = into.get(name, 0) + value
    return into


class MetricsRegistry:
    """Counters, maxima, histograms, and timers behind one namespace.

    All four primitives live in a single flat name space so a registry
    snapshot is one JSON-friendly dict.  Histograms and timers carry
    derived scalars (count / total / min / max) rather than raw samples
    to keep snapshots bounded.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._maxima: Dict[str, float] = {}
        self._hists: Dict[str, Dict[str, float]] = {}

    # -- primitives ------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def record_max(self, name: str, value: float) -> None:
        """Track the running maximum of a gauge-like quantity.

        Conventionally ``name`` ends in ``.peak`` so cross-run merges
        keep taking the max instead of summing.
        """
        prev = self._maxima.get(name)
        if prev is None or value > prev:
            self._maxima[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one histogram sample for ``name``."""
        hist = self._hists.get(name)
        if hist is None:
            self._hists[name] = {
                "count": 1,
                "total": value,
                "min": value,
                "max": value,
            }
            return
        hist["count"] += 1
        hist["total"] += value
        if value < hist["min"]:
            hist["min"] = value
        if value > hist["max"]:
            hist["max"] = value

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block; records seconds as a histogram sample."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a flat counter snapshot (e.g. ``RunResult.metrics``) in.

        ``.peak`` names go through :meth:`record_max`; the rest through
        :meth:`count`.
        """
        for name, value in snapshot.items():
            if not isinstance(value, (int, float)):
                continue
            if name.endswith(".peak"):
                self.record_max(name, value)
            else:
                self.count(name, value)

    # -- read side -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Flat dict of every metric, JSON-serialisable.

        Histogram ``name`` flattens to ``name.count`` / ``name.total``
        / ``name.min.peak`` / ``name.max.peak``.
        """
        out: Dict[str, Any] = dict(self._counters)
        out.update(self._maxima)
        for name, hist in self._hists.items():
            out[f"{name}.count"] = hist["count"]
            out[f"{name}.total"] = hist["total"]
            out[f"{name}.max.peak"] = hist["max"]
        return out

    def families(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot grouped by metric family."""
        grouped: Dict[str, Dict[str, Any]] = {}
        for name, value in self.snapshot().items():
            grouped.setdefault(metric_family(name), {})[name] = value
        return grouped

    def __len__(self) -> int:
        return len(self._counters) + len(self._maxima) + len(self._hists)


# One process-wide active registry.  ``None`` means disabled, which is
# the default: publishers check ``active_registry()`` once per completed
# unit of work, so the disabled cost is a single attribute load.
_ACTIVE: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    """The currently enabled registry, or ``None`` when disabled."""
    return _ACTIVE


def metrics_enabled() -> bool:
    return _ACTIVE is not None


def enable_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Install (and return) the active registry."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable_metrics() -> None:
    """Remove the active registry; publishers go back to no-ops."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def metrics_session(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Context manager enabling a registry for the block's duration."""
    global _ACTIVE
    previous = _ACTIVE
    reg = enable_metrics(registry)
    try:
        yield reg
    finally:
        _ACTIVE = previous


@contextmanager
def metrics_suspended() -> Iterator[None]:
    """Temporarily disable the active registry (if any).

    The campaign runner wraps in-process job execution with this so
    each publisher's direct merge is suppressed and the runner's own
    single post-run aggregation (which also covers pool workers and
    cache hits) is the only publication path — no double counting.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    try:
        yield
    finally:
        _ACTIVE = previous
