"""Data transmission ordering strategies (Sec. III-B and IV).

The paper's contribution is a '1'-bit count-based descending ordering of
the values inside a packet before flitisation.  Three configurations
are evaluated:

* ``O0`` baseline — values stay in their original order;
* ``O1`` affiliated-ordering — (input, weight) pairs are permuted
  together, sorted by the *weight* popcount (Fig. 3a); the pairing is
  preserved so the MAC result needs no recovery step;
* ``O2`` separated-ordering — inputs and weights are each sorted by
  their own popcount (Fig. 3b); a minimal-width permutation index is
  needed to re-pair them at the PE.

Placement into flits uses the **column-major deal** of the descending
sequence (Fig. 3): sorted values are dealt round-robin across the
packet's flits so consecutive flits carry adjacent-popcount values in
every lane — the generalisation of the proof's interleaved ordering
``x1 > y1 > x2 > y2 > ...`` beyond two flits.  A row-major fill is kept
as an ablation option.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.bits.popcount import popcount

__all__ = [
    "OrderingMethod",
    "FillOrder",
    "OrderedPairs",
    "sort_by_popcount",
    "order_affiliated",
    "order_separated",
    "deal_into_rows",
    "undeal_rows",
    "index_bits_required",
]


class OrderingMethod(enum.Enum):
    """The three configurations of Sec. V-B."""

    BASELINE = "O0"
    AFFILIATED = "O1"
    SEPARATED = "O2"

    @classmethod
    def from_name(cls, name: str) -> "OrderingMethod":
        """Accept 'O0'/'O1'/'O2' or 'baseline'/'affiliated'/'separated'."""
        by_value = {m.value: m for m in cls}
        by_word = {m.name.lower(): m for m in cls}
        key = name.strip()
        if key in by_value:
            return by_value[key]
        if key.lower() in by_word:
            return by_word[key.lower()]
        raise ValueError(f"unknown ordering method {name!r}")


class FillOrder(enum.Enum):
    """How a sorted value sequence is placed into a packet's flits."""

    COLUMN_MAJOR_DEAL = "deal"  # paper's Fig. 3 placement
    ROW_MAJOR = "row"  # ablation: sequential refill


@dataclass(frozen=True)
class OrderedPairs:
    """Result of ordering a task's (input, weight) pairs.

    Attributes:
        inputs: input words after ordering.
        weights: weight words after ordering.
        input_perm: ``inputs[i] == original_inputs[input_perm[i]]``.
        weight_perm: ``weights[i] == original_weights[weight_perm[i]]``.
        paired: True when position ``i`` of inputs and weights still
            refers to the same original pair (holds for O0 and O1).
    """

    inputs: tuple[int, ...]
    weights: tuple[int, ...]
    input_perm: tuple[int, ...]
    weight_perm: tuple[int, ...]
    paired: bool = field(default=True)

    def recover_pairs(self) -> list[tuple[int, int]]:
        """Return (input, weight) pairs in the *original* pairing.

        For O0/O1 this is a direct zip; for O2 the permutations are the
        minimal-width index metadata the paper says the PE needs.
        """
        n = len(self.inputs)
        if len(self.weights) != n:
            raise ValueError("inputs and weights must have equal length")
        original_inputs: list[int | None] = [None] * n
        original_weights: list[int | None] = [None] * n
        for pos, src in enumerate(self.input_perm):
            original_inputs[src] = self.inputs[pos]
        for pos, src in enumerate(self.weight_perm):
            original_weights[src] = self.weights[pos]
        if any(v is None for v in original_inputs + original_weights):
            raise ValueError("permutations are not bijective")
        return list(zip(original_inputs, original_weights))  # type: ignore[arg-type]


def sort_by_popcount(
    words: Sequence[int], descending: bool = True
) -> tuple[list[int], list[int]]:
    """Stable sort of words by '1'-bit count.

    Args:
        words: unsigned word values.
        descending: paper default; ``False`` gives the ascending
            ablation variant.

    Returns:
        ``(sorted_words, perm)`` with ``sorted_words[i] == words[perm[i]]``.

    This is the scalar reference; the batch data plane reproduces its
    order — including the stable ``(sign * count, i)`` tie-break that
    sinks padding zeros in arrival order — with one
    ``np.argsort(kind="stable")`` call over a whole layer of tasks
    (:func:`repro.ordering.batch.argsort_popcount`; equivalence is
    pinned by ``tests/test_ordering_batch.py``).
    """
    counts = [popcount(int(w)) for w in words]
    sign = -1 if descending else 1
    perm = sorted(range(len(words)), key=lambda i: (sign * counts[i], i))
    return [int(words[i]) for i in perm], perm


def order_affiliated(
    inputs: Sequence[int], weights: Sequence[int]
) -> OrderedPairs:
    """Affiliated-ordering (O1): sort pairs by weight popcount.

    The same permutation is applied to inputs and weights, so pairing is
    preserved and no recovery metadata is needed (Fig. 5's order
    invariance of convolution).
    """
    _check_equal_length(inputs, weights)
    ordered_weights, perm = sort_by_popcount(weights)
    ordered_inputs = [int(inputs[i]) for i in perm]
    return OrderedPairs(
        inputs=tuple(ordered_inputs),
        weights=tuple(ordered_weights),
        input_perm=tuple(perm),
        weight_perm=tuple(perm),
        paired=True,
    )


def order_separated(
    inputs: Sequence[int], weights: Sequence[int]
) -> OrderedPairs:
    """Separated-ordering (O2): sort inputs and weights independently."""
    _check_equal_length(inputs, weights)
    ordered_weights, weight_perm = sort_by_popcount(weights)
    ordered_inputs, input_perm = sort_by_popcount(inputs)
    return OrderedPairs(
        inputs=tuple(ordered_inputs),
        weights=tuple(ordered_weights),
        input_perm=tuple(input_perm),
        weight_perm=tuple(weight_perm),
        paired=False,
    )


def order_baseline(
    inputs: Sequence[int], weights: Sequence[int]
) -> OrderedPairs:
    """O0: identity ordering (original arrival order)."""
    _check_equal_length(inputs, weights)
    n = len(inputs)
    return OrderedPairs(
        inputs=tuple(int(v) for v in inputs),
        weights=tuple(int(v) for v in weights),
        input_perm=tuple(range(n)),
        weight_perm=tuple(range(n)),
        paired=True,
    )


def apply_method(
    method: OrderingMethod, inputs: Sequence[int], weights: Sequence[int]
) -> OrderedPairs:
    """Dispatch to the ordering implementation for ``method``."""
    if method is OrderingMethod.BASELINE:
        return order_baseline(inputs, weights)
    if method is OrderingMethod.AFFILIATED:
        return order_affiliated(inputs, weights)
    if method is OrderingMethod.SEPARATED:
        return order_separated(inputs, weights)
    raise ValueError(f"unhandled ordering method {method}")


def deal_into_rows(
    values: Sequence[int],
    n_rows: int,
    fill: FillOrder = FillOrder.COLUMN_MAJOR_DEAL,
) -> list[list[int]]:
    """Place a value sequence into ``n_rows`` flit rows.

    With the column-major deal (paper), element ``k`` of the sequence
    lands in row ``k % n_rows``, lane ``k // n_rows``; consecutive rows
    therefore hold adjacent elements of the sequence in each lane.  Row
    lengths differ by at most one when the sequence does not divide
    evenly.

    Args:
        values: the (typically popcount-sorted) value sequence.
        n_rows: number of flits in the packet.
        fill: deal (default) or row-major ablation.

    Returns:
        ``n_rows`` lists of values.
    """
    if n_rows <= 0:
        raise ValueError(f"n_rows must be positive, got {n_rows}")
    if fill is FillOrder.COLUMN_MAJOR_DEAL:
        # Row r receives elements r, r + n_rows, r + 2*n_rows, ... —
        # exactly the stride-n_rows slices of the sequence.
        return [
            [int(v) for v in values[r::n_rows]] for r in range(n_rows)
        ]
    if fill is FillOrder.ROW_MAJOR:
        per_row = -(-len(values) // n_rows)  # ceil division
        rows = [
            [int(v) for v in values[r * per_row:(r + 1) * per_row]]
            for r in range(n_rows)
        ]
        return rows
    raise ValueError(f"unhandled fill order {fill}")


def undeal_rows(
    rows: Sequence[Sequence[int]],
    fill: FillOrder = FillOrder.COLUMN_MAJOR_DEAL,
) -> list[int]:
    """Inverse of :func:`deal_into_rows`: recover the flat sequence."""
    if fill is FillOrder.ROW_MAJOR:
        return [int(v) for row in rows for v in row]
    if fill is not FillOrder.COLUMN_MAJOR_DEAL:
        raise ValueError(f"unhandled fill order {fill}")
    total = sum(len(row) for row in rows)
    out: list[int] = [0] * total
    n_rows = len(rows)
    for r, row in enumerate(rows):
        # Row r is exactly the stride-n_rows slice starting at r; a
        # length mismatch means the rows are not a valid deal layout.
        try:
            out[r::n_rows] = [int(v) for v in row]
        except ValueError:
            raise ValueError("rows are not a valid deal layout") from None
    return out


def index_bits_required(n_values: int) -> int:
    """Minimal index width for separated-ordering recovery metadata.

    The paper notes O2 needs "just a minimal-bit-width index"; for a
    task of N pairs each index needs ``ceil(log2 N)`` bits.
    """
    if n_values <= 0:
        raise ValueError(f"n_values must be positive, got {n_values}")
    if n_values == 1:
        return 0
    return (n_values - 1).bit_length()


def _check_equal_length(inputs: Sequence[int], weights: Sequence[int]) -> None:
    if len(inputs) != len(weights):
        raise ValueError(
            f"inputs ({len(inputs)}) and weights ({len(weights)}) "
            "must have equal length"
        )
