"""Vectorised batch ordering: whole layers of tasks at once.

The scalar strategies in :mod:`repro.ordering.strategies` order one
task's words with a Python sort; campaign sweeps order thousands of
same-shaped tasks per layer, which is an embarrassingly array-parallel
problem.  This module applies the paper's orderings to 2-D
``(n_tasks, n_pairs)`` word matrices in a handful of numpy calls.

Bit-identity with the scalar reference is a hard contract (the batch
codec must reproduce the scalar codec's flits exactly):

* :func:`argsort_popcount` uses ``np.argsort(kind="stable")`` over the
  negated counts, which reproduces ``sorted(range(n), key=lambda i:
  (-counts[i], i))`` exactly — a stable mergesort breaks popcount ties
  by original position, the scalar sort's explicit tie-break.  Padding
  zeros therefore sink below every real value in arrival order, and
  the pinned-bias final slot (appended *after* ordering) is untouched,
  matching :meth:`repro.accelerator.flitize.TaskCodec.encode`.
* :func:`deal_matrix` expresses the column-major deal as a
  reshape/transpose, exactly the stride-``n_rows`` slicing of
  :func:`repro.ordering.strategies.deal_into_rows` for the uniform row
  lengths the codec always produces.

Equivalence across methods, fills, widths and ragged tails is pinned
by ``tests/test_ordering_batch.py`` and the batch-codec property suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bits.popcount import popcount_array
from repro.ordering.strategies import FillOrder, OrderingMethod

__all__ = [
    "BatchOrdered",
    "argsort_popcount",
    "order_batch",
    "deal_matrix",
    "undeal_matrix",
]


@dataclass(frozen=True)
class BatchOrdered:
    """Result of ordering a batch of (input, weight) pair rows.

    The batch counterpart of
    :class:`repro.ordering.strategies.OrderedPairs`: row ``t`` of every
    array describes task ``t``, with
    ``inputs[t, i] == original_inputs[t, input_perm[t, i]]``.
    """

    inputs: np.ndarray
    weights: np.ndarray
    input_perm: np.ndarray
    weight_perm: np.ndarray
    paired: bool


def argsort_popcount(
    matrix: np.ndarray, descending: bool = True
) -> np.ndarray:
    """Per-row stable popcount argsort of an unsigned word matrix.

    Row ``t`` of the result equals the ``perm`` returned by the scalar
    :func:`repro.ordering.strategies.sort_by_popcount` on that row:
    ``np.argsort(kind="stable")`` breaks equal-count ties by original
    position, which is the scalar sort's ``(sign * count, i)`` key.

    Args:
        matrix: ``(n_rows, n_words)`` unsigned array.
        descending: paper default; ``False`` gives the ascending
            ablation variant.

    Returns:
        ``(n_rows, n_words)`` int64 permutation matrix.
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D word matrix, got shape {arr.shape}")
    counts = popcount_array(arr).astype(np.int64)
    if descending:
        counts = -counts
    return np.argsort(counts, axis=1, kind="stable")


def order_batch(
    method: OrderingMethod, inputs: np.ndarray, weights: np.ndarray
) -> BatchOrdered:
    """Apply an ordering method to a batch of padded pair rows.

    The batch counterpart of
    :func:`repro.ordering.strategies.apply_method`; rows are ordered
    independently but in one numpy pass.
    """
    inputs = np.asarray(inputs)
    weights = np.asarray(weights)
    if inputs.shape != weights.shape or inputs.ndim != 2:
        raise ValueError(
            f"inputs {inputs.shape} and weights {weights.shape} must be "
            "equal-shape 2-D matrices"
        )
    n_tasks, n_pairs = inputs.shape
    if method is OrderingMethod.BASELINE:
        identity = np.broadcast_to(
            np.arange(n_pairs, dtype=np.int64), (n_tasks, n_pairs)
        )
        return BatchOrdered(
            inputs=inputs,
            weights=weights,
            input_perm=identity,
            weight_perm=identity,
            paired=True,
        )
    if method is OrderingMethod.AFFILIATED:
        perm = argsort_popcount(weights)
        return BatchOrdered(
            inputs=np.take_along_axis(inputs, perm, axis=1),
            weights=np.take_along_axis(weights, perm, axis=1),
            input_perm=perm,
            weight_perm=perm,
            paired=True,
        )
    if method is OrderingMethod.SEPARATED:
        input_perm = argsort_popcount(inputs)
        weight_perm = argsort_popcount(weights)
        return BatchOrdered(
            inputs=np.take_along_axis(inputs, input_perm, axis=1),
            weights=np.take_along_axis(weights, weight_perm, axis=1),
            input_perm=input_perm,
            weight_perm=weight_perm,
            paired=False,
        )
    raise ValueError(f"unhandled ordering method {method}")


def deal_matrix(
    matrix: np.ndarray,
    n_rows: int,
    fill: FillOrder = FillOrder.COLUMN_MAJOR_DEAL,
) -> np.ndarray:
    """Place each task's value sequence into ``n_rows`` flit rows.

    The batch counterpart of
    :func:`repro.ordering.strategies.deal_into_rows` for the uniform
    geometry the codec produces (sequence length divisible by
    ``n_rows``): the column-major deal — element ``k`` to row
    ``k % n_rows``, lane ``k // n_rows`` — is exactly a
    ``(lanes, n_rows)`` reshape followed by a transpose.

    Args:
        matrix: ``(n_tasks, seq_len)`` with ``seq_len % n_rows == 0``.
        n_rows: flits per packet.
        fill: deal (paper) or row-major ablation.

    Returns:
        ``(n_tasks, n_rows, seq_len // n_rows)`` array.
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    n_tasks, seq_len = arr.shape
    if n_rows <= 0:
        raise ValueError(f"n_rows must be positive, got {n_rows}")
    if seq_len % n_rows:
        raise ValueError(
            f"sequence length {seq_len} is not divisible by {n_rows} "
            "rows; ragged layouts use the scalar deal_into_rows"
        )
    lanes = seq_len // n_rows
    if fill is FillOrder.COLUMN_MAJOR_DEAL:
        return arr.reshape(n_tasks, lanes, n_rows).transpose(0, 2, 1)
    if fill is FillOrder.ROW_MAJOR:
        return arr.reshape(n_tasks, n_rows, lanes)
    raise ValueError(f"unhandled fill order {fill}")


def undeal_matrix(
    rows: np.ndarray, fill: FillOrder = FillOrder.COLUMN_MAJOR_DEAL
) -> np.ndarray:
    """Inverse of :func:`deal_matrix`: recover the flat sequences."""
    arr = np.asarray(rows)
    if arr.ndim != 3:
        raise ValueError(
            f"expected (n_tasks, n_rows, lanes), got shape {arr.shape}"
        )
    n_tasks, n_rows, lanes = arr.shape
    if fill is FillOrder.COLUMN_MAJOR_DEAL:
        return arr.transpose(0, 2, 1).reshape(n_tasks, n_rows * lanes)
    if fill is FillOrder.ROW_MAJOR:
        return arr.reshape(n_tasks, n_rows * lanes)
    raise ValueError(f"unhandled fill order {fill}")
