"""Optimality machinery for the count-based ordering (Sec. III-B).

The minimisation of Eq. (3) reduces to maximising ``F = sum x_i * y_i``
(Eq. 4) over ways of placing 2N values into two N-lane flits.  Because
swapping the two members of a lane does not change the product, the
search space is exactly the set of perfect matchings of the 2N values
into N lanes.

* :func:`interleaved_assignment` — the paper's count-based solution:
  sort descending and pair adjacent elements
  ``(v1, v2), (v3, v4), ...`` which realises
  ``x1 >= y1 >= x2 >= y2 >= ...``.
* :func:`exhaustive_best_assignment` — brute force over all matchings,
  used by tests/benches to certify global optimality for small N
  (the paper notes 2N = 32 already has > 2.6e35 orderings, hence the
  need for the closed-form strategy).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.bits.popcount import popcount

__all__ = [
    "FlitAssignment",
    "interleaved_assignment",
    "exhaustive_best_assignment",
    "pair_product",
    "all_matchings",
]


@dataclass(frozen=True)
class FlitAssignment:
    """A placement of 2N counts into two N-lane flits.

    Attributes:
        flit1: per-lane '1' counts of the first flit.
        flit2: per-lane '1' counts of the second flit.
        objective: ``F = sum_i flit1[i] * flit2[i]`` (Eq. 4).
    """

    flit1: tuple[int, ...]
    flit2: tuple[int, ...]
    objective: int


def pair_product(flit1: Sequence[int], flit2: Sequence[int]) -> int:
    """Eq. (4) objective for one lane-aligned pair of flits."""
    if len(flit1) != len(flit2):
        raise ValueError("flits must have the same number of lanes")
    return sum(int(a) * int(b) for a, b in zip(flit1, flit2))


def interleaved_assignment(counts: Sequence[int]) -> FlitAssignment:
    """Count-based optimal assignment: sort descending, pair adjacent.

    Args:
        counts: an even-length sequence of '1'-bit counts (the 2N
            values to distribute over two flits).

    Returns:
        The assignment realising ``x1 >= y1 >= x2 >= y2 >= ...``.
    """
    if len(counts) % 2 != 0:
        raise ValueError("need an even number of counts (two equal flits)")
    ordered = sorted((int(c) for c in counts), reverse=True)
    flit1 = tuple(ordered[0::2])
    flit2 = tuple(ordered[1::2])
    return FlitAssignment(
        flit1=flit1, flit2=flit2, objective=pair_product(flit1, flit2)
    )


def all_matchings(items: Sequence[int]) -> Iterator[list[tuple[int, int]]]:
    """Enumerate all perfect matchings of an even-length sequence.

    There are ``(2N)! / (N! * 2^N)`` of them; callers keep N small.
    """
    if len(items) % 2 != 0:
        raise ValueError("need an even number of items")
    values = list(items)
    if not values:
        yield []
        return
    first = values[0]
    rest = values[1:]
    for i, partner in enumerate(rest):
        remaining = rest[:i] + rest[i + 1 :]
        for sub in all_matchings(remaining):
            yield [(first, partner)] + sub


def exhaustive_best_assignment(counts: Sequence[int]) -> FlitAssignment:
    """Brute-force the matching maximising Eq. (4).

    Only feasible for small 2N (the growth is the paper's motivation
    for the closed-form ordering); raises for 2N > 12.
    """
    if not counts:
        raise ValueError("no counts supplied")
    if len(counts) > 12:
        raise ValueError(
            f"exhaustive search limited to 12 counts, got {len(counts)}"
        )
    best: FlitAssignment | None = None
    for matching in all_matchings([int(c) for c in counts]):
        flit1 = tuple(max(a, b) for a, b in matching)
        flit2 = tuple(min(a, b) for a, b in matching)
        objective = pair_product(flit1, flit2)
        if best is None or objective > best.objective:
            best = FlitAssignment(flit1=flit1, flit2=flit2, objective=objective)
    if best is None:
        raise ValueError("no counts supplied")
    return best


def counts_of(words: Sequence[int]) -> list[int]:
    """Popcounts of a word sequence (convenience for callers)."""
    return [popcount(int(w)) for w in words]
