"""Machine checks of the paper's inductive proof (Sec. III-B-2).

The proof has two steps:

1. **Local pairwise optimisation** — for any four counts placed as two
   lanes across two flits, enforcing ``x_i >= y_i >= x_j >= y_j``
   maximises ``x_i*y_i + x_j*y_j``.  The paper says this "can be easily
   verified through exhaustive enumeration"; :func:`verify_pairwise_lemma`
   performs exactly that enumeration.
2. **Global optimisation** — iterating the pairwise rule converges to
   the fully interleaved descending ordering.
   :func:`verify_global_optimality` certifies the claim against the
   exhaustive matching search for random instances, and
   :func:`bubble_to_optimal` demonstrates the convergence of repeated
   local swaps.
"""

from __future__ import annotations

from itertools import combinations_with_replacement, permutations

import numpy as np

from repro.ordering.optimal import (
    exhaustive_best_assignment,
    interleaved_assignment,
    pair_product,
)

__all__ = [
    "verify_pairwise_lemma",
    "verify_global_optimality",
    "bubble_to_optimal",
]


def verify_pairwise_lemma(max_count: int = 8) -> bool:
    """Enumerate all 4-count multisets up to ``max_count``.

    For each multiset {a, b, c, d} and every way to place it as
    ``(x_i, x_j)`` / ``(y_i, y_j)``, checks that the sorted-interleaved
    placement achieves the maximal ``x_i*y_i + x_j*y_j``.

    Returns:
        True when the lemma holds over the whole enumeration (raises
        AssertionError with a counterexample otherwise).
    """
    for multiset in combinations_with_replacement(range(max_count + 1), 4):
        best_seen = max(
            p[0] * p[1] + p[2] * p[3] for p in permutations(multiset)
        )
        ordered = sorted(multiset, reverse=True)
        lemma_value = ordered[0] * ordered[1] + ordered[2] * ordered[3]
        if lemma_value != best_seen:
            raise AssertionError(
                f"pairwise lemma fails for counts {multiset}: "
                f"interleaved gives {lemma_value}, best is {best_seen}"
            )
    return True


def verify_global_optimality(
    n_lanes: int,
    trials: int = 50,
    max_count: int = 32,
    rng: np.random.Generator | None = None,
) -> bool:
    """Compare the count-based ordering to exhaustive search.

    Draws random '1'-count instances of ``2 * n_lanes`` values and
    checks :func:`interleaved_assignment` attains the same Eq. (4)
    objective as brute force over all perfect matchings.

    Args:
        n_lanes: lanes per flit (2N total values); keep <= 6.
        trials: number of random instances.
        max_count: counts drawn uniformly from [0, max_count].
        rng: source of randomness (seeded default for reproducibility).
    """
    if rng is None:
        rng = np.random.default_rng(2025)
    for _ in range(trials):
        counts = rng.integers(0, max_count + 1, size=2 * n_lanes).tolist()
        greedy = interleaved_assignment(counts)
        brute = exhaustive_best_assignment(counts)
        if greedy.objective != brute.objective:
            raise AssertionError(
                f"global optimality fails for counts {counts}: "
                f"interleaved {greedy.objective} != brute {brute.objective}"
            )
    return True


def bubble_to_optimal(counts: list[int], max_rounds: int = 10_000) -> int:
    """Apply the proof's local rule until convergence; return F.

    Models the inductive step: repeatedly pick lane pairs (i, j) and
    re-place their four counts in sorted-interleaved order; stop when a
    full pass makes no improvement.  The fixed point must equal the
    interleaved assignment's objective.

    Args:
        counts: even-length list of '1' counts (mutated copy is used).
        max_rounds: safety bound on full passes.

    Returns:
        The converged Eq. (4) objective value.
    """
    if len(counts) % 2 != 0:
        raise ValueError("need an even number of counts")
    n = len(counts) // 2
    flit1 = list(counts[:n])
    flit2 = list(counts[n:])
    for _ in range(max_rounds):
        improved = False
        for i in range(n):
            for j in range(i + 1, n):
                current = flit1[i] * flit2[i] + flit1[j] * flit2[j]
                four = sorted(
                    (flit1[i], flit2[i], flit1[j], flit2[j]), reverse=True
                )
                best = four[0] * four[1] + four[2] * four[3]
                if best > current:
                    flit1[i], flit2[i] = four[0], four[1]
                    flit1[j], flit2[j] = four[2], four[3]
                    improved = True
        if not improved:
            return pair_product(flit1, flit2)
    raise RuntimeError("local optimisation did not converge")
