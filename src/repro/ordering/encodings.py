"""Classic BT-reduction encodings from the paper's related work.

The paper positions ordering against bus-encoding techniques
(Sec. II) and names comparing with them as future work.  This module
implements the two canonical ones so the benchmark suite can stage that
comparison:

* **Bus-invert coding** (Stan & Burleson [14]): per flit, if
  transmitting the payload would flip more than half of the link wires,
  transmit its complement instead and assert one extra *invert* line.
  Guarantees ≤ W/2 transitions per W-bit link at the cost of one wire.
* **Delta (XOR-difference) encoding** (Ghosh et al. [15] / Sarman et
  al. [11] family): transmit ``current XOR previous`` so that
  low-entropy differences produce few '1' wires; the receiver XORs to
  recover.  Requires decoder state per link.

Both are *link codings* — they transform the bits on the wire and need
a decoder — whereas the paper's ordering keeps values intact.  The
bench `benchmarks/test_future_encodings.py` compares all of them and
their composition with ordering.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.bits.popcount import popcount

__all__ = [
    "EncodedLinkStream",
    "bus_invert_encode",
    "bus_invert_decode",
    "delta_encode",
    "delta_decode",
    "stream_transitions_with_invert_line",
]


@dataclass(frozen=True)
class EncodedLinkStream:
    """A payload stream after link encoding.

    Attributes:
        payloads: per-flit wire images after encoding.
        invert_flags: bus-invert line per flit (None for codings
            without an extra line).
        width: payload width in bits (excluding any invert line).
    """

    payloads: tuple[int, ...]
    invert_flags: tuple[bool, ...] | None
    width: int


def bus_invert_encode(
    payloads: Sequence[int], width: int
) -> EncodedLinkStream:
    """Stan-Burleson bus-invert coding over a flit stream.

    The decision compares the would-be transition count of the plain
    payload against its complement, both measured against the wire
    state actually transmitted for the previous flit.
    """
    mask = (1 << width) - 1
    wire_prev = 0
    out: list[int] = []
    flags: list[bool] = []
    for payload in payloads:
        if payload >> width:
            raise ValueError(f"payload wider than {width} bits")
        plain_cost = popcount(wire_prev ^ payload)
        inverted = payload ^ mask
        invert_cost = popcount(wire_prev ^ inverted)
        if invert_cost < plain_cost:
            out.append(inverted)
            flags.append(True)
            wire_prev = inverted
        else:
            out.append(payload)
            flags.append(False)
            wire_prev = payload
    return EncodedLinkStream(
        payloads=tuple(out), invert_flags=tuple(flags), width=width
    )


def bus_invert_decode(stream: EncodedLinkStream) -> list[int]:
    """Recover the original payloads from a bus-invert stream."""
    if stream.invert_flags is None:
        raise ValueError("stream carries no invert line")
    mask = (1 << stream.width) - 1
    return [
        payload ^ mask if flag else payload
        for payload, flag in zip(stream.payloads, stream.invert_flags)
    ]


def delta_encode(payloads: Sequence[int], width: int) -> EncodedLinkStream:
    """XOR-difference encoding: wire image = current XOR previous."""
    prev = 0
    out: list[int] = []
    for payload in payloads:
        if payload >> width:
            raise ValueError(f"payload wider than {width} bits")
        out.append(payload ^ prev)
        prev = payload
    return EncodedLinkStream(
        payloads=tuple(out), invert_flags=None, width=width
    )


def delta_decode(stream: EncodedLinkStream) -> list[int]:
    """Recover the original payloads from a delta stream."""
    prev = 0
    out: list[int] = []
    for wire in stream.payloads:
        prev = prev ^ wire
        out.append(prev)
    return out


def stream_transitions_with_invert_line(stream: EncodedLinkStream) -> int:
    """BT count of an encoded stream, charging the invert line too.

    For bus-invert, the extra wire's own transitions count toward the
    total (the classic accounting of [14]); codings without an invert
    line are charged on their payload wires only.
    """
    total = 0
    prev_payload: int | None = None
    prev_flag = False
    for i, payload in enumerate(stream.payloads):
        if prev_payload is not None:
            total += popcount(prev_payload ^ payload)
        if stream.invert_flags is not None:
            flag = stream.invert_flags[i]
            if i > 0 and flag != prev_flag:
                total += 1
            prev_flag = flag
        prev_payload = payload
    return total
