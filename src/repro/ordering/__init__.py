"""The paper's contribution: '1'-bit count-based transmission ordering."""

from repro.ordering.batch import (
    BatchOrdered,
    argsort_popcount,
    deal_matrix,
    order_batch,
    undeal_matrix,
)
from repro.ordering.encodings import (
    EncodedLinkStream,
    bus_invert_decode,
    bus_invert_encode,
    delta_decode,
    delta_encode,
    stream_transitions_with_invert_line,
)
from repro.ordering.optimal import (
    FlitAssignment,
    all_matchings,
    exhaustive_best_assignment,
    interleaved_assignment,
    pair_product,
)
from repro.ordering.proofs import (
    bubble_to_optimal,
    verify_global_optimality,
    verify_pairwise_lemma,
)
from repro.ordering.strategies import (
    FillOrder,
    OrderedPairs,
    OrderingMethod,
    apply_method,
    deal_into_rows,
    index_bits_required,
    order_affiliated,
    order_baseline,
    order_separated,
    sort_by_popcount,
    undeal_rows,
)

__all__ = [
    "BatchOrdered",
    "argsort_popcount",
    "deal_matrix",
    "order_batch",
    "undeal_matrix",
    "EncodedLinkStream",
    "bus_invert_decode",
    "bus_invert_encode",
    "delta_decode",
    "delta_encode",
    "stream_transitions_with_invert_line",
    "FlitAssignment",
    "all_matchings",
    "exhaustive_best_assignment",
    "interleaved_assignment",
    "pair_product",
    "bubble_to_optimal",
    "verify_global_optimality",
    "verify_pairwise_lemma",
    "FillOrder",
    "OrderedPairs",
    "OrderingMethod",
    "apply_method",
    "deal_into_rows",
    "index_bits_required",
    "order_affiliated",
    "order_baseline",
    "order_separated",
    "sort_by_popcount",
    "undeal_rows",
]
