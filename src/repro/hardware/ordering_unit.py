"""Gate-level cost model of the ordering unit and the router (Table II).

The paper synthesises the Fig. 14 ordering unit (SWAR pop-count +
bubble sort) and a Constellation-generated router with Synopsys DC at
TSMC 90 nm / 125 MHz / 1.0 V.  Offline we cannot synthesise, so this
module provides a component-level estimator — registers, adders,
comparators, muxes, buffers — whose technology constants are calibrated
to reproduce the paper's published numbers (see DESIGN.md §5).  The
*structure* (what scales with word width, lane count, VC count) is
real; the absolute constants are anchored to the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechnologyParams", "OrderingUnitDesign", "RouterDesign"]


@dataclass(frozen=True)
class TechnologyParams:
    """Calibrated TSMC-90-like technology constants.

    Attributes:
        name: technology label.
        ge_per_ff: gate equivalents per flip-flop bit.
        ge_per_full_adder: GE per full-adder cell.
        ge_per_mux_bit: GE per 2:1 mux bit.
        ge_per_comparator_bit: GE per magnitude-comparator bit.
        ge_per_control: fixed GE overhead per FSM/control block.
        uw_per_kge: dynamic power (µW) per kGE at 125 MHz, 1.0 V,
            for the ordering unit's activity profile.
        router_uw_per_kge: same for a router's activity profile
            (higher toggle rates in buffers/crossbar).
    """

    name: str = "tsmc90-calibrated"
    ge_per_ff: float = 6.0
    ge_per_full_adder: float = 5.0
    ge_per_mux_bit: float = 2.5
    ge_per_comparator_bit: float = 3.0
    ge_per_control: float = 300.0
    uw_per_kge: float = 171.4
    router_uw_per_kge: float = 134.8

    frequency_mhz: float = 125.0
    voltage_v: float = 1.0


@dataclass(frozen=True)
class OrderingUnitDesign:
    """The Fig. 14 affiliated-ordering unit.

    Counts '1' bits of ``n_values`` words with SWAR pop-count trees and
    bubble-sorts them with one compare-swap stage iterated in place.

    Attributes:
        n_values: values ordered per task batch (paper flit: 16).
        word_width: value width in bits (8 for fixed-8 payloads).
        tech: technology constants.
        calibration: multiplicative anchor mapping the structural GE
            estimate onto the paper's Synopsys DC result (the default
            makes the default design hit Table II's 12.91 kGE).
    """

    n_values: int = 16
    word_width: int = 8
    tech: TechnologyParams = TechnologyParams()
    calibration: float = 3.0419

    def popcount_gates(self) -> float:
        """SWAR pop-count trees: ~(W-1) full adders per value."""
        return (
            self.n_values
            * (self.word_width - 1)
            * self.tech.ge_per_full_adder
        )

    def register_gates(self) -> float:
        """Value + count registers (double-buffered in/out)."""
        count_width = max(1, self.word_width.bit_length())
        bits_per_value = self.word_width + count_width
        return 2 * self.n_values * bits_per_value * self.tech.ge_per_ff

    def sorter_gates(self) -> float:
        """Bubble-sort stage: comparators on counts, swap muxes on values."""
        count_width = max(1, self.word_width.bit_length())
        comparators = (self.n_values - 1) * count_width * (
            self.tech.ge_per_comparator_bit
        )
        # A swap moves value+count pairs for both inputs and weights
        # (affiliated ordering carries the paired input along).
        swap_bits = 2 * (self.word_width + count_width)
        muxes = (self.n_values - 1) * swap_bits * self.tech.ge_per_mux_bit
        return comparators + muxes

    def control_gates(self) -> float:
        return self.tech.ge_per_control

    def area_kge(self) -> float:
        """Total area in thousand gate equivalents."""
        total = (
            self.popcount_gates()
            + self.register_gates()
            + self.sorter_gates()
            + self.control_gates()
        )
        return total * self.calibration / 1000.0

    def power_mw(self) -> float:
        """Dynamic power at the technology's nominal operating point."""
        return self.area_kge() * self.tech.uw_per_kge / 1000.0

    def ordering_cycles(self, n_values: int | None = None) -> int:
        """Cycles to order one batch (pop-count stages + sort passes)."""
        n = self.n_values if n_values is None else n_values
        popcount_stages = max(1, (self.word_width - 1).bit_length())
        return popcount_stages + n


@dataclass(frozen=True)
class RouterDesign:
    """A wormhole VC router of the paper's configuration.

    Buffer storage dominates: ``ports * vcs * depth * link_width`` FF
    bits, plus crossbar muxes and allocator logic.
    """

    n_ports: int = 5
    n_vcs: int = 4
    vc_depth: int = 4
    link_width: int = 128
    tech: TechnologyParams = TechnologyParams()
    calibration: float = 1.9573

    def buffer_gates(self) -> float:
        bits = self.n_ports * self.n_vcs * self.vc_depth * self.link_width
        return bits * self.tech.ge_per_ff

    def crossbar_gates(self) -> float:
        # Each output multiplexes n_ports-1 candidates of link_width bits.
        return (
            self.n_ports
            * (self.n_ports - 1)
            * self.link_width
            * self.tech.ge_per_mux_bit
        ) / 4.0  # 4:1 mux tree sharing

    def allocator_gates(self) -> float:
        requesters = self.n_ports * self.n_vcs
        per_arbiter = requesters * 8.0  # matrix arbiter rows
        return self.n_ports * per_arbiter + self.tech.ge_per_control

    def area_kge(self) -> float:
        total = (
            self.buffer_gates()
            + self.crossbar_gates()
            + self.allocator_gates()
        )
        return total * self.calibration / 1000.0

    def power_mw(self) -> float:
        return self.area_kge() * self.tech.router_uw_per_kge / 1000.0
