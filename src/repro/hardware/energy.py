"""Whole-run energy accounting: links + routers + ordering units.

Combines a simulation's :class:`~repro.accelerator.simulator.RunResult`
with the calibrated hardware models to answer the system question the
paper's Sec. V-C gestures at: after paying for the ordering units, how
much net energy does ordering save per inference?

* Link energy is *activity based*: measured BT count x pJ/transition.
* Router and ordering-unit energy are *power x time*: the component
  models' mW over the run's cycle count at the nominal frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.simulator import RunResult
from repro.hardware.linkpower import PAPER_ENERGY_PJ, LinkPowerModel
from repro.hardware.ordering_unit import OrderingUnitDesign, RouterDesign
from repro.ordering.strategies import OrderingMethod

__all__ = ["EnergyReport", "energy_report", "compare_energy"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one accelerator run.

    Attributes:
        label: configuration label.
        duration_s: wall-clock duration at the nominal frequency.
        link_energy_j: transition energy on the recorded links.
        router_energy_j: all routers' dynamic energy over the run.
        ordering_energy_j: ordering units' energy (0 for O0).
        bit_transitions: the measured BT count behind link_energy_j.
    """

    label: str
    duration_s: float
    link_energy_j: float
    router_energy_j: float
    ordering_energy_j: float
    bit_transitions: int

    @property
    def total_j(self) -> float:
        return self.link_energy_j + self.router_energy_j + self.ordering_energy_j

    def format(self) -> str:
        """One-block text rendering (nJ granularity)."""
        return (
            f"{self.label}\n"
            f"  duration:        {self.duration_s * 1e6:10.3f} us\n"
            f"  link energy:     {self.link_energy_j * 1e9:10.3f} nJ "
            f"({self.bit_transitions} transitions)\n"
            f"  router energy:   {self.router_energy_j * 1e9:10.3f} nJ\n"
            f"  ordering energy: {self.ordering_energy_j * 1e9:10.3f} nJ\n"
            f"  total:           {self.total_j * 1e9:10.3f} nJ"
        )


def energy_report(
    result: RunResult,
    energy_per_transition_pj: float = PAPER_ENERGY_PJ,
    frequency_hz: float = 125e6,
    unit: OrderingUnitDesign | None = None,
    router: RouterDesign | None = None,
) -> EnergyReport:
    """Build the energy breakdown for one run."""
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    unit = unit or OrderingUnitDesign()
    router = router or RouterDesign()
    config = result.config
    duration_s = result.total_cycles / frequency_hz
    link_model = LinkPowerModel.for_mesh(
        config.width,
        config.height,
        link_width=config.link_width,
        energy_per_transition_pj=energy_per_transition_pj,
        frequency_hz=frequency_hz,
    )
    link_j = link_model.energy_for_transitions(result.total_bit_transitions)
    n_routers = config.width * config.height
    router_j = n_routers * router.power_mw() * 1e-3 * duration_s
    if config.ordering is OrderingMethod.BASELINE:
        ordering_j = 0.0
    else:
        ordering_j = config.n_mcs * unit.power_mw() * 1e-3 * duration_s
    return EnergyReport(
        label=config.label(),
        duration_s=duration_s,
        link_energy_j=link_j,
        router_energy_j=router_j,
        ordering_energy_j=ordering_j,
        bit_transitions=result.total_bit_transitions,
    )


def compare_energy(
    baseline: EnergyReport, treated: EnergyReport
) -> dict[str, float]:
    """Net savings of ``treated`` vs ``baseline``.

    Returns:
        dict with ``link_saved_j``, ``ordering_cost_j``, ``net_saved_j``
        and ``net_saved_percent`` (relative to the baseline's link
        energy — the quantity the ordering method targets).
    """
    link_saved = baseline.link_energy_j - treated.link_energy_j
    ordering_cost = treated.ordering_energy_j - baseline.ordering_energy_j
    net = link_saved - ordering_cost
    percent = (
        100.0 * net / baseline.link_energy_j
        if baseline.link_energy_j > 0
        else 0.0
    )
    return {
        "link_saved_j": link_saved,
        "ordering_cost_j": ordering_cost,
        "net_saved_j": net,
        "net_saved_percent": percent,
    }
