"""Table II: synthesis results of the ordering unit vs the router.

Combines the calibrated gate models into the exact rows the paper
reports — area in kGE and power in mW for one/four ordering units and
one/64 routers at TSMC 90 nm, 125 MHz, 1.0 V — alongside the paper's
published values for side-by-side comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.ordering_unit import OrderingUnitDesign, RouterDesign

__all__ = ["SynthesisRow", "paper_table2", "model_table2", "format_table2"]

# Table II constants as printed in the paper.
PAPER_UNIT_POWER_MW = 2.213
PAPER_UNIT_AREA_KGE = 12.91
PAPER_ROUTER_POWER_MW = 16.92
PAPER_ROUTER_AREA_KGE = 125.54
PAPER_N_UNITS = 4
PAPER_N_ROUTERS = 64


@dataclass(frozen=True)
class SynthesisRow:
    """One column pair of Table II.

    Attributes:
        component: "ordering_unit" or "router".
        technology / frequency_mhz / voltage_v: operating point.
        power_one_mw: power of a single instance.
        power_many_mw: power of the deployed count (4 units / 64 routers).
        count: instances deployed in the 8x8 reference design.
        area_kge: area of a single instance, thousand gate equivalents.
    """

    component: str
    technology: str
    frequency_mhz: float
    voltage_v: float
    power_one_mw: float
    power_many_mw: float
    count: int
    area_kge: float


def paper_table2() -> dict[str, SynthesisRow]:
    """Table II exactly as published."""
    return {
        "ordering_unit": SynthesisRow(
            component="ordering_unit",
            technology="TSMC 90nm",
            frequency_mhz=125.0,
            voltage_v=1.0,
            power_one_mw=PAPER_UNIT_POWER_MW,
            power_many_mw=8.852,
            count=PAPER_N_UNITS,
            area_kge=PAPER_UNIT_AREA_KGE,
        ),
        "router": SynthesisRow(
            component="router",
            technology="TSMC 90nm",
            frequency_mhz=125.0,
            voltage_v=1.0,
            power_one_mw=PAPER_ROUTER_POWER_MW,
            power_many_mw=1083.18,
            count=PAPER_N_ROUTERS,
            area_kge=PAPER_ROUTER_AREA_KGE,
        ),
    }


def model_table2(
    unit: OrderingUnitDesign | None = None,
    router: RouterDesign | None = None,
    n_units: int = PAPER_N_UNITS,
    n_routers: int = PAPER_N_ROUTERS,
) -> dict[str, SynthesisRow]:
    """Table II regenerated from the calibrated component models."""
    unit = unit or OrderingUnitDesign()
    router = router or RouterDesign()
    return {
        "ordering_unit": SynthesisRow(
            component="ordering_unit",
            technology=unit.tech.name,
            frequency_mhz=unit.tech.frequency_mhz,
            voltage_v=unit.tech.voltage_v,
            power_one_mw=unit.power_mw(),
            power_many_mw=n_units * unit.power_mw(),
            count=n_units,
            area_kge=unit.area_kge(),
        ),
        "router": SynthesisRow(
            component="router",
            technology=router.tech.name,
            frequency_mhz=router.tech.frequency_mhz,
            voltage_v=router.tech.voltage_v,
            power_one_mw=router.power_mw(),
            power_many_mw=n_routers * router.power_mw(),
            count=n_routers,
            area_kge=router.area_kge(),
        ),
    }


def format_table2(
    paper: dict[str, SynthesisRow], model: dict[str, SynthesisRow]
) -> str:
    """Side-by-side text rendering used by the Table II bench."""
    lines = ["Table II: Synthesis results (paper vs calibrated model)"]
    header = (
        f"{'Metric':<28}{'Unit(paper)':>14}{'Unit(model)':>14}"
        f"{'Router(paper)':>16}{'Router(model)':>16}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    pu, mu = paper["ordering_unit"], model["ordering_unit"]
    pr, mr = paper["router"], model["router"]
    rows = [
        ("Power one (mW)", pu.power_one_mw, mu.power_one_mw,
         pr.power_one_mw, mr.power_one_mw),
        (f"Power x{pu.count}/x{pr.count} (mW)", pu.power_many_mw,
         mu.power_many_mw, pr.power_many_mw, mr.power_many_mw),
        ("Area (kGE)", pu.area_kge, mu.area_kge, pr.area_kge, mr.area_kge),
    ]
    for label, a, b, c, d in rows:
        lines.append(f"{label:<28}{a:>14.3f}{b:>14.3f}{c:>16.2f}{d:>16.2f}")
    return "\n".join(lines)
