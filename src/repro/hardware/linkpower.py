"""Link power and energy model (Sec. V-C).

The paper estimates overall link power as::

    P = E_bt * (link_width / 2) * n_links * f

with E_bt the energy of one bit transition (0.173 pJ from the authors'
Innovus extraction; 0.532 pJ from Banerjee et al.), assuming half of
each link's wires transition per cycle.  A BT reduction rate then
scales P proportionally — the 40.85 % headline reduction takes
155.008 mW down to 91.688 mW.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.topology import inter_router_link_count

__all__ = ["LinkPowerModel", "PAPER_ENERGY_PJ", "BANERJEE_ENERGY_PJ"]

PAPER_ENERGY_PJ = 0.173
BANERJEE_ENERGY_PJ = 0.532


@dataclass(frozen=True)
class LinkPowerModel:
    """Per-transition-energy link power estimator.

    Attributes:
        energy_per_transition_pj: pJ consumed by one wire transition.
        link_width: wires per link (paper example: 128).
        n_links: inter-router links (paper 8x8 example: 112).
        frequency_hz: link clock (paper: 125 MHz).
    """

    energy_per_transition_pj: float = PAPER_ENERGY_PJ
    link_width: int = 128
    n_links: int = 112
    frequency_hz: float = 125e6

    def __post_init__(self) -> None:
        if self.energy_per_transition_pj <= 0:
            raise ValueError("transition energy must be positive")
        if self.link_width <= 0 or self.n_links <= 0:
            raise ValueError("link geometry must be positive")

    @classmethod
    def for_mesh(
        cls,
        width: int,
        height: int,
        link_width: int = 128,
        energy_per_transition_pj: float = PAPER_ENERGY_PJ,
        frequency_hz: float = 125e6,
    ) -> "LinkPowerModel":
        """Build the model from mesh dimensions (8x8 -> 112 links)."""
        return cls(
            energy_per_transition_pj=energy_per_transition_pj,
            link_width=link_width,
            n_links=inter_router_link_count(width, height),
            frequency_hz=frequency_hz,
        )

    def power_mw(self, switching_fraction: float = 0.5) -> float:
        """Aggregate link power under a given toggle fraction.

        The paper's intuition figure assumes half of the wires of
        every link transition each cycle (``switching_fraction=0.5``).
        """
        if not 0.0 <= switching_fraction <= 1.0:
            raise ValueError("switching fraction must lie in [0, 1]")
        energy_j = self.energy_per_transition_pj * 1e-12
        transitions_per_cycle = (
            self.link_width * switching_fraction * self.n_links
        )
        return energy_j * transitions_per_cycle * self.frequency_hz * 1e3

    def reduced_power_mw(
        self, bt_reduction_percent: float, switching_fraction: float = 0.5
    ) -> float:
        """Link power after applying a BT reduction rate (percent)."""
        if not 0.0 <= bt_reduction_percent <= 100.0:
            raise ValueError("reduction must be a percentage in [0, 100]")
        return self.power_mw(switching_fraction) * (
            1.0 - bt_reduction_percent / 100.0
        )

    def energy_for_transitions(self, n_transitions: int) -> float:
        """Energy in joules for an absolute BT count (simulation output)."""
        if n_transitions < 0:
            raise ValueError("transition count cannot be negative")
        return n_transitions * self.energy_per_transition_pj * 1e-12
