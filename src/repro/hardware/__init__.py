"""Hardware overhead models: ordering unit, router, link power."""

from repro.hardware.energy import EnergyReport, compare_energy, energy_report
from repro.hardware.linkpower import (
    BANERJEE_ENERGY_PJ,
    PAPER_ENERGY_PJ,
    LinkPowerModel,
)
from repro.hardware.ordering_unit import (
    OrderingUnitDesign,
    RouterDesign,
    TechnologyParams,
)
from repro.hardware.synthesis import (
    SynthesisRow,
    format_table2,
    model_table2,
    paper_table2,
)

__all__ = [
    "EnergyReport",
    "compare_energy",
    "energy_report",
    "BANERJEE_ENERGY_PJ",
    "PAPER_ENERGY_PJ",
    "LinkPowerModel",
    "OrderingUnitDesign",
    "RouterDesign",
    "TechnologyParams",
    "SynthesisRow",
    "format_table2",
    "model_table2",
    "paper_table2",
]
