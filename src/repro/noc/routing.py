"""Routing functions for the 2-D mesh.

The paper's NoC uses dimension-ordered X-Y routing (Sec. V-B), which is
minimal and deadlock-free on a mesh.  A Y-X variant is provided for
ablations.  Coordinates are ``(x, y)`` with x growing eastward and y
growing southward; node ids are ``y * width + x``.
"""

from __future__ import annotations

import enum
from collections.abc import Callable

__all__ = [
    "Port",
    "OPPOSITE",
    "xy_route",
    "yx_route",
    "west_first_route",
    "routing_by_name",
]


class Port(enum.IntEnum):
    """Router port directions (LOCAL is the NI port)."""

    LOCAL = 0
    NORTH = 1  # toward smaller y
    EAST = 2  # toward larger x
    SOUTH = 3  # toward larger y
    WEST = 4  # toward smaller x


OPPOSITE: dict[Port, Port] = {
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
}

RouteFn = Callable[[int, int, int], Port]


def xy_route(current: int, dst: int, width: int) -> Port:
    """Dimension-ordered X-then-Y routing.

    Args:
        current: id of the router holding the flit.
        dst: destination node id.
        width: mesh width (columns).

    Returns:
        The output port to take; LOCAL when already at the destination.
    """
    cx, cy = current % width, current // width
    dx, dy = dst % width, dst // width
    if cx < dx:
        return Port.EAST
    if cx > dx:
        return Port.WEST
    if cy < dy:
        return Port.SOUTH
    if cy > dy:
        return Port.NORTH
    return Port.LOCAL


def yx_route(current: int, dst: int, width: int) -> Port:
    """Y-then-X variant (ablation; also deadlock-free on a mesh)."""
    cx, cy = current % width, current // width
    dx, dy = dst % width, dst // width
    if cy < dy:
        return Port.SOUTH
    if cy > dy:
        return Port.NORTH
    if cx < dx:
        return Port.EAST
    if cx > dx:
        return Port.WEST
    return Port.LOCAL


def west_first_route(current: int, dst: int, width: int) -> Port:
    """West-first turn-model routing (deterministic variant).

    All westward movement happens first; afterwards the packet never
    turns back west, which breaks the cycles the turn model forbids
    and keeps the mesh deadlock-free.  Among the remaining minimal
    directions this variant prefers the Y dimension — giving a
    different (still minimal) path diversity than X-Y for eastbound
    traffic.
    """
    cx, cy = current % width, current // width
    dx, dy = dst % width, dst // width
    if cx > dx:
        return Port.WEST
    if cy < dy:
        return Port.SOUTH
    if cy > dy:
        return Port.NORTH
    if cx < dx:
        return Port.EAST
    return Port.LOCAL


def routing_by_name(name: str) -> RouteFn:
    """Look up a routing function ("xy", "yx" or "west_first")."""
    table: dict[str, RouteFn] = {
        "xy": xy_route,
        "yx": yx_route,
        "west_first": west_first_route,
    }
    key = name.strip().lower()
    if key not in table:
        raise ValueError(
            f"unknown routing {name!r}; use 'xy', 'yx' or 'west_first'"
        )
    return table[key]
