"""The NoC: mesh of routers + NIs, the cycle loop, and statistics.

The network advances in deterministic phases per cycle:

1. every active router runs route computation / VC allocation,
2. every active router runs switch allocation + link traversal
   (BTs recorded here, arrivals and credits queued),
3. NIs inject pending flits into their router's local port,
4. queued arrivals and credits commit, becoming visible next cycle.

This gives one-cycle link traversal and a one-cycle credit loop —
the granularity at which the paper's BT phenomenon lives (consecutive
flits on the same physical link).

Two cycle-loop implementations ("cores") produce bit-identical results:

* ``"event"`` (default) — the fast core.  Activity is tracked in
  explicit sets (routers gain membership when a flit is accepted or
  injected, lose it when their buffers drain; NIs when packets are
  queued / fully injected), so per-cycle work is proportional to the
  *events* of that cycle, not to the mesh size or the number of
  in-flight flits.  Link arrivals live in a min-heap keyed by
  ``(due_cycle, sequence)`` — sequence numbers preserve the exact
  commit order of the reference list for equal due cycles — and when
  nothing is active the drivers :meth:`Network.fast_forward` the clock
  straight to the next heap event instead of stepping through idle
  cycles.  ``stats.cycles``, latencies, and per-link BTs are exactly
  those of the stepped result; :attr:`Network.steps_executed` counts
  the cycles actually *stepped*, so ``steps_executed <= stats.cycles``
  with equality only when no idle cycle existed to skip.

* ``"stepped"`` — the retained reference core: scans every router and
  NI each cycle and keeps arrivals in a plain list that is re-scanned
  for due flits every cycle.  It exists as the oracle for the
  equivalence suite (``tests/test_noc_eventcore.py``) and as the
  baseline the perf harness (``repro bench``) measures the event core
  against.

Both cores share the routers, the NIs, and :meth:`Network.transmit`
(per-hop BT recording with per-(router, outport) recorder handles that
are resolved once, not per hop).
"""

from __future__ import annotations

import inspect
import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from heapq import heappop, heappush
from typing import Any, Iterator, Sequence

from repro.noc.flit import Flit, Packet
from repro.noc.interface import NetworkInterface
from repro.noc.recorder import LinkRecorder, TransitionLedger
from repro.noc.router import Router
from repro.noc.routing import OPPOSITE, Port, routing_by_name
from repro.noc.topology import mesh_neighbors

_LOCAL = Port.LOCAL

__all__ = [
    "NoCConfig",
    "NoCStats",
    "percentile",
    "Network",
    "SimulationTimeout",
    "CORES",
    "default_core",
    "set_default_core",
    "network_core",
]


class SimulationTimeout(RuntimeError):
    """Raised when the network fails to drain within the cycle budget."""


#: The cycle-loop implementations a Network can run on.
CORES = ("event", "stepped")

_default_core = "event"


def default_core() -> str:
    """The core a :class:`Network` uses when none is passed."""
    return _default_core


def set_default_core(core: str) -> str:
    """Set the process-wide default core; returns the previous value."""
    global _default_core
    if core not in CORES:
        raise ValueError(f"unknown network core {core!r}; use one of {CORES}")
    previous = _default_core
    _default_core = core
    return previous


@contextmanager
def network_core(core: str) -> Iterator[None]:
    """Scoped :func:`set_default_core` (used by benches and tests)."""
    previous = set_default_core(core)
    try:
        yield
    finally:
        set_default_core(previous)


@dataclass(frozen=True)
class NoCConfig:
    """Structural and measurement parameters of the NoC.

    Defaults mirror the paper's setup (Sec. V-B): X-Y routing, 4 VCs
    with 4-flit buffers, 512-bit links (16 float-32 values).

    Attributes:
        width: mesh columns.
        height: mesh rows.
        n_vcs: virtual channels per input port.
        vc_depth: buffer depth per VC, in flits.
        link_width: link (= flit payload) width in bits.
        routing: "xy" (paper) or "yx".
        record_ejection: count BTs on router->NI ejection links too
            (router outports, per Fig. 8's "Rx Outport y" naming).
        record_injection: also count NI->router injection links.
        include_header_bits: fold a side-band header word into the
            recorded bit image (ablation).
        injection_rate: flits each NI may inject per cycle.
        link_latency: cycles a flit spends crossing a link (>= 1;
            models deeper router/link pipelines).
        core: pin the cycle-loop core ("event" or "stepped") for every
            network built from this config; None defers to the
            process-wide :func:`default_core`.  Being a config field
            makes the core a sweepable campaign axis (``repro sweep
            --cores``) that participates in cache keys.
    """

    width: int = 4
    height: int = 4
    n_vcs: int = 4
    vc_depth: int = 4
    link_width: int = 512
    routing: str = "xy"
    record_ejection: bool = True
    record_injection: bool = False
    include_header_bits: bool = False
    injection_rate: int = 1
    link_latency: int = 1
    core: str | None = None

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("mesh dimensions must be positive")
        if self.n_vcs <= 0 or self.vc_depth <= 0:
            raise ValueError("n_vcs and vc_depth must be positive")
        if self.link_width <= 0:
            raise ValueError("link_width must be positive")
        if self.link_latency < 1:
            raise ValueError("link_latency must be at least 1")
        if self.core is not None and self.core not in CORES:
            raise ValueError(
                f"unknown network core {self.core!r}; use one of {CORES}"
            )

    @property
    def n_nodes(self) -> int:
        return self.width * self.height

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; exact inverse of :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "NoCConfig":
        """Rebuild a config from :meth:`to_dict` output (strict keys)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown NoCConfig fields: {sorted(unknown)}")
        return cls(**data)


def percentile(values: Sequence[int | float], p: float) -> float:
    """The ``p``-th percentile of ``values`` (linear interpolation).

    Matches ``numpy.percentile``'s default method so serving reports
    can be property-tested against it, without making the core network
    module depend on numpy.  Returns 0.0 for an empty sequence.
    """
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * p / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo]) + (float(ordered[hi]) - float(ordered[lo])) * frac


@dataclass
class NoCStats:
    """Aggregated simulation statistics.

    Attributes:
        cycles: simulated cycles.
        packets_injected / packets_delivered: packet counts.
        flits_injected / flit_hops: flit counts (hops include every
            link traversal, so one flit crossing 3 links counts 3).
        total_bit_transitions: the Fig. 8 NoC-wide BT sum.
        packet_latencies: per-delivered-packet latency in cycles.
    """

    cycles: int = 0
    packets_injected: int = 0
    packets_delivered: int = 0
    flits_injected: int = 0
    flit_hops: int = 0
    total_bit_transitions: int = 0
    packet_latencies: list[int] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        if not self.packet_latencies:
            return 0.0
        return sum(self.packet_latencies) / len(self.packet_latencies)

    def latency_percentile(self, p: float) -> float:
        """``p``-th percentile of delivered-packet latency in cycles."""
        return percentile(self.packet_latencies, p)

    @property
    def p50_latency(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def transitions_per_flit_hop(self) -> float:
        if self.flit_hops == 0:
            return 0.0
        return self.total_bit_transitions / self.flit_hops


class Network:
    """A complete NoC instance ready to carry packets.

    Args:
        config: structural parameters.
        core: cycle-loop implementation, ``"event"`` or ``"stepped"``;
            ``None`` uses ``config.core`` when pinned, else
            :func:`default_core`.
    """

    def __init__(self, config: NoCConfig, core: str | None = None) -> None:
        self.config = config
        if core is None:
            core = config.core if config.core is not None else _default_core
        if core not in CORES:
            raise ValueError(
                f"unknown network core {core!r}; use one of {CORES}"
            )
        self.core = core
        self.event_core = core == "event"
        route_fn = routing_by_name(config.routing)
        self.routers = [
            Router(
                node_id=node,
                mesh_width=config.width,
                n_vcs=config.n_vcs,
                vc_depth=config.vc_depth,
                route_fn=route_fn,
            )
            for node in range(config.n_nodes)
        ]
        self.nis = [
            NetworkInterface(
                node_id=node,
                router=self.routers[node],
                flits_per_cycle=config.injection_rate,
            )
            for node in range(config.n_nodes)
        ]
        self._neighbors = mesh_neighbors(config.width, config.height)
        self.ledger = TransitionLedger()
        self.stats = NoCStats()
        self.cycle = 0
        #: Cycles actually executed by :meth:`step`; on the event core
        #: ``steps_executed <= stats.cycles`` because idle cycles are
        #: fast-forwarded over rather than stepped.
        self.steps_executed = 0
        # Observability counters (plain ints; see metrics_snapshot()).
        # idle_cycles_skipped/fast_forwards track the event core's idle
        # jumps; heap_pushes/heap_pops count multi-cycle-link arrival
        # heap traffic (zero at the default link latency of 1, where
        # the same-cycle list bypasses the heap — queue_commits counts
        # those commits instead).
        self.idle_cycles_skipped = 0
        self.fast_forwards = 0
        self.heap_pushes = 0
        self.heap_pops = 0
        self.queue_commits = 0
        self._in_flight: dict[int, Packet] = {}
        # Arrivals are (due, seq, node, in_port, vc_idx, flit) tuples in
        # both cores; the event core keeps them heap-ordered, the
        # stepped core scans the plain list every cycle.  The monotonic
        # seq preserves the list's commit order for equal due cycles.
        self._arrivals: list[tuple[int, int, int, Port, int, Flit]] = []
        self._arrival_seq = itertools.count()
        # Event-core shortcut for the (default) one-cycle links: every
        # arrival queued during a step commits at the end of that same
        # step, so a plain append-ordered list replaces the heap and
        # its per-hop push/pop entirely.
        self._same_cycle_arrivals: list[tuple[int, int, Flit]] = []
        self._ejections: list[tuple[int, Flit]] = []
        self._credits: list[tuple[list[int], int, int, int]] = []
        # Event-core activity tracking (unused by the stepped core).
        self._active_routers: set[int] = set()
        self._pending_nis: set[int] = set()
        # Per-hop fast paths: config scalars hoisted out of transmit(),
        # neighbor/link-name tables indexed by (node, port value), and
        # lazily bound per-link recorder handles so the hot path never
        # formats a link name or hashes into the ledger dict.  Handles
        # are bound on first traversal (not precreated) so the ledger
        # keeps containing exactly the links that carried traffic.
        self._record_ejection = config.record_ejection
        self._record_injection = config.record_injection
        self._include_header = config.include_header_bits
        self._link_latency = config.link_latency
        n_ports = len(Port)
        self._neighbor_of: list[list[int | None]] = [
            [self._neighbors[node].get(port) for port in Port]
            for node in range(config.n_nodes)
        ]
        self._recorders: list[list[LinkRecorder | None]] = [
            [None] * n_ports for _ in range(config.n_nodes)
        ]
        self._inject_recorders: list[LinkRecorder | None] = (
            [None] * config.n_nodes
        )
        self._opposite_of: list[Port | None] = [
            OPPOSITE.get(port) for port in Port
        ]
        # Arrival slot base per outgoing port: the receiving router's
        # flat slot index is base + out_vc (event-core arrival tuples
        # carry flat indices, not (Port, vc) pairs).
        self._opposite_flat_base: list[int] = [
            0 if opp is None else opp.value * config.n_vcs
            for opp in self._opposite_of
        ]
        # Per (node, in-port) handle on the upstream router's credit
        # counters for the opposite outport: the credit return path
        # then touches no router/dict lookups per hop.  Rows build on
        # a node's first credit so construction stays O(1) per node.
        self._upstream_credits: list[list[list[int] | None] | None] = (
            [None] * config.n_nodes
        )
        # Optional per-link wire-image trace (see repro.workloads.traces
        # and repro.noc.recorder.TraceRecorder): any object with
        # record(link_name, bits, cycle, vc, flit) works; if it also
        # exposes record_send(cycle, packet), every packet injection
        # event is captured too (what trace replay re-injects).
        # Collectors with the historical 3-arg record(link, bits,
        # cycle) signature keep working — the hook arity is resolved
        # once per collector, not per hop.
        self.trace_collector = None
        self._trace_hook = None
        self._trace_hook_owner = None

    # -- traffic interface ---------------------------------------------

    def send_packet(self, packet: Packet) -> None:
        """Queue a packet at its source NI for injection."""
        if not 0 <= packet.src < self.config.n_nodes:
            raise ValueError(f"source node {packet.src} outside the mesh")
        if not 0 <= packet.dst < self.config.n_nodes:
            raise ValueError(f"destination node {packet.dst} outside the mesh")
        for flit in packet.flits:
            if flit.width != self.config.link_width:
                raise ValueError(
                    f"flit width {flit.width} != link width "
                    f"{self.config.link_width}"
                )
        collector = self.trace_collector
        if collector is not None:
            send_hook = getattr(collector, "record_send", None)
            if send_hook is not None:
                send_hook(self.cycle, packet)
        self._in_flight[packet.packet_id] = packet
        self.nis[packet.src].queue_packet(packet)
        self._pending_nis.add(packet.src)
        self.stats.packets_injected += 1
        self.stats.flits_injected += len(packet.flits)

    def attach_sink(self, node: int, sink: Any) -> None:
        """Set the packet-delivery callback of a node's NI."""
        self.nis[node].sink = sink

    # -- router-facing hooks ---------------------------------------------

    def transmit(
        self, router: Router, out_port: Port, out_vc: int, flit: Flit
    ) -> None:
        """Carry one flit over ``router``'s ``out_port`` link."""
        node = router.node_id
        stats = self.stats
        # Port is an IntEnum: indexing lists with it directly avoids
        # the enum .value descriptor on the per-hop path.
        if out_port is not _LOCAL or self._record_ejection:
            recorder = self._recorders[node][out_port]
            if recorder is None:
                recorder = self.ledger.recorder_for(
                    f"R{node}.{out_port.name}"
                )
                self._recorders[node][out_port] = recorder
            # With header bits excluded (the default) the wire image is
            # exactly the payload — skip the wire_bits() call per hop.
            bits = (
                flit.wire_bits(True) if self._include_header else flit.payload
            )
            # LinkRecorder.record() unrolled: one flit hop is the
            # hottest line of the whole simulator.
            prev = recorder.previous
            caused = 0 if prev is None else (prev ^ bits).bit_count()
            recorder.transitions += caused
            recorder.flits += 1
            recorder.previous = bits
            ledger = self.ledger
            ledger._total_transitions += caused
            ledger._total_flits += 1
            stats.total_bit_transitions += caused
            if self.trace_collector is not None:
                if self.trace_collector is not self._trace_hook_owner:
                    self._bind_trace_hook()
                self._trace_hook(
                    recorder.name, bits, self.cycle, out_vc, flit
                )
        stats.flit_hops += 1
        if out_port is _LOCAL:
            self._ejections.append((node, flit))
            return
        neighbor = self._neighbor_of[node][out_port]
        if neighbor is None:
            raise ValueError(
                f"router {node} has no {out_port.name} link"
            )
        if self.event_core:
            flat = self._opposite_flat_base[out_port] + out_vc
            if self._link_latency == 1:
                self._same_cycle_arrivals.append((neighbor, flat, flit))
                return
            self.heap_pushes += 1
            heappush(
                self._arrivals,
                (
                    self.cycle + self._link_latency - 1,
                    next(self._arrival_seq),
                    neighbor,
                    flat,
                    flit,
                ),
            )
            return
        self._arrivals.append(
            (
                self.cycle + self._link_latency - 1,
                next(self._arrival_seq),
                neighbor,
                self._opposite_of[out_port.value],
                out_vc,
                flit,
            )
        )

    def _bind_trace_hook(self) -> None:
        """Resolve the trace collector's record() arity, once.

        The hook protocol grew from ``record(link, bits, cycle)`` to
        ``record(link, bits, cycle, vc, flit)``; collectors written
        against the old protocol are adapted instead of crashing on
        the first traced hop.
        """
        record = self.trace_collector.record
        legacy = keyword_only = False
        try:
            params = inspect.signature(record).parameters
            n_positional = sum(
                p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
                for p in params.values()
            )
            var_positional = any(
                p.kind is p.VAR_POSITIONAL for p in params.values()
            )
            kw_names = {
                name
                for name, p in params.items()
                if p.kind is p.KEYWORD_ONLY
            } | (
                {"vc", "flit"}
                if any(p.kind is p.VAR_KEYWORD for p in params.values())
                else set()
            )
            if not var_positional and n_positional == 3:
                if {"vc", "flit"} <= kw_names:
                    keyword_only = True
                else:
                    legacy = True
            # Any other shape gets the direct 5-positional call: a
            # genuinely incompatible signature then raises TypeError
            # instead of silently losing vc/flit.
        except (TypeError, ValueError):  # builtins without signatures
            pass
        if keyword_only:
            self._trace_hook = (
                lambda name, bits, cycle, vc, flit: record(
                    name, bits, cycle, vc=vc, flit=flit
                )
            )
        elif legacy:
            self._trace_hook = (
                lambda name, bits, cycle, vc, flit: record(
                    name, bits, cycle
                )
            )
        else:
            self._trace_hook = record
        self._trace_hook_owner = self.trace_collector

    def queue_credit(self, router: Router, in_port: Port, vc_idx: int) -> None:
        """Return a buffer credit to the upstream router."""
        self._queue_credit(router.node_id, in_port.value, vc_idx)

    def _queue_credit(self, node: int, port_idx: int, vc_idx: int) -> None:
        """:meth:`queue_credit` by node id and port value."""
        row = self._upstream_credits[node]
        if row is None:
            neighbors = self._neighbor_of[node]
            row = [None] + [
                None
                if (up := neighbors[p]) is None
                else self.routers[up].credits[self._opposite_of[p]]
                for p in range(1, len(neighbors))
            ]
            self._upstream_credits[node] = row
        credit_list = row[port_idx]
        if credit_list is None:
            raise ValueError(
                f"router {node} has no upstream on {Port(port_idx).name}"
            )
        self._credits.append((credit_list, vc_idx, node, port_idx))

    # -- cycle loop --------------------------------------------------------

    def step(self) -> None:
        """Advance the network by one cycle."""
        if self.event_core:
            self._step_event()
        else:
            self._step_reference()

    def _step_event(self) -> None:
        """One cycle of the event core: touch only what is active."""
        cycle = self.cycle
        routers = self.routers
        active = self._active_routers
        if active:
            for node in sorted(active):
                router = routers[node]
                router.allocate_and_traverse(self)
                if not router.buffered_flits:
                    active.discard(node)
        if self._pending_nis:
            record = self._record_injection
            for node in sorted(self._pending_nis):
                ni = self.nis[node]
                injected = ni.try_inject(cycle)
                if injected:
                    active.add(node)
                    if record:
                        self._record_injected(node, injected)
                if not ni.has_pending_tx:
                    self._pending_nis.discard(node)
        same_cycle = self._same_cycle_arrivals
        if same_cycle:
            self.queue_commits += len(same_cycle)
            for node, flat, flit in same_cycle:
                routers[node]._accept_flat(flat, flit)
                active.add(node)
            same_cycle.clear()
        arrivals = self._arrivals
        while arrivals and arrivals[0][0] <= cycle:
            _, _, node, flat, flit = heappop(arrivals)
            self.heap_pops += 1
            routers[node]._accept_flat(flat, flit)
            active.add(node)
        if self._ejections:
            self._commit_ejections(cycle)
        if self._credits:
            self._commit_credits()
        self.cycle = cycle + 1
        self.stats.cycles = self.cycle
        self.steps_executed += 1

    def _step_reference(self) -> None:
        """One cycle of the retained reference core: scan everything."""
        active = [r for r in self.routers if r.is_active]
        for router in active:
            router.allocate()
        for router in active:
            router.switch_traversal(self)
        for ni in self.nis:
            if ni.has_pending_tx:
                injected = ni.try_inject(self.cycle)
                if self._record_injection and injected:
                    self._record_injected(ni.node_id, injected)
        still_in_flight: list[tuple[int, int, int, Port, int, Flit]] = []
        for arrival in self._arrivals:
            if arrival[0] <= self.cycle:
                _, _, node, in_port, vc_idx, flit = arrival
                self.routers[node].accept_flit(in_port, vc_idx, flit)
            else:
                still_in_flight.append(arrival)
        self._arrivals[:] = still_in_flight
        self._commit_ejections(self.cycle)
        if self._credits:
            self._commit_credits()
        self.cycle += 1
        self.stats.cycles = self.cycle
        self.steps_executed += 1

    def _record_injected(self, node: int, injected: list[Flit]) -> None:
        """Account NI->router injection-link BTs for injected flits."""
        recorder = self._inject_recorders[node]
        if recorder is None:
            recorder = self.ledger.recorder_for(f"NI{node}.INJECT")
            self._inject_recorders[node] = recorder
        include_header = self._include_header
        for flit in injected:
            self.stats.total_bit_transitions += recorder.record(
                flit.wire_bits(True) if include_header else flit.payload
            )

    def _commit_ejections(self, cycle: int) -> None:
        """Deliver ejected flits to their NIs; complete tail packets."""
        stats = self.stats
        for node, flit in self._ejections:
            packet = None
            if flit.is_tail:
                packet = self._in_flight.pop(flit.packet_id, None)
            self.nis[node].receive_flit(flit, packet, cycle)
            if flit.is_tail and packet is not None:
                stats.packets_delivered += 1
                stats.packet_latencies.append(packet.latency)
        self._ejections.clear()

    def _commit_credits(self) -> None:
        """Return queued credits to their upstream routers."""
        vc_depth = self.config.vc_depth
        for credit_list, vc_idx, node, port_idx in self._credits:
            credit_list[vc_idx] += 1
            if credit_list[vc_idx] > vc_depth:
                upstream = self._neighbor_of[node][port_idx]
                out_port = self._opposite_of[port_idx]
                raise RuntimeError(
                    f"credit overflow at router {upstream} "
                    f"port {out_port.name}"
                )
        self._credits.clear()

    # -- idle-cycle fast-forward ---------------------------------------

    @property
    def is_idle(self) -> bool:
        """Event core: True when no router or NI can act this cycle.

        Queued arrivals with a future due cycle may still exist; they
        are the events :meth:`fast_forward` jumps to.
        """
        return not (
            self._active_routers or self._pending_nis or self._ejections
        )

    def next_internal_event(self) -> int | None:
        """Due cycle of the earliest queued link arrival, if any."""
        return self._arrivals[0][0] if self._arrivals else None

    def fast_forward(self, target: int) -> None:
        """Jump the clock to ``target`` without stepping idle cycles.

        Only meaningful on the event core while :attr:`is_idle`; a
        target at or behind the current cycle is a no-op.  The stepped
        result is preserved exactly because an idle cycle mutates
        nothing but the cycle counter.
        """
        if target > self.cycle:
            self.idle_cycles_skipped += target - self.cycle
            self.fast_forwards += 1
            self.cycle = target
            self.stats.cycles = target

    # -- observability -----------------------------------------------------

    def metrics_snapshot(self) -> dict[str, int]:
        """Flat counter snapshot of the network's observability state.

        Families: ``event.*`` (cycle-loop core counters, deterministic
        simulation facts regardless of which core ran) and ``router.*``
        (aggregated over the mesh; ``.peak`` names merge by max, the
        rest by sum — see :mod:`repro.obs.metrics`).
        """
        arb_conflicts = vc_grants = peak = 0
        for router in self.routers:
            arb_conflicts += router.arb_conflicts
            vc_grants += router.vc_grants
            if router.peak_occupancy > peak:
                peak = router.peak_occupancy
        return {
            "event.steps_executed": self.steps_executed,
            "event.idle_cycles_skipped": self.idle_cycles_skipped,
            "event.fast_forwards": self.fast_forwards,
            "event.heap_pushes": self.heap_pushes,
            "event.heap_pops": self.heap_pops,
            "event.queue_commits": self.queue_commits,
            "router.arb_conflicts": arb_conflicts,
            "router.vc_grants": vc_grants,
            "router.buffer_occupancy.peak": peak,
        }

    # -- drivers -----------------------------------------------------------

    @property
    def has_work(self) -> bool:
        """True while any flit is buffered, queued, or in flight."""
        if self._arrivals or self._same_cycle_arrivals or self._ejections:
            return True
        if self.event_core:
            return bool(self._active_routers or self._pending_nis)
        if any(r.is_active for r in self.routers):
            return True
        return any(ni.has_pending_tx for ni in self.nis)

    def run_until_drained(self, max_cycles: int = 1_000_000) -> NoCStats:
        """Step until all traffic is delivered (or the budget runs out)."""
        event = self.event_core
        while self.has_work:
            if event and self.is_idle and self._arrivals:
                self.fast_forward(min(self._arrivals[0][0], max_cycles))
            if self.cycle >= max_cycles:
                raise SimulationTimeout(
                    f"network not drained after {max_cycles} cycles "
                    f"({self.stats.packets_delivered} of "
                    f"{self.stats.packets_injected} packets delivered)"
                )
            self.step()
        return self.stats
