"""The NoC: mesh of routers + NIs, the cycle loop, and statistics.

The network advances in deterministic phases per cycle:

1. every active router runs route computation / VC allocation,
2. every active router runs switch allocation + link traversal
   (BTs recorded here, arrivals and credits queued),
3. NIs inject pending flits into their router's local port,
4. queued arrivals and credits commit, becoming visible next cycle.

This gives one-cycle link traversal and a one-cycle credit loop —
the granularity at which the paper's BT phenomenon lives (consecutive
flits on the same physical link).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any

from repro.noc.flit import Flit, Packet
from repro.noc.interface import NetworkInterface
from repro.noc.recorder import TransitionLedger
from repro.noc.router import Router
from repro.noc.routing import OPPOSITE, Port, routing_by_name
from repro.noc.topology import mesh_neighbors

__all__ = ["NoCConfig", "NoCStats", "Network", "SimulationTimeout"]


class SimulationTimeout(RuntimeError):
    """Raised when the network fails to drain within the cycle budget."""


@dataclass(frozen=True)
class NoCConfig:
    """Structural and measurement parameters of the NoC.

    Defaults mirror the paper's setup (Sec. V-B): X-Y routing, 4 VCs
    with 4-flit buffers, 512-bit links (16 float-32 values).

    Attributes:
        width: mesh columns.
        height: mesh rows.
        n_vcs: virtual channels per input port.
        vc_depth: buffer depth per VC, in flits.
        link_width: link (= flit payload) width in bits.
        routing: "xy" (paper) or "yx".
        record_ejection: count BTs on router->NI ejection links too
            (router outports, per Fig. 8's "Rx Outport y" naming).
        record_injection: also count NI->router injection links.
        include_header_bits: fold a side-band header word into the
            recorded bit image (ablation).
        injection_rate: flits each NI may inject per cycle.
        link_latency: cycles a flit spends crossing a link (>= 1;
            models deeper router/link pipelines).
    """

    width: int = 4
    height: int = 4
    n_vcs: int = 4
    vc_depth: int = 4
    link_width: int = 512
    routing: str = "xy"
    record_ejection: bool = True
    record_injection: bool = False
    include_header_bits: bool = False
    injection_rate: int = 1
    link_latency: int = 1

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("mesh dimensions must be positive")
        if self.n_vcs <= 0 or self.vc_depth <= 0:
            raise ValueError("n_vcs and vc_depth must be positive")
        if self.link_width <= 0:
            raise ValueError("link_width must be positive")
        if self.link_latency < 1:
            raise ValueError("link_latency must be at least 1")

    @property
    def n_nodes(self) -> int:
        return self.width * self.height

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; exact inverse of :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "NoCConfig":
        """Rebuild a config from :meth:`to_dict` output (strict keys)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown NoCConfig fields: {sorted(unknown)}")
        return cls(**data)


@dataclass
class NoCStats:
    """Aggregated simulation statistics.

    Attributes:
        cycles: simulated cycles.
        packets_injected / packets_delivered: packet counts.
        flits_injected / flit_hops: flit counts (hops include every
            link traversal, so one flit crossing 3 links counts 3).
        total_bit_transitions: the Fig. 8 NoC-wide BT sum.
        packet_latencies: per-delivered-packet latency in cycles.
    """

    cycles: int = 0
    packets_injected: int = 0
    packets_delivered: int = 0
    flits_injected: int = 0
    flit_hops: int = 0
    total_bit_transitions: int = 0
    packet_latencies: list[int] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        if not self.packet_latencies:
            return 0.0
        return sum(self.packet_latencies) / len(self.packet_latencies)

    @property
    def transitions_per_flit_hop(self) -> float:
        if self.flit_hops == 0:
            return 0.0
        return self.total_bit_transitions / self.flit_hops


class Network:
    """A complete NoC instance ready to carry packets."""

    def __init__(self, config: NoCConfig) -> None:
        self.config = config
        route_fn = routing_by_name(config.routing)
        self.routers = [
            Router(
                node_id=node,
                mesh_width=config.width,
                n_vcs=config.n_vcs,
                vc_depth=config.vc_depth,
                route_fn=route_fn,
            )
            for node in range(config.n_nodes)
        ]
        self.nis = [
            NetworkInterface(
                node_id=node,
                router=self.routers[node],
                flits_per_cycle=config.injection_rate,
            )
            for node in range(config.n_nodes)
        ]
        self._neighbors = mesh_neighbors(config.width, config.height)
        self.ledger = TransitionLedger()
        self.stats = NoCStats()
        self.cycle = 0
        self._in_flight: dict[int, Packet] = {}
        self._arrivals: list[tuple[int, int, Port, int, Flit]] = []
        self._ejections: list[tuple[int, Flit]] = []
        self._credits: list[tuple[int, Port, int]] = []
        # Optional per-link wire-image trace (see repro.workloads.traces);
        # any object with record(link_name, bits, cycle) works.
        self.trace_collector = None

    # -- traffic interface ---------------------------------------------

    def send_packet(self, packet: Packet) -> None:
        """Queue a packet at its source NI for injection."""
        if not 0 <= packet.src < self.config.n_nodes:
            raise ValueError(f"source node {packet.src} outside the mesh")
        if not 0 <= packet.dst < self.config.n_nodes:
            raise ValueError(f"destination node {packet.dst} outside the mesh")
        for flit in packet.flits:
            if flit.width != self.config.link_width:
                raise ValueError(
                    f"flit width {flit.width} != link width "
                    f"{self.config.link_width}"
                )
        self._in_flight[packet.packet_id] = packet
        self.nis[packet.src].queue_packet(packet)
        self.stats.packets_injected += 1
        self.stats.flits_injected += len(packet.flits)

    def attach_sink(self, node: int, sink: Any) -> None:
        """Set the packet-delivery callback of a node's NI."""
        self.nis[node].sink = sink

    # -- router-facing hooks ---------------------------------------------

    def transmit(
        self, router: Router, out_port: Port, out_vc: int, flit: Flit
    ) -> None:
        """Carry one flit over ``router``'s ``out_port`` link."""
        record = out_port is not Port.LOCAL or self.config.record_ejection
        if record:
            name = f"R{router.node_id}.{out_port.name}"
            bits = flit.wire_bits(self.config.include_header_bits)
            self.stats.total_bit_transitions += self.ledger.recorder_for(
                name
            ).record(bits)
            if self.trace_collector is not None:
                self.trace_collector.record(name, bits, self.cycle)
        self.stats.flit_hops += 1
        if out_port is Port.LOCAL:
            self._ejections.append((router.node_id, flit))
            return
        neighbor = self._neighbors[router.node_id].get(out_port)
        if neighbor is None:
            raise ValueError(
                f"router {router.node_id} has no {out_port.name} link"
            )
        due = self.cycle + self.config.link_latency - 1
        self._arrivals.append(
            (due, neighbor, OPPOSITE[out_port], out_vc, flit)
        )

    def queue_credit(self, router: Router, in_port: Port, vc_idx: int) -> None:
        """Return a buffer credit to the upstream router."""
        upstream = self._neighbors[router.node_id].get(in_port)
        if upstream is None:
            raise ValueError(
                f"router {router.node_id} has no upstream on {in_port.name}"
            )
        self._credits.append((upstream, OPPOSITE[in_port], vc_idx))

    # -- cycle loop --------------------------------------------------------

    def step(self) -> None:
        """Advance the network by one cycle."""
        active = [r for r in self.routers if r.is_active]
        for router in active:
            router.allocate()
        for router in active:
            router.switch_traversal(self)
        for ni in self.nis:
            if ni.has_pending_tx:
                injected = ni.try_inject(self.cycle)
                if self.config.record_injection and injected:
                    recorder = self.ledger.recorder_for(
                        f"NI{ni.node_id}.INJECT"
                    )
                    for flit in injected:
                        self.stats.total_bit_transitions += recorder.record(
                            flit.wire_bits(self.config.include_header_bits)
                        )
        still_in_flight: list[tuple[int, int, Port, int, Flit]] = []
        for due, node, in_port, vc_idx, flit in self._arrivals:
            if due <= self.cycle:
                self.routers[node].accept_flit(in_port, vc_idx, flit)
            else:
                still_in_flight.append((due, node, in_port, vc_idx, flit))
        self._arrivals[:] = still_in_flight
        for node, flit in self._ejections:
            packet = None
            if flit.flit_type.is_tail:
                packet = self._in_flight.pop(flit.packet_id, None)
            self.nis[node].receive_flit(flit, packet, self.cycle)
            if flit.flit_type.is_tail and packet is not None:
                self.stats.packets_delivered += 1
                self.stats.packet_latencies.append(packet.latency)
        self._ejections.clear()
        for node, out_port, vc_idx in self._credits:
            credits = self.routers[node].credits[out_port]
            credits[vc_idx] += 1
            if credits[vc_idx] > self.config.vc_depth:
                raise RuntimeError(
                    f"credit overflow at router {node} port {out_port.name}"
                )
        self._credits.clear()
        self.cycle += 1
        self.stats.cycles = self.cycle

    @property
    def has_work(self) -> bool:
        """True while any flit is buffered, queued, or in flight."""
        if self._arrivals or self._ejections:
            return True
        if any(r.is_active for r in self.routers):
            return True
        return any(ni.has_pending_tx for ni in self.nis)

    def run_until_drained(self, max_cycles: int = 1_000_000) -> NoCStats:
        """Step until all traffic is delivered (or the budget runs out)."""
        while self.has_work:
            if self.cycle >= max_cycles:
                raise SimulationTimeout(
                    f"network not drained after {max_cycles} cycles "
                    f"({self.stats.packets_delivered} of "
                    f"{self.stats.packets_injected} packets delivered)"
                )
            self.step()
        return self.stats
