"""Round-robin arbitration, used for VC and switch allocation."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["RoundRobinArbiter"]


class RoundRobinArbiter:
    """Classic rotating-priority arbiter over ``n`` requesters.

    The requester after the most recent winner has the highest
    priority, guaranteeing starvation freedom — the discipline NoC
    switch allocators conventionally use.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"arbiter needs at least one requester, got {n}")
        self.n = n
        self._last_winner = n - 1

    def pick(self, requests: Sequence[bool]) -> int | None:
        """Grant one of the asserted requests, or None if there are none.

        Args:
            requests: length-``n`` truthy flags, one per requester.

        Returns:
            Winning requester index, rotating fairly across calls.
        """
        if len(requests) != self.n:
            raise ValueError(
                f"expected {self.n} request flags, got {len(requests)}"
            )
        for offset in range(1, self.n + 1):
            idx = (self._last_winner + offset) % self.n
            if requests[idx]:
                self._last_winner = idx
                return idx
        return None

    def pick_indices(self, indices: Iterable[int]) -> int | None:
        """Grant among asserted requester *indices* without a flag scan.

        Equivalent to :meth:`pick` on a flag vector with exactly
        ``indices`` asserted — the winner is the asserted requester
        closest after the previous winner — but O(len(indices)) instead
        of O(n).  Indices must be valid requester ids; duplicates are
        harmless (the winner is picked by priority, not position).
        """
        last = self._last_winner
        n = self.n
        best: int | None = None
        best_offset = n
        for idx in indices:
            offset = (idx - last - 1) % n
            if offset < best_offset:
                best_offset = offset
                best = idx
        if best is not None:
            self._last_winner = best
        return best
