"""Per-outport BT recording, exactly the Fig. 8 scheme.

Every recorded link keeps a ``Flit_pre`` register holding the bits of
the previous flit that crossed it; each traversal XORs the new flit
against the register and accumulates the popcount into the NoC-wide
sum.  Recording is measurement-only — the paper stresses that the flit
storage and summation are not part of the design overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bits.popcount import popcount

__all__ = ["LinkRecorder", "TransitionLedger"]


@dataclass
class LinkRecorder:
    """BT recorder for one physical link (one router outport).

    Attributes:
        name: link label, e.g. "R5.EAST" or "R3.LOCAL".
        previous: bits of the last flit that crossed ("Flit_pre");
            None before the first traversal.
        transitions: accumulated BT count on this link.
        flits: number of flits that crossed.
    """

    name: str
    previous: int | None = None
    transitions: int = 0
    flits: int = 0

    def record(self, bits: int) -> int:
        """Account one flit traversal; returns the BTs it caused."""
        caused = 0 if self.previous is None else popcount(self.previous ^ bits)
        self.transitions += caused
        self.flits += 1
        self.previous = bits
        return caused


@dataclass
class TransitionLedger:
    """NoC-wide aggregation over all link recorders.

    Attributes:
        recorders: link-name -> recorder.
    """

    recorders: dict[str, LinkRecorder] = field(default_factory=dict)

    def recorder_for(self, name: str) -> LinkRecorder:
        """Get (or lazily create) the recorder for a link."""
        rec = self.recorders.get(name)
        if rec is None:
            rec = LinkRecorder(name=name)
            self.recorders[name] = rec
        return rec

    @property
    def total_transitions(self) -> int:
        """The "NoC Bit Transition Sum" of Fig. 8."""
        return sum(r.transitions for r in self.recorders.values())

    @property
    def total_flit_traversals(self) -> int:
        """Total flit-hops across all recorded links."""
        return sum(r.flits for r in self.recorders.values())

    def per_link(self) -> dict[str, int]:
        """Snapshot of per-link BT counts."""
        return {name: rec.transitions for name, rec in self.recorders.items()}
