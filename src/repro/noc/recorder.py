"""Per-outport BT recording, exactly the Fig. 8 scheme.

Every recorded link keeps a ``Flit_pre`` register holding the bits of
the previous flit that crossed it; each traversal XORs the new flit
against the register and accumulates the popcount into the NoC-wide
sum.  Recording is measurement-only — the paper stresses that the flit
storage and summation are not part of the design overhead.

The ledger keeps *running* totals, updated by every
:meth:`LinkRecorder.record` call, so reading
:attr:`TransitionLedger.total_transitions` or
:attr:`TransitionLedger.total_flit_traversals` is O(1) instead of a
full sweep over all recorders — they are polled per drain loop in the
hot simulation paths.  Per-link snapshots (:meth:`per_link`) are
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only (layer inversion)
    from repro.noc.flit import Flit, Packet
    from repro.workloads.traces import TrafficTrace

__all__ = ["LinkRecorder", "TransitionLedger", "TraceRecorder"]


@dataclass
class LinkRecorder:
    """BT recorder for one physical link (one router outport).

    Attributes:
        name: link label, e.g. "R5.EAST" or "R3.LOCAL".
        previous: bits of the last flit that crossed ("Flit_pre");
            None before the first traversal.
        transitions: accumulated BT count on this link.
        flits: number of flits that crossed.
        ledger: owning ledger whose running totals this recorder
            feeds, if any (set by :meth:`TransitionLedger.recorder_for`).
    """

    name: str
    previous: int | None = None
    transitions: int = 0
    flits: int = 0
    ledger: "TransitionLedger | None" = field(
        default=None, repr=False, compare=False
    )

    def record(self, bits: int) -> int:
        """Account one flit traversal; returns the BTs it caused."""
        previous = self.previous
        # Inline popcount: bits are validated non-negative at flit
        # construction, and this runs once per flit hop.
        caused = 0 if previous is None else (previous ^ bits).bit_count()
        self.transitions += caused
        self.flits += 1
        self.previous = bits
        ledger = self.ledger
        if ledger is not None:
            ledger._total_transitions += caused
            ledger._total_flits += 1
        return caused


@dataclass
class TransitionLedger:
    """NoC-wide aggregation over all link recorders.

    Attributes:
        recorders: link-name -> recorder.
    """

    recorders: dict[str, LinkRecorder] = field(default_factory=dict)
    _total_transitions: int = field(default=0, repr=False)
    _total_flits: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        # Adopt recorders handed in at construction time so the running
        # totals stay consistent with their accumulated state.
        for rec in self.recorders.values():
            self.adopt(rec)

    def adopt(self, rec: LinkRecorder) -> LinkRecorder:
        """Register an existing recorder and fold in its history."""
        if rec.ledger is self:
            return rec
        if rec.ledger is not None:
            raise ValueError(
                f"recorder {rec.name!r} already belongs to another ledger"
            )
        rec.ledger = self
        self.recorders[rec.name] = rec
        self._total_transitions += rec.transitions
        self._total_flits += rec.flits
        return rec

    def recorder_for(self, name: str) -> LinkRecorder:
        """Get (or lazily create) the recorder for a link."""
        rec = self.recorders.get(name)
        if rec is None:
            rec = LinkRecorder(name=name, ledger=self)
            self.recorders[name] = rec
        return rec

    @property
    def total_transitions(self) -> int:
        """The "NoC Bit Transition Sum" of Fig. 8 — a running counter."""
        return self._total_transitions

    @property
    def total_flit_traversals(self) -> int:
        """Total flit-hops across all recorded links — a running counter."""
        return self._total_flits

    def per_link(self) -> dict[str, int]:
        """Snapshot of per-link BT counts."""
        return {name: rec.transitions for name, rec in self.recorders.items()}


class TraceRecorder:
    """Full-fidelity capture hook for trace record & replay.

    Attach one to :attr:`Network.trace_collector` before a run::

        network.trace_collector = TraceRecorder()
        ... run ...
        trace = network.trace_collector.finish(network.config)
        trace.save("run.trace.gz")

    Two event streams are captured:

    * per-link *hop* events — the wire image, traversal cycle, output
      VC, and owning packet of every flit that crossed a recorded link
      (the Fig. 8 measurement surface, in exact traversal order);
    * packet *injection* events — (cycle, src, dst, per-flit payloads)
      for every :meth:`Network.send_packet` call, which is precisely
      the schedule trace replay re-injects through a fresh network.

    Unlike the lighter :class:`repro.workloads.traces.TraceCollector`
    (wire images + cycles only), a finished TraceRecorder trace can be
    replayed *through* either network core, not just re-scored offline.
    """

    def __init__(self) -> None:
        # Parallel per-link lists, appended in traversal order.
        self._links: dict[str, list[int]] = {}
        self._cycles: dict[str, list[int]] = {}
        self._vcs: dict[str, list[int]] = {}
        self._packet_ids: dict[str, list[int]] = {}
        # (cycle, src, dst, payloads) injection events in send order.
        self._sends: list[tuple[int, int, int, tuple[int, ...]]] = []

    def record(
        self,
        link_name: str,
        bits: int,
        cycle: int,
        vc: int = 0,
        flit: "Flit | None" = None,
    ) -> None:
        """Network hook: one flit crossed ``link_name``."""
        links = self._links.get(link_name)
        if links is None:
            links = self._links[link_name] = []
            self._cycles[link_name] = []
            self._vcs[link_name] = []
            self._packet_ids[link_name] = []
        links.append(bits)
        self._cycles[link_name].append(cycle)
        self._vcs[link_name].append(vc)
        self._packet_ids[link_name].append(
            -1 if flit is None else flit.packet_id
        )

    def record_send(self, cycle: int, packet: "Packet") -> None:
        """Network hook: one packet was queued for injection."""
        self._sends.append(
            (
                cycle,
                packet.src,
                packet.dst,
                tuple(flit.payload for flit in packet.flits),
            )
        )

    def finish(self, config: Any) -> "TrafficTrace":
        """Freeze the capture into a replayable trace.

        Args:
            config: the network's :class:`NoCConfig` (recorded into the
                trace so replay can rebuild an identical mesh), or a
                plain link width in bits for config-less captures.
        """
        # Imported here: repro.noc must stay importable without the
        # workloads layer (which imports bits/ordering on top of it).
        from repro.workloads.traces import PacketEvent, TrafficTrace

        if isinstance(config, int):
            link_width, noc = config, None
        else:
            link_width, noc = config.link_width, config.to_dict()
        # Lists go straight to TrafficTrace.__post_init__, which wraps
        # each column in an array-backed WordArray — no tuple detour.
        return TrafficTrace(
            link_width=link_width,
            links=dict(self._links),
            cycles=dict(self._cycles),
            vcs=dict(self._vcs),
            packet_ids=dict(self._packet_ids),
            packets=tuple(
                PacketEvent(cycle=c, src=s, dst=d, payloads=p)
                for c, s, d, p in self._sends
            ),
            noc=noc,
        )
