"""Per-outport BT recording, exactly the Fig. 8 scheme.

Every recorded link keeps a ``Flit_pre`` register holding the bits of
the previous flit that crossed it; each traversal XORs the new flit
against the register and accumulates the popcount into the NoC-wide
sum.  Recording is measurement-only — the paper stresses that the flit
storage and summation are not part of the design overhead.

The ledger keeps *running* totals, updated by every
:meth:`LinkRecorder.record` call, so reading
:attr:`TransitionLedger.total_transitions` or
:attr:`TransitionLedger.total_flit_traversals` is O(1) instead of a
full sweep over all recorders — they are polled per drain loop in the
hot simulation paths.  Per-link snapshots (:meth:`per_link`) are
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LinkRecorder", "TransitionLedger"]


@dataclass
class LinkRecorder:
    """BT recorder for one physical link (one router outport).

    Attributes:
        name: link label, e.g. "R5.EAST" or "R3.LOCAL".
        previous: bits of the last flit that crossed ("Flit_pre");
            None before the first traversal.
        transitions: accumulated BT count on this link.
        flits: number of flits that crossed.
        ledger: owning ledger whose running totals this recorder
            feeds, if any (set by :meth:`TransitionLedger.recorder_for`).
    """

    name: str
    previous: int | None = None
    transitions: int = 0
    flits: int = 0
    ledger: "TransitionLedger | None" = field(
        default=None, repr=False, compare=False
    )

    def record(self, bits: int) -> int:
        """Account one flit traversal; returns the BTs it caused."""
        previous = self.previous
        # Inline popcount: bits are validated non-negative at flit
        # construction, and this runs once per flit hop.
        caused = 0 if previous is None else (previous ^ bits).bit_count()
        self.transitions += caused
        self.flits += 1
        self.previous = bits
        ledger = self.ledger
        if ledger is not None:
            ledger._total_transitions += caused
            ledger._total_flits += 1
        return caused


@dataclass
class TransitionLedger:
    """NoC-wide aggregation over all link recorders.

    Attributes:
        recorders: link-name -> recorder.
    """

    recorders: dict[str, LinkRecorder] = field(default_factory=dict)
    _total_transitions: int = field(default=0, repr=False)
    _total_flits: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        # Adopt recorders handed in at construction time so the running
        # totals stay consistent with their accumulated state.
        for rec in self.recorders.values():
            self.adopt(rec)

    def adopt(self, rec: LinkRecorder) -> LinkRecorder:
        """Register an existing recorder and fold in its history."""
        if rec.ledger is self:
            return rec
        if rec.ledger is not None:
            raise ValueError(
                f"recorder {rec.name!r} already belongs to another ledger"
            )
        rec.ledger = self
        self.recorders[rec.name] = rec
        self._total_transitions += rec.transitions
        self._total_flits += rec.flits
        return rec

    def recorder_for(self, name: str) -> LinkRecorder:
        """Get (or lazily create) the recorder for a link."""
        rec = self.recorders.get(name)
        if rec is None:
            rec = LinkRecorder(name=name, ledger=self)
            self.recorders[name] = rec
        return rec

    @property
    def total_transitions(self) -> int:
        """The "NoC Bit Transition Sum" of Fig. 8 — a running counter."""
        return self._total_transitions

    @property
    def total_flit_traversals(self) -> int:
        """Total flit-hops across all recorded links — a running counter."""
        return self._total_flits

    def per_link(self) -> dict[str, int]:
        """Snapshot of per-link BT counts."""
        return {name: rec.transitions for name, rec in self.recorders.items()}
