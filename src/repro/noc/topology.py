"""2-D mesh topology helpers.

Node ids are row-major: ``node = y * width + x`` with x growing east
and y growing south, matching :mod:`repro.noc.routing`.
"""

from __future__ import annotations

from repro.noc.routing import Port

__all__ = [
    "node_id",
    "coordinates",
    "mesh_neighbors",
    "manhattan_distance",
    "inter_router_link_count",
]


def node_id(x: int, y: int, width: int) -> int:
    """Node id of mesh coordinate (x, y)."""
    if x < 0 or x >= width or y < 0:
        raise ValueError(f"coordinate ({x}, {y}) outside mesh of width {width}")
    return y * width + x


def coordinates(node: int, width: int) -> tuple[int, int]:
    """(x, y) of a node id."""
    if node < 0:
        raise ValueError(f"negative node id {node}")
    return node % width, node // width


def mesh_neighbors(width: int, height: int) -> dict[int, dict[Port, int]]:
    """Neighbour map of a width x height mesh.

    Returns:
        node -> {port -> neighbour node} for the ports that exist
        (edge routers have fewer neighbours).
    """
    if width <= 0 or height <= 0:
        raise ValueError(f"mesh dimensions must be positive, got {width}x{height}")
    neighbors: dict[int, dict[Port, int]] = {}
    for y in range(height):
        for x in range(width):
            node = node_id(x, y, width)
            links: dict[Port, int] = {}
            if y > 0:
                links[Port.NORTH] = node_id(x, y - 1, width)
            if y < height - 1:
                links[Port.SOUTH] = node_id(x, y + 1, width)
            if x > 0:
                links[Port.WEST] = node_id(x - 1, y, width)
            if x < width - 1:
                links[Port.EAST] = node_id(x + 1, y, width)
            neighbors[node] = links
    return neighbors


def manhattan_distance(a: int, b: int, width: int) -> int:
    """Hop count of the minimal route between two nodes."""
    ax, ay = coordinates(a, width)
    bx, by = coordinates(b, width)
    return abs(ax - bx) + abs(ay - by)


def inter_router_link_count(width: int, height: int) -> int:
    """Number of directed inter-router links in the mesh.

    An 8x8 mesh has 112 bidirectional channels (the paper's link-power
    estimate uses 112); each bidirectional channel is two directed
    links, and this function counts directed ones over 2 to match the
    paper's convention.
    """
    return (width - 1) * height + (height - 1) * width
