"""Network interface (NI): packet injection and ejection.

Each router's LOCAL port connects to one NI, which hosts either a PE or
a memory controller (Fig. 6).  The NI streams one packet at a time into
the router's local input VCs (rotating across VCs per packet) and
reassembles arriving flits into packets, handing completed packets to
an attached sink callback.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.noc.flit import Flit, Packet
from repro.noc.routing import Port

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.noc.router import Router

__all__ = ["NetworkInterface"]

PacketSink = Callable[[Packet, int], None]


class NetworkInterface:
    """Injection/ejection endpoint attached to one router."""

    def __init__(
        self,
        node_id: int,
        router: "Router",
        flits_per_cycle: int = 1,
    ) -> None:
        if flits_per_cycle <= 0:
            raise ValueError("flits_per_cycle must be positive")
        self.node_id = node_id
        self.router = router
        self.flits_per_cycle = flits_per_cycle
        self.tx_queue: deque[Packet] = deque()
        self.delivered: list[Packet] = []
        self.sink: PacketSink | None = None
        self._current: Packet | None = None
        self._next_flit = 0
        self._tx_vc = 0
        self._vc_rotor = 0
        self._rx_flits: dict[int, list[Flit]] = {}

    # -- injection ------------------------------------------------------

    def queue_packet(self, packet: Packet) -> None:
        """Enqueue a packet for injection (FIFO order)."""
        self.tx_queue.append(packet)

    @property
    def has_pending_tx(self) -> bool:
        """True while packets or flits still await injection."""
        return self._current is not None or bool(self.tx_queue)

    def try_inject(self, cycle: int) -> list[Flit]:
        """Inject up to ``flits_per_cycle`` flits; returns those injected.

        The event-driven network core iterates only NIs with pending
        traffic, keyed off :attr:`has_pending_tx`; this method is the
        sole path that can clear that flag.
        """
        injected: list[Flit] = []
        router = self.router
        budget = self.flits_per_cycle
        while len(injected) < budget:
            current = self._current
            if current is None:
                if not self.tx_queue:
                    break
                vc = self._pick_vc()
                if vc is None:
                    break
                current = self._current = self.tx_queue.popleft()
                current.created_cycle = cycle
                self._next_flit = 0
                self._tx_vc = vc
            if router.local_vc_space(self._tx_vc) <= 0:
                break
            flit = current.flits[self._next_flit]
            router.accept_flit(Port.LOCAL, self._tx_vc, flit)
            injected.append(flit)
            self._next_flit += 1
            if self._next_flit == len(current.flits):
                self._current = None
        return injected

    def _pick_vc(self) -> int | None:
        """Rotate across local VCs, requiring room for the head flit."""
        n_vcs = self.router.n_vcs
        for offset in range(n_vcs):
            vc = (self._vc_rotor + offset) % n_vcs
            if self.router.local_vc_space(vc) > 0:
                self._vc_rotor = (vc + 1) % n_vcs
                return vc
        return None

    # -- ejection --------------------------------------------------------

    def receive_flit(self, flit: Flit, packet: Packet | None, cycle: int) -> None:
        """Accept one ejected flit; completes the packet on its tail.

        Args:
            flit: the arriving flit.
            packet: the owning packet object (from the network's
                in-flight registry); required on the tail flit.
            cycle: current simulation cycle.
        """
        self._rx_flits.setdefault(flit.packet_id, []).append(flit)
        if not flit.is_tail:
            return
        flits = self._rx_flits.pop(flit.packet_id)
        if packet is None:
            raise ValueError(
                f"tail of packet {flit.packet_id} arrived without a "
                "registered packet object"
            )
        if len(flits) != len(packet.flits):
            raise ValueError(
                f"packet {packet.packet_id} delivered {len(flits)} of "
                f"{len(packet.flits)} flits"
            )
        packet.delivered_cycle = cycle
        self.delivered.append(packet)
        if self.sink is not None:
            self.sink(packet, cycle)
