"""Synthetic traffic patterns for standalone NoC evaluation.

The accelerator experiments exercise the NoC with DNN traffic; these
generators provide the standard synthetic patterns used to validate NoC
implementations (uniform random, transpose, bit-complement, hotspot),
with payload generators matching the BT study (random bits, real
weights, or all-zero control payloads).

Each generator yields (cycle, packet) injection events; the
:func:`run_synthetic` driver injects them on schedule and drains the
network, returning the usual statistics.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator
from dataclasses import dataclass, fields
from typing import Any

import numpy as np

from repro.noc.flit import Packet, make_packet
from repro.noc.network import Network, NoCConfig, NoCStats
from repro.noc.topology import coordinates, node_id

__all__ = [
    "TrafficPattern",
    "SyntheticTrafficConfig",
    "destination_for",
    "generate_traffic",
    "poisson_arrivals",
    "trace_arrivals",
    "drive_schedule",
    "drive_synthetic",
    "run_synthetic",
]


class TrafficPattern(enum.Enum):
    """Standard destination mappings."""

    UNIFORM_RANDOM = "uniform"
    TRANSPOSE = "transpose"
    BIT_COMPLEMENT = "complement"
    HOTSPOT = "hotspot"


@dataclass(frozen=True)
class SyntheticTrafficConfig:
    """Parameters of a synthetic run.

    Attributes:
        pattern: destination mapping.
        n_packets: total packets to inject.
        flits_per_packet: packet length.
        injection_window: packets are injected at uniformly random
            cycles in [0, injection_window).
        hotspot_node: destination for HOTSPOT (default: mesh centre).
        payload: "random" bits, "zero", or "counter" payload contents.
        seed: RNG seed.
    """

    pattern: TrafficPattern = TrafficPattern.UNIFORM_RANDOM
    n_packets: int = 100
    flits_per_packet: int = 4
    injection_window: int = 200
    hotspot_node: int | None = None
    payload: str = "random"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_packets <= 0 or self.flits_per_packet <= 0:
            raise ValueError("traffic volume must be positive")
        if self.payload not in ("random", "zero", "counter"):
            raise ValueError(f"unknown payload kind {self.payload!r}")

    # -- serialization ---------------------------------------------------
    #
    # The campaign engine hashes traffic configs into cache keys and
    # persists them in JSONL stores, so the dict form must be stable,
    # canonical (the pattern enum as its string value) and loss-free.

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; exact inverse of :meth:`from_dict`."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, TrafficPattern):
                value = value.value
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SyntheticTrafficConfig":
        """Rebuild a config from :meth:`to_dict` output (strict keys)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SyntheticTrafficConfig fields: {sorted(unknown)}"
            )
        kwargs = dict(data)
        if "pattern" in kwargs and not isinstance(
            kwargs["pattern"], TrafficPattern
        ):
            kwargs["pattern"] = TrafficPattern(kwargs["pattern"])
        return cls(**kwargs)


def destination_for(
    src: int,
    pattern: TrafficPattern,
    width: int,
    height: int,
    rng: np.random.Generator,
    hotspot_node: int | None = None,
) -> int:
    """Destination node for a source under a traffic pattern."""
    n_nodes = width * height
    if pattern is TrafficPattern.UNIFORM_RANDOM:
        return int(rng.integers(0, n_nodes))
    if pattern is TrafficPattern.TRANSPOSE:
        x, y = coordinates(src, width)
        if width != height:
            raise ValueError("transpose needs a square mesh")
        return node_id(y, x, width)
    if pattern is TrafficPattern.BIT_COMPLEMENT:
        return n_nodes - 1 - src
    if pattern is TrafficPattern.HOTSPOT:
        if hotspot_node is None:
            hotspot_node = node_id(width // 2, height // 2, width)
        return hotspot_node
    raise ValueError(f"unhandled pattern {pattern}")


def _payload_words(
    kind: str, link_width: int, rng: np.random.Generator, counter: int
) -> int:
    if kind == "zero":
        return 0
    if kind == "counter":
        return counter & ((1 << link_width) - 1)
    # random: draw link_width bits from full 64-bit chunks (an
    # exclusive high of 2**63 here once left bit 63 of every chunk
    # permanently zero, skewing random-payload BT numbers low).
    payload = 0
    for shift in range(0, link_width, 64):
        payload |= int(rng.integers(0, 2**64, dtype=np.uint64)) << shift
    return payload & ((1 << link_width) - 1)


def generate_traffic(
    config: SyntheticTrafficConfig, noc: NoCConfig
) -> Iterator[tuple[int, Packet]]:
    """Yield (injection_cycle, packet) events sorted by cycle."""
    rng = np.random.default_rng(config.seed)
    events = []
    for i in range(config.n_packets):
        src = int(rng.integers(0, noc.n_nodes))
        dst = destination_for(
            src,
            config.pattern,
            noc.width,
            noc.height,
            rng,
            config.hotspot_node,
        )
        # Stride must cover the packet length or counter payloads
        # collide across packets; clamped at 16 so golden traffic with
        # <=16 flits keeps its pinned byte-identical payload sequence.
        stride = max(16, config.flits_per_packet)
        payloads = [
            _payload_words(
                config.payload, noc.link_width, rng, i * stride + f
            )
            for f in range(config.flits_per_packet)
        ]
        cycle = int(rng.integers(0, config.injection_window))
        events.append((cycle, make_packet(src, dst, payloads, noc.link_width)))
    events.sort(key=lambda e: e[0])
    yield from events


def poisson_arrivals(
    rate: float, n: int, rng: np.random.Generator
) -> list[int]:
    """``n`` open-loop arrival cycles with exponential inter-arrivals.

    Gaps are drawn from Exp(1/rate) and rounded to whole cycles with a
    floor of one, so arrivals are strictly increasing and the process
    stays well defined at high rates.  Pre-generating the schedule
    (rather than sampling inside the simulation loop) keeps arrivals
    identical across the event and stepped NoC cores.  ``rate <= 0``
    or ``n <= 0`` yields no arrivals.
    """
    if rate <= 0 or n <= 0:
        return []
    cycle = 0
    arrivals = []
    for _ in range(n):
        cycle += max(1, int(round(rng.exponential(1.0 / rate))))
        arrivals.append(cycle)
    return arrivals


def trace_arrivals(inter_arrivals: list[int], n: int) -> list[int]:
    """``n`` arrival cycles from a recorded inter-arrival gap trace.

    The gap list is cycled if shorter than ``n`` (standard trace-replay
    semantics).  Gaps are clamped to at least one cycle.
    """
    if n <= 0 or not inter_arrivals:
        return []
    cycle = 0
    arrivals = []
    for i in range(n):
        cycle += max(1, int(inter_arrivals[i % len(inter_arrivals)]))
        arrivals.append(cycle)
    return arrivals


def drive_schedule(
    network: Network,
    events: list[tuple[int, Packet]],
    max_cycles: int = 500_000,
) -> Network:
    """Inject (cycle, packet) events on schedule and drain the network.

    The shared injection loop of synthetic traffic and trace replay:
    events must be sorted by cycle (recorded schedules are — the
    network clock is monotonic).  Returns the drained network.
    """
    idx = 0
    n_events = len(events)
    event = network.event_core
    while idx < n_events or network.has_work:
        if event and network.is_idle:
            # Idle gap between scheduled injections (or before a
            # multi-cycle link arrival matures): jump the clock to the
            # next event instead of stepping empty cycles.  Clamped to
            # max_cycles so the timeout fires at the same cycle as a
            # stepped run.
            target = max_cycles
            if idx < n_events:
                target = min(target, events[idx][0])
            arrival = network.next_internal_event()
            if arrival is not None:
                target = min(target, arrival)
            network.fast_forward(target)
        while idx < n_events and events[idx][0] <= network.cycle:
            network.send_packet(events[idx][1])
            idx += 1
        if network.cycle >= max_cycles:
            raise RuntimeError(
                f"scheduled run exceeded {max_cycles} cycles"
            )
        network.step()
    return network


def drive_synthetic(
    config: SyntheticTrafficConfig,
    noc_config: NoCConfig,
    max_cycles: int = 500_000,
    trace_collector: Any = None,
) -> Network:
    """Drive a synthetic workload through a fresh network.

    Returns the drained :class:`Network` so callers can read both the
    aggregate ``stats`` and the per-link ``ledger`` (the campaign
    engine's per-link pivots need the latter).  ``trace_collector``
    optionally captures the run (see :mod:`repro.workloads.traces`).
    """
    network = Network(noc_config)
    network.trace_collector = trace_collector
    pending = list(generate_traffic(config, noc_config))
    return drive_schedule(network, pending, max_cycles=max_cycles)


def run_synthetic(
    config: SyntheticTrafficConfig,
    noc_config: NoCConfig,
    max_cycles: int = 500_000,
) -> NoCStats:
    """Stats-only convenience wrapper around :func:`drive_synthetic`."""
    return drive_synthetic(config, noc_config, max_cycles).stats
