"""Wormhole router with virtual channels and credit-based flow control.

Models the paper's NoC router configuration (Sec. V-B): X-Y routing,
4 virtual channels per input port with a 4-flit buffer each.  Each
cycle a router performs, in order:

1. **route computation** for head flits that have none,
2. **VC allocation** — head flits claim a free downstream VC through a
   per-outport round-robin arbiter,
3. **switch allocation + traversal** — each output port grants one
   (input port, VC) requester with buffer space downstream; the winning
   flit crosses the link (where the Fig. 8 recorder counts its BTs).

Tail flits release their VC on departure; credits flow back one cycle
later.  The allocation state (``out_port`` / ``out_vc``) always refers
to the packet at the head of a VC FIFO, which makes back-to-back
packets in one buffer safe.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.noc.arbiter import RoundRobinArbiter
from repro.noc.flit import Flit
from repro.noc.routing import Port, RouteFn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.noc.network import Network

__all__ = ["VCState", "Router", "ProtocolError"]


class ProtocolError(RuntimeError):
    """Raised when the wormhole protocol invariants are violated."""


@dataclass
class VCState:
    """One virtual-channel input buffer and its head-packet state.

    Attributes:
        capacity: buffer depth in flits (paper: 4).
        fifo: buffered flits, head at index 0.
        out_port: route of the packet currently at the head, if known.
        out_vc: downstream VC allocated to that packet, if any.
    """

    capacity: int
    fifo: deque[Flit] = field(default_factory=deque)
    out_port: Port | None = None
    out_vc: int | None = None

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.fifo)


class Router:
    """One mesh router: 5 ports x ``n_vcs`` input VCs."""

    def __init__(
        self,
        node_id: int,
        mesh_width: int,
        n_vcs: int,
        vc_depth: int,
        route_fn: RouteFn,
    ) -> None:
        self.node_id = node_id
        self.mesh_width = mesh_width
        self.n_vcs = n_vcs
        self.vc_depth = vc_depth
        self.route_fn = route_fn
        self.inputs: dict[Port, list[VCState]] = {
            port: [VCState(vc_depth) for _ in range(n_vcs)] for port in Port
        }
        # Downstream VC bookkeeping per output port: which (in_port, vc)
        # holds each VC, and how many free downstream buffer slots remain.
        self.out_holder: dict[Port, list[tuple[Port, int] | None]] = {
            port: [None] * n_vcs for port in Port
        }
        self.credits: dict[Port, list[int]] = {
            port: [vc_depth] * n_vcs for port in Port if port is not Port.LOCAL
        }
        n_requesters = len(Port) * n_vcs
        self._vc_arbiters = {
            port: RoundRobinArbiter(n_requesters) for port in Port
        }
        self._sw_arbiters = {
            port: RoundRobinArbiter(n_requesters) for port in Port
        }
        self.buffered_flits = 0

    # -- cycle phases -------------------------------------------------

    def allocate(self) -> None:
        """Phase 1: route computation and VC allocation."""
        requests: dict[Port, list[int]] = {}
        for in_port, vcs in self.inputs.items():
            for vc_idx, state in enumerate(vcs):
                if not state.fifo:
                    continue
                head = state.fifo[0]
                if state.out_port is None:
                    if not head.flit_type.is_head:
                        raise ProtocolError(
                            f"router {self.node_id}: body/tail flit of packet "
                            f"{head.packet_id} at VC head without a route"
                        )
                    state.out_port = self.route_fn(
                        self.node_id, head.dst, self.mesh_width
                    )
                if state.out_vc is None:
                    requests.setdefault(state.out_port, []).append(
                        in_port.value * self.n_vcs + vc_idx
                    )
        for out_port, requesters in requests.items():
            self._grant_vcs(out_port, requesters)

    def _grant_vcs(self, out_port: Port, requesters: list[int]) -> None:
        """Round-robin grant of free downstream VCs to head packets."""
        if out_port is Port.LOCAL:
            # Ejection: the NI sinks flits unconditionally, so every
            # requester can proceed on a nominal VC 0.
            for req in requesters:
                in_port, vc_idx = Port(req // self.n_vcs), req % self.n_vcs
                self.inputs[in_port][vc_idx].out_vc = 0
            return
        free = [
            v
            for v in range(self.n_vcs)
            if self.out_holder[out_port][v] is None
        ]
        if not free:
            return
        n_requesters = len(Port) * self.n_vcs
        flags = [False] * n_requesters
        for req in requesters:
            flags[req] = True
        arbiter = self._vc_arbiters[out_port]
        for out_vc in free:
            winner = arbiter.pick(flags)
            if winner is None:
                break
            flags[winner] = False
            in_port, vc_idx = Port(winner // self.n_vcs), winner % self.n_vcs
            state = self.inputs[in_port][vc_idx]
            state.out_vc = out_vc
            self.out_holder[out_port][out_vc] = (in_port, vc_idx)

    def switch_traversal(self, network: "Network") -> None:
        """Phase 2: switch allocation and link traversal."""
        # Gather eligible (in_port, vc) requesters per output port once.
        requests: dict[Port, list[int]] = {}
        for in_port, vcs in self.inputs.items():
            for vc_idx, state in enumerate(vcs):
                if not state.fifo or state.out_vc is None:
                    continue
                out_port = state.out_port
                if out_port is None:
                    continue
                if (
                    out_port is not Port.LOCAL
                    and self.credits[out_port][state.out_vc] <= 0
                ):
                    continue
                requests.setdefault(out_port, []).append(
                    in_port.value * self.n_vcs + vc_idx
                )
        consumed_inports: set[Port] = set()
        n_requesters = len(Port) * self.n_vcs
        for out_port, requesters in requests.items():
            flags = [False] * n_requesters
            any_request = False
            for req in requesters:
                if Port(req // self.n_vcs) in consumed_inports:
                    continue
                flags[req] = True
                any_request = True
            if not any_request:
                continue
            winner = self._sw_arbiters[out_port].pick(flags)
            if winner is None:
                continue
            in_port, vc_idx = Port(winner // self.n_vcs), winner % self.n_vcs
            self._traverse(network, in_port, vc_idx, out_port)
            consumed_inports.add(in_port)

    def _traverse(
        self, network: "Network", in_port: Port, vc_idx: int, out_port: Port
    ) -> None:
        """Move the winning flit across ``out_port``'s link."""
        state = self.inputs[in_port][vc_idx]
        flit = state.fifo.popleft()
        self.buffered_flits -= 1
        out_vc = state.out_vc
        if out_vc is None:
            raise ProtocolError("traversal without an allocated VC")
        if out_port is not Port.LOCAL:
            self.credits[out_port][out_vc] -= 1
            if self.credits[out_port][out_vc] < 0:
                raise ProtocolError(
                    f"router {self.node_id} port {out_port.name} "
                    f"VC {out_vc}: credit underflow"
                )
        network.transmit(self, out_port, out_vc, flit)
        if in_port is not Port.LOCAL:
            network.queue_credit(self, in_port, vc_idx)
        if flit.flit_type.is_tail:
            if out_port is not Port.LOCAL:
                self.out_holder[out_port][out_vc] = None
            state.out_port = None
            state.out_vc = None

    # -- buffer interface (used by the network and the NIs) ------------

    def accept_flit(self, in_port: Port, vc_idx: int, flit: Flit) -> None:
        """Append an arriving flit to an input VC buffer."""
        state = self.inputs[in_port][vc_idx]
        if len(state.fifo) >= state.capacity:
            raise ProtocolError(
                f"router {self.node_id} port {in_port.name} VC {vc_idx}: "
                "buffer overflow (credit protocol violated)"
            )
        state.fifo.append(flit)
        self.buffered_flits += 1

    def local_vc_space(self, vc_idx: int) -> int:
        """Free slots in the local (injection) input VC buffer."""
        return self.inputs[Port.LOCAL][vc_idx].free_slots

    @property
    def is_active(self) -> bool:
        """True when any input VC holds flits."""
        return self.buffered_flits > 0
