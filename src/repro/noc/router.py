"""Wormhole router with virtual channels and credit-based flow control.

Models the paper's NoC router configuration (Sec. V-B): X-Y routing,
4 virtual channels per input port with a 4-flit buffer each.  Each
cycle a router performs, in order:

1. **route computation** for head flits that have none,
2. **VC allocation** — head flits claim a free downstream VC through a
   per-outport round-robin arbiter,
3. **switch allocation + traversal** — each output port grants one
   (input port, VC) requester with buffer space downstream; the winning
   flit crosses the link (where the Fig. 8 recorder counts its BTs).

Tail flits release their VC on departure; credits flow back one cycle
later.  The allocation state (``out_port`` / ``out_vc``) always refers
to the packet at the head of a VC FIFO, which makes back-to-back
packets in one buffer safe.

Two equivalent implementations of the per-cycle phases exist:

* :meth:`Router.allocate` + :meth:`Router.switch_traversal` — the
  reference pair, which scans every input VC.  The stepped network
  core and the unit tests use these.
* :meth:`Router.allocate_and_traverse` — the event-core fast path,
  which visits only the tracked occupied / allocation-pending VCs and
  arbitrates without building flag vectors.  Bit-identical outcomes
  are enforced by ``tests/test_noc_eventcore.py``.

Both paths share :meth:`accept_flit` / :meth:`_traverse`, which keep
the occupancy tracking consistent, so a router works under either
network core at any time.  Input VC buffers, arbiters and downstream
holder state materialise on a router's first flit — mesh-scaling
campaigns construct thousands of routers of which the quiet ones never
buffer anything.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.noc.arbiter import RoundRobinArbiter
from repro.noc.flit import Flit
from repro.noc.routing import Port, RouteFn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.noc.network import Network

__all__ = ["VCState", "Router", "ProtocolError"]

_LOCAL = Port.LOCAL
_N_PORTS = len(Port)

# Flat-slot decode tables shared by every router with the same VC
# count: slot index -> (port, vc).
_SLOT_TABLES: dict[int, tuple[list[Port], list[int]]] = {}


def _slot_tables(n_vcs: int) -> tuple[list[Port], list[int]]:
    tables = _SLOT_TABLES.get(n_vcs)
    if tables is None:
        tables = (
            [port for port in Port for _ in range(n_vcs)],
            [vc for _ in Port for vc in range(n_vcs)],
        )
        _SLOT_TABLES[n_vcs] = tables
    return tables


class ProtocolError(RuntimeError):
    """Raised when the wormhole protocol invariants are violated."""


class VCState:
    """One virtual-channel input buffer and its head-packet state.

    Attributes:
        capacity: buffer depth in flits (paper: 4).
        fifo: buffered flits, head at index 0.
        out_port: route of the packet currently at the head, if known.
        out_vc: downstream VC allocated to that packet, if any.
    """

    __slots__ = ("capacity", "fifo", "out_port", "out_vc")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.fifo: deque[Flit] = deque()
        self.out_port: Port | None = None
        self.out_vc: int | None = None

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.fifo)


class Router:
    """One mesh router: 5 ports x ``n_vcs`` input VCs."""

    def __init__(
        self,
        node_id: int,
        mesh_width: int,
        n_vcs: int,
        vc_depth: int,
        route_fn: RouteFn,
    ) -> None:
        self.node_id = node_id
        self.mesh_width = mesh_width
        self.n_vcs = n_vcs
        self.vc_depth = vc_depth
        self.route_fn = route_fn
        # Flat slots indexed by ``port * n_vcs + vc`` — the requester
        # id used by the arbiters — with `inputs` exposing the same
        # VCState objects per port.  Built lazily by _materialize().
        self._slots: list[VCState] | None = None
        self._inputs: dict[Port, list[VCState]] | None = None
        self._out_holder: list[list[tuple[Port, int] | None]] | None = None
        self._vc_arbiters: list[RoundRobinArbiter] | None = None
        self._sw_arbiters: list[RoundRobinArbiter] | None = None
        self._slot_port, self._slot_vc = _slot_tables(n_vcs)
        # Occupancy tracking for the event-core fast path: which flat
        # slots hold flits, and which of those still await a VC grant.
        self._occupied: set[int] = set()
        self._needs_alloc: set[int] = set()
        # Credit counters per output port (indexed by port value; LOCAL
        # has no credit loop).  Eager: the network wires neighbouring
        # routers' credit lists together at construction time.
        self.credits: list[list[int] | None] = [None] + [
            [vc_depth] * n_vcs for _ in range(_N_PORTS - 1)
        ]
        self.buffered_flits = 0
        # Observability counters.  Plain ints bumped on paths both
        # cycle-loop cores share (or at behaviourally identical points
        # of their divergent paths), so the counts are core-invariant:
        #   peak_occupancy - high-water mark of buffered flits,
        #   vc_grants     - downstream VC allocations granted,
        #   arb_conflicts - losing requesters in switch arbitration.
        self.peak_occupancy = 0
        self.vc_grants = 0
        self.arb_conflicts = 0

    # -- lazy state materialisation ------------------------------------

    def _materialize(self) -> list[VCState]:
        """Build the VC buffers and allocation state on first use."""
        n_vcs = self.n_vcs
        slots = [VCState(self.vc_depth) for _ in range(_N_PORTS * n_vcs)]
        self._slots = slots
        self._inputs = {
            port: slots[port * n_vcs:(port + 1) * n_vcs] for port in Port
        }
        self._out_holder = [[None] * n_vcs for _ in range(_N_PORTS)]
        n_slots = _N_PORTS * n_vcs
        self._vc_arbiters = [
            RoundRobinArbiter(n_slots) for _ in range(_N_PORTS)
        ]
        self._sw_arbiters = [
            RoundRobinArbiter(n_slots) for _ in range(_N_PORTS)
        ]
        return slots

    @property
    def inputs(self) -> dict[Port, list[VCState]]:
        """Per-port input VC states (shared objects with the flat view)."""
        if self._inputs is None:
            self._materialize()
        return self._inputs

    @property
    def out_holder(self) -> list[list[tuple[Port, int] | None]]:
        """Per-outport downstream VC holders (indexed by port value)."""
        if self._out_holder is None:
            self._materialize()
        return self._out_holder

    # -- cycle phases (reference pair) ---------------------------------

    def allocate(self) -> None:
        """Phase 1: route computation and VC allocation."""
        requests: dict[Port, list[int]] = {}
        for in_port, vcs in self.inputs.items():
            for vc_idx, state in enumerate(vcs):
                if not state.fifo:
                    continue
                head = state.fifo[0]
                if state.out_port is None:
                    if not head.is_head:
                        raise ProtocolError(
                            f"router {self.node_id}: body/tail flit of packet "
                            f"{head.packet_id} at VC head without a route"
                        )
                    state.out_port = self.route_fn(
                        self.node_id, head.dst, self.mesh_width
                    )
                if state.out_vc is None:
                    requests.setdefault(state.out_port, []).append(
                        in_port.value * self.n_vcs + vc_idx
                    )
        for out_port, requesters in requests.items():
            self._grant_vcs(out_port, requesters)

    def _grant_vcs(self, out_port: Port, requesters: list[int]) -> None:
        """Round-robin grant of free downstream VCs to head packets."""
        if out_port is Port.LOCAL:
            # Ejection: the NI sinks flits unconditionally, so every
            # requester can proceed on a nominal VC 0.
            for req in requesters:
                in_port, vc_idx = Port(req // self.n_vcs), req % self.n_vcs
                self.inputs[in_port][vc_idx].out_vc = 0
                self._needs_alloc.discard(req)
            self.vc_grants += len(requesters)
            return
        holders = self.out_holder[out_port]
        free = [v for v in range(self.n_vcs) if holders[v] is None]
        if not free:
            return
        n_requesters = _N_PORTS * self.n_vcs
        flags = [False] * n_requesters
        for req in requesters:
            flags[req] = True
        arbiter = self._vc_arbiters[out_port]
        for out_vc in free:
            winner = arbiter.pick(flags)
            if winner is None:
                break
            flags[winner] = False
            in_port, vc_idx = Port(winner // self.n_vcs), winner % self.n_vcs
            state = self.inputs[in_port][vc_idx]
            state.out_vc = out_vc
            holders[out_vc] = (in_port, vc_idx)
            self._needs_alloc.discard(winner)
            self.vc_grants += 1

    def switch_traversal(self, network: "Network") -> None:
        """Phase 2: switch allocation and link traversal."""
        # Gather eligible (in_port, vc) requesters per output port once.
        requests: dict[Port, list[int]] = {}
        for in_port, vcs in self.inputs.items():
            for vc_idx, state in enumerate(vcs):
                if not state.fifo or state.out_vc is None:
                    continue
                out_port = state.out_port
                if out_port is None:
                    continue
                if (
                    out_port is not Port.LOCAL
                    and self.credits[out_port][state.out_vc] <= 0
                ):
                    continue
                requests.setdefault(out_port, []).append(
                    in_port.value * self.n_vcs + vc_idx
                )
        consumed_inports: set[Port] = set()
        n_requesters = _N_PORTS * self.n_vcs
        for out_port, requesters in requests.items():
            flags = [False] * n_requesters
            n_contenders = 0
            for req in requesters:
                if Port(req // self.n_vcs) in consumed_inports:
                    continue
                flags[req] = True
                n_contenders += 1
            if not n_contenders:
                continue
            if n_contenders > 1:
                self.arb_conflicts += n_contenders - 1
            winner = self._sw_arbiters[out_port].pick(flags)
            if winner is None:
                continue
            self._traverse(network, winner, out_port)
            consumed_inports.add(Port(winner // self.n_vcs))

    # -- cycle phases (event-core fast path) ---------------------------

    def allocate_and_traverse(self, network: "Network") -> None:
        """Both phases for one cycle, visiting only tracked VCs.

        Behaviourally identical to :meth:`allocate` followed by
        :meth:`switch_traversal`.  Merging the phases per router is
        safe because a router's phases only read and write its own
        state plus the network's end-of-cycle commit queues, so phase
        ordering across distinct routers cannot be observed.
        """
        slots = self._slots
        slot_port = self._slot_port
        needs = self._needs_alloc
        occupied = self._occupied
        if len(occupied) == 1 and (not needs or needs == occupied):
            # Streaming fast path: a single occupied VC is the only
            # possible winner of every arbitration it enters, so skip
            # the request grouping of the general path entirely.
            (flat,) = occupied
            state = slots[flat]
            if needs:
                # Phase 1 for the lone requester — identical to the
                # general path with a single-entry request group.
                head = state.fifo[0]
                out_port = state.out_port
                if out_port is None:
                    if not head.is_head:
                        raise ProtocolError(
                            f"router {self.node_id}: body/tail flit of "
                            f"packet {head.packet_id} at VC head without "
                            "a route"
                        )
                    out_port = self.route_fn(
                        self.node_id, head.dst, self.mesh_width
                    )
                    state.out_port = out_port
                if out_port is _LOCAL:
                    state.out_vc = 0
                    needs.discard(flat)
                    self.vc_grants += 1
                else:
                    self._grant_vcs_fast(out_port, [flat])
            out_vc = state.out_vc
            if out_vc is None:
                return
            out_port = state.out_port
            if out_port is None:
                return
            if out_port is not _LOCAL and self.credits[out_port][out_vc] <= 0:
                return
            # State update identical to pick_indices([flat]).
            self._sw_arbiters[out_port]._last_winner = flat
            self._traverse(network, flat, out_port)
            return
        if needs:
            requests: dict[Port, list[int]] = {}
            for flat in sorted(needs):
                state = slots[flat]
                head = state.fifo[0]
                out_port = state.out_port
                if out_port is None:
                    if not head.is_head:
                        raise ProtocolError(
                            f"router {self.node_id}: body/tail flit of packet "
                            f"{head.packet_id} at VC head without a route"
                        )
                    out_port = self.route_fn(
                        self.node_id, head.dst, self.mesh_width
                    )
                    state.out_port = out_port
                requests.setdefault(out_port, []).append(flat)
            for out_port, reqs in requests.items():
                if out_port is _LOCAL:
                    for flat in reqs:
                        slots[flat].out_vc = 0
                        needs.discard(flat)
                    self.vc_grants += len(reqs)
                else:
                    self._grant_vcs_fast(out_port, reqs)
        if not occupied:
            return
        credits = self.credits
        sendable: dict[Port, list[int]] | None = None
        for flat in sorted(occupied):
            state = slots[flat]
            out_vc = state.out_vc
            if out_vc is None:
                continue
            out_port = state.out_port
            if out_port is None:
                continue
            if out_port is not _LOCAL and credits[out_port][out_vc] <= 0:
                continue
            if sendable is None:
                sendable = {out_port: [flat]}
            else:
                sendable.setdefault(out_port, []).append(flat)
        if sendable is None:
            return
        consumed: set[Port] | None = None
        for out_port, reqs in sendable.items():
            if consumed:
                reqs = [f for f in reqs if slot_port[f] not in consumed]
                if not reqs:
                    continue
            if len(reqs) > 1:
                self.arb_conflicts += len(reqs) - 1
            winner = self._sw_arbiters[out_port].pick_indices(reqs)
            self._traverse(network, winner, out_port)
            in_port = slot_port[winner]
            if consumed is None:
                consumed = {in_port}
            else:
                consumed.add(in_port)

    def _grant_vcs_fast(self, out_port: Port, reqs: list[int]) -> None:
        """:meth:`_grant_vcs` over requester indices, no flag vector."""
        holders = self._out_holder[out_port]
        free = [v for v in range(self.n_vcs) if holders[v] is None]
        if not free:
            return
        arbiter = self._vc_arbiters[out_port]
        needs = self._needs_alloc
        slots = self._slots
        for out_vc in free:
            if not reqs:
                break
            winner = arbiter.pick_indices(reqs)
            reqs.remove(winner)
            state = slots[winner]
            state.out_vc = out_vc
            holders[out_vc] = (
                self._slot_port[winner],
                self._slot_vc[winner],
            )
            needs.discard(winner)
            self.vc_grants += 1

    def _traverse(
        self, network: "Network", flat: int, out_port: Port
    ) -> None:
        """Move the winning flit of slot ``flat`` across ``out_port``."""
        state = self._slots[flat]
        flit = state.fifo.popleft()
        self.buffered_flits -= 1
        if not state.fifo:
            self._occupied.discard(flat)
        out_vc = state.out_vc
        if out_vc is None:
            raise ProtocolError("traversal without an allocated VC")
        if out_port is not _LOCAL:
            port_credits = self.credits[out_port]
            port_credits[out_vc] -= 1
            if port_credits[out_vc] < 0:
                raise ProtocolError(
                    f"router {self.node_id} port {out_port.name} "
                    f"VC {out_vc}: credit underflow"
                )
        network.transmit(self, out_port, out_vc, flit)
        n_vcs = self.n_vcs
        if flat >= n_vcs:  # non-LOCAL input port: return the credit
            network._queue_credit(
                self.node_id, flat // n_vcs, flat % n_vcs
            )
        if flit.is_tail:
            if out_port is not _LOCAL:
                self._out_holder[out_port][out_vc] = None
            state.out_port = None
            state.out_vc = None
            if state.fifo:
                self._needs_alloc.add(flat)

    # -- buffer interface (used by the network and the NIs) ------------

    def accept_flit(self, in_port: Port, vc_idx: int, flit: Flit) -> None:
        """Append an arriving flit to an input VC buffer."""
        self._accept_flat(in_port * self.n_vcs + vc_idx, flit)

    def _accept_flat(self, flat: int, flit: Flit) -> None:
        """:meth:`accept_flit` by flat slot index."""
        slots = self._slots
        if slots is None:
            slots = self._materialize()
        state = slots[flat]
        if len(state.fifo) >= state.capacity:
            raise ProtocolError(
                f"router {self.node_id} port {self._slot_port[flat].name} "
                f"VC {self._slot_vc[flat]}: "
                "buffer overflow (credit protocol violated)"
            )
        state.fifo.append(flit)
        self.buffered_flits += 1
        if self.buffered_flits > self.peak_occupancy:
            self.peak_occupancy = self.buffered_flits
        self._occupied.add(flat)
        if state.out_vc is None:
            self._needs_alloc.add(flat)

    def local_vc_space(self, vc_idx: int) -> int:
        """Free slots in the local (injection) input VC buffer."""
        slots = self._slots
        if slots is None:
            slots = self._materialize()
        return slots[vc_idx].free_slots

    @property
    def is_active(self) -> bool:
        """True when any input VC holds flits."""
        return self.buffered_flits > 0
