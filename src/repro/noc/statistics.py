"""Post-run NoC analysis: per-link loads, BT heat maps, hop profiles.

NocDAS (Fig. 7) emits bit transitions, inference latency and packet
traffic traces; this module provides the analysis layer over our
equivalents — turning a finished :class:`~repro.noc.network.Network`
into per-link tables, per-router aggregates and text heat maps that
examples and benches can render.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.noc.network import Network
from repro.noc.routing import Port
from repro.noc.topology import coordinates

__all__ = ["LinkLoad", "link_loads", "router_heatmap", "render_heatmap"]


@dataclass(frozen=True)
class LinkLoad:
    """Traffic and BT totals of one recorded link.

    Attributes:
        name: link label ("R5.EAST").
        router: source router id.
        port: output port.
        flits: flit traversals.
        transitions: accumulated BTs.
    """

    name: str
    router: int
    port: Port
    flits: int
    transitions: int

    @property
    def transitions_per_flit(self) -> float:
        if self.flits == 0:
            return 0.0
        return self.transitions / self.flits


def link_loads(network: Network) -> list[LinkLoad]:
    """Per-link loads of a finished run, busiest first."""
    loads = []
    for name, recorder in network.ledger.recorders.items():
        if not name.startswith("R"):
            continue  # NI injection recorders are not router outports
        router_str, port_str = name[1:].split(".")
        loads.append(
            LinkLoad(
                name=name,
                router=int(router_str),
                port=Port[port_str],
                flits=recorder.flits,
                transitions=recorder.transitions,
            )
        )
    loads.sort(key=lambda l: -l.transitions)
    return loads


def router_heatmap(network: Network, metric: str = "transitions") -> np.ndarray:
    """Aggregate a per-link metric onto the router grid.

    Args:
        network: a (finished) network.
        metric: "transitions" or "flits".

    Returns:
        shape ``(height, width)`` array: each router's outport totals.
    """
    if metric not in ("transitions", "flits"):
        raise ValueError(f"unknown metric {metric!r}")
    width = network.config.width
    height = network.config.height
    grid = np.zeros((height, width), dtype=np.int64)
    for load in link_loads(network):
        x, y = coordinates(load.router, width)
        grid[y, x] += getattr(load, metric)
    return grid


_BAR_WIDTH = 9


def _bar(value: int, peak: int) -> str:
    """Fixed-width bar cell: "-" for zero, >=1 "#" for any nonzero.

    Every cell is padded to ``_BAR_WIDTH`` so columns stay aligned, and
    small nonzero values are floored to one "#" instead of rounding to
    an empty string that reads like a missing cell.
    """
    if not value:
        return "-".ljust(_BAR_WIDTH)
    hashes = max(1, round(_BAR_WIDTH * value / peak))
    return ("#" * hashes).ljust(_BAR_WIDTH)


def render_heatmap(grid: np.ndarray, title: str) -> str:
    """Render a router-grid metric as an aligned text block."""
    lines = [title]
    peak = max(1, int(grid.max()))
    for row in grid:
        cells = " ".join(f"{int(v):>10d}" for v in row)
        bars = " ".join(_bar(int(v), peak) for v in row)
        lines.append(cells + "    | " + bars.rstrip())
    return "\n".join(lines)
