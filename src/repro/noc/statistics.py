"""Post-run NoC analysis: per-link loads, BT heat maps, hop profiles.

NocDAS (Fig. 7) emits bit transitions, inference latency and packet
traffic traces; this module provides the analysis layer over our
equivalents — turning a finished :class:`~repro.noc.network.Network`
into per-link tables, per-router aggregates and text heat maps that
examples and benches can render.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.noc.network import Network
from repro.noc.routing import Port
from repro.noc.topology import coordinates

__all__ = ["LinkLoad", "link_loads", "router_heatmap", "render_heatmap"]


@dataclass(frozen=True)
class LinkLoad:
    """Traffic and BT totals of one recorded link.

    Attributes:
        name: link label ("R5.EAST").
        router: source router id.
        port: output port.
        flits: flit traversals.
        transitions: accumulated BTs.
    """

    name: str
    router: int
    port: Port
    flits: int
    transitions: int

    @property
    def transitions_per_flit(self) -> float:
        if self.flits == 0:
            return 0.0
        return self.transitions / self.flits


def link_loads(network: Network) -> list[LinkLoad]:
    """Per-link loads of a finished run, busiest first."""
    loads = []
    for name, recorder in network.ledger.recorders.items():
        if not name.startswith("R"):
            continue  # NI injection recorders are not router outports
        router_str, port_str = name[1:].split(".")
        loads.append(
            LinkLoad(
                name=name,
                router=int(router_str),
                port=Port[port_str],
                flits=recorder.flits,
                transitions=recorder.transitions,
            )
        )
    loads.sort(key=lambda l: -l.transitions)
    return loads


def router_heatmap(network: Network, metric: str = "transitions") -> np.ndarray:
    """Aggregate a per-link metric onto the router grid.

    Args:
        network: a (finished) network.
        metric: "transitions" or "flits".

    Returns:
        shape ``(height, width)`` array: each router's outport totals.
    """
    if metric not in ("transitions", "flits"):
        raise ValueError(f"unknown metric {metric!r}")
    width = network.config.width
    height = network.config.height
    grid = np.zeros((height, width), dtype=np.int64)
    for load in link_loads(network):
        x, y = coordinates(load.router, width)
        grid[y, x] += getattr(load, metric)
    return grid


def render_heatmap(grid: np.ndarray, title: str) -> str:
    """Render a router-grid metric as an aligned text block."""
    lines = [title]
    peak = max(1, int(grid.max()))
    for row in grid:
        cells = " ".join(f"{int(v):>10d}" for v in row)
        bars = " ".join(
            "#" * max(0, round(9 * int(v) / peak)) + "." * 0
            if v else "-"
            for v in row
        )
        lines.append(cells + "    | " + bars)
    return "\n".join(lines)
