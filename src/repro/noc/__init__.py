"""Cycle-accurate NoC simulator: mesh, wormhole routers, VCs, BT recording."""

from repro.noc.arbiter import RoundRobinArbiter
from repro.noc.flit import Flit, FlitType, Packet, make_packet
from repro.noc.interface import NetworkInterface
from repro.noc.network import (
    CORES,
    Network,
    NoCConfig,
    NoCStats,
    SimulationTimeout,
    default_core,
    network_core,
    set_default_core,
)
from repro.noc.recorder import (
    LinkRecorder,
    TraceRecorder,
    TransitionLedger,
)
from repro.noc.router import ProtocolError, Router, VCState
from repro.noc.statistics import (
    LinkLoad,
    link_loads,
    render_heatmap,
    router_heatmap,
)
from repro.noc.traffic import (
    SyntheticTrafficConfig,
    TrafficPattern,
    drive_schedule,
    drive_synthetic,
    generate_traffic,
    run_synthetic,
)
from repro.noc.routing import OPPOSITE, Port, routing_by_name, xy_route, yx_route
from repro.noc.topology import (
    coordinates,
    inter_router_link_count,
    manhattan_distance,
    mesh_neighbors,
    node_id,
)

__all__ = [
    "RoundRobinArbiter",
    "Flit",
    "FlitType",
    "Packet",
    "make_packet",
    "NetworkInterface",
    "CORES",
    "Network",
    "NoCConfig",
    "NoCStats",
    "SimulationTimeout",
    "default_core",
    "network_core",
    "set_default_core",
    "LinkRecorder",
    "TransitionLedger",
    "TraceRecorder",
    "ProtocolError",
    "Router",
    "VCState",
    "LinkLoad",
    "link_loads",
    "render_heatmap",
    "router_heatmap",
    "SyntheticTrafficConfig",
    "TrafficPattern",
    "generate_traffic",
    "run_synthetic",
    "drive_schedule",
    "drive_synthetic",
    "OPPOSITE",
    "Port",
    "routing_by_name",
    "xy_route",
    "yx_route",
    "coordinates",
    "inter_router_link_count",
    "manhattan_distance",
    "mesh_neighbors",
    "node_id",
]
