"""Flits and packets — the transmission units of the NoC.

A packet is a sequence of flits created by the network interface; a
flit's payload is carried as one arbitrary-precision int so the link BT
recorders can XOR two payloads and popcount the result exactly
(DESIGN.md §4).  Wormhole switching keeps a packet's flits contiguous
per virtual channel; HEAD/BODY/TAIL types drive VC allocation and
release in the routers.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["FlitType", "Flit", "Packet", "make_packet"]

_packet_ids = itertools.count()


class FlitType(enum.Enum):
    """Position of a flit within its packet."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    HEAD_TAIL = "head_tail"  # single-flit packet

    @property
    def is_head(self) -> bool:
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


@dataclass
class Flit:
    """One link-width transmission unit.

    Attributes:
        packet_id: owning packet.
        index: position within the packet (0 = head).
        flit_type: HEAD/BODY/TAIL/HEAD_TAIL.
        src: source node id.
        dst: destination node id.
        payload: payload bits as a non-negative int.
        width: payload width in bits (= link width).
    """

    packet_id: int
    index: int
    flit_type: FlitType
    src: int
    dst: int
    payload: int
    width: int

    def __post_init__(self) -> None:
        if self.payload < 0:
            raise ValueError("flit payload must be non-negative")
        if self.payload >> self.width:
            raise ValueError(
                f"payload needs more than {self.width} bits "
                f"(packet {self.packet_id}, flit {self.index})"
            )
        # Plain-bool mirrors of the FlitType properties, precomputed
        # once: the cycle loop tests tail-ness on every hop and every
        # ejection, where two chained property calls are measurable.
        self.is_head: bool = self.flit_type.is_head
        self.is_tail: bool = self.flit_type.is_tail

    def wire_bits(self, include_header: bool = False, header_width: int = 16) -> int:
        """Bit image seen by a link.

        By default only the payload is counted (the paper's recorders
        compare flit contents, Fig. 8).  With ``include_header`` a
        small side-band header word — destination and flit type — is
        appended above the payload, for the header-overhead ablation.
        """
        if not include_header:
            return self.payload
        header = (self.dst & ((1 << (header_width - 2)) - 1)) << 2
        header |= {FlitType.HEAD: 1, FlitType.BODY: 0, FlitType.TAIL: 2,
                   FlitType.HEAD_TAIL: 3}[self.flit_type]
        return self.payload | (header << self.width)


@dataclass
class Packet:
    """A routed message: header info plus its flit sequence.

    Attributes:
        packet_id: unique id.
        src: source node id.
        dst: destination node id.
        flits: the flit sequence (flit 0 is the head).
        metadata: free-form tag (the accelerator stores task references
            here; the NoC core never inspects it).
        created_cycle: set at injection time by the NI.
        delivered_cycle: set at ejection time by the NI.
    """

    packet_id: int
    src: int
    dst: int
    flits: list[Flit]
    metadata: dict[str, Any] = field(default_factory=dict)
    created_cycle: int | None = None
    delivered_cycle: int | None = None

    def __len__(self) -> int:
        return len(self.flits)

    @property
    def latency(self) -> int:
        """Injection-to-delivery latency in cycles."""
        if self.created_cycle is None or self.delivered_cycle is None:
            raise ValueError("packet has not completed its journey")
        return self.delivered_cycle - self.created_cycle


def make_packet(
    src: int,
    dst: int,
    payloads: list[int],
    width: int,
    metadata: dict[str, Any] | None = None,
) -> Packet:
    """Build a packet from per-flit payload ints.

    Args:
        src: source node id.
        dst: destination node id.
        payloads: one int per flit, each below ``2**width``.
        width: link width in bits.
        metadata: optional free-form tag copied onto the packet.
    """
    if not payloads:
        raise ValueError("a packet needs at least one flit")
    packet_id = next(_packet_ids)
    n = len(payloads)
    flits = []
    for i, payload in enumerate(payloads):
        if n == 1:
            ftype = FlitType.HEAD_TAIL
        elif i == 0:
            ftype = FlitType.HEAD
        elif i == n - 1:
            ftype = FlitType.TAIL
        else:
            ftype = FlitType.BODY
        flits.append(
            Flit(
                packet_id=packet_id,
                index=i,
                flit_type=ftype,
                src=src,
                dst=dst,
                payload=payload,
                width=width,
            )
        )
    return Packet(
        packet_id=packet_id,
        src=src,
        dst=dst,
        flits=flits,
        metadata=dict(metadata or {}),
    )
