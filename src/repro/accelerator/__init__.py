"""NOC-DNA integration: tasks, flitisation, ordering unit, full runs."""

from repro.accelerator.config import (
    VALUES_PER_FLIT,
    AcceleratorConfig,
    link_width_for,
)
from repro.accelerator.flitize import DecodedTask, EncodedTask, TaskCodec
from repro.accelerator.mapping import Placement, make_placement
from repro.accelerator.orderer import OrderingLatencyModel, OrderingUnit
from repro.accelerator.simulator import (
    AcceleratorSimulator,
    LayerSummary,
    RunResult,
    aggregate_results,
    run_batch_on_noc,
    run_model_on_noc,
)
from repro.accelerator.tasks import LayerTasks, NeuronTask, extract_tasks

__all__ = [
    "VALUES_PER_FLIT",
    "AcceleratorConfig",
    "link_width_for",
    "DecodedTask",
    "EncodedTask",
    "TaskCodec",
    "Placement",
    "make_placement",
    "OrderingLatencyModel",
    "OrderingUnit",
    "AcceleratorSimulator",
    "LayerSummary",
    "RunResult",
    "aggregate_results",
    "run_batch_on_noc",
    "run_model_on_noc",
    "LayerTasks",
    "NeuronTask",
    "extract_tasks",
]
