"""The ordering unit placed next to each memory controller (Fig. 6).

Functionally it applies the configured ordering method while a task is
flitised (delegating to :class:`repro.accelerator.flitize.TaskCodec`);
its timing model mirrors the paper's hardware design (Fig. 14): a SWAR
pop-count stage followed by a bubble sort.  The paper argues this
latency is hidden by the layer-level interval (Sec. IV-C-3); the
simulator therefore treats it as an injection offset that can be
switched on for latency studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.flitize import EncodedTask, TaskCodec
from repro.ordering.strategies import FillOrder, OrderingMethod

__all__ = ["OrderingLatencyModel", "OrderingUnit"]


@dataclass(frozen=True)
class OrderingLatencyModel:
    """Cycle cost of ordering one task's values.

    The Fig. 14 unit pop-counts all values in parallel SWAR stages and
    sorts with a bubble-sort network.  We model:

    * pop-count: ``log2(word_width)`` adder stages, one cycle each;
    * bubble sort: ``n`` odd-even transposition passes, one cycle each
      (``n`` = values sorted);
    * separated-ordering runs the unit twice (paper: "double time
      consumption") — once for weights, once for inputs.
    """

    word_width: int

    def popcount_cycles(self) -> int:
        width = self.word_width
        if width <= 0:
            raise ValueError("word width must be positive")
        return max(1, (width - 1).bit_length())

    def sort_cycles(self, n_values: int) -> int:
        if n_values < 0:
            raise ValueError("cannot sort a negative count")
        return n_values

    def task_cycles(self, n_pairs: int, method: OrderingMethod) -> int:
        """Ordering latency for one task of ``n_pairs`` pairs."""
        if method is OrderingMethod.BASELINE:
            return 0
        single = self.popcount_cycles() + self.sort_cycles(n_pairs)
        if method is OrderingMethod.SEPARATED:
            return 2 * single
        return single


class OrderingUnit:
    """Functional + timing wrapper used by the MC model.

    Args:
        codec: the task codec (carries lane geometry and word width).
        method: ordering configuration under test.
        fill: flit placement (paper default: column-major deal).
        model_latency: when True, :meth:`encode` also reports the
            ordering delay so the MC can stagger injections.
    """

    def __init__(
        self,
        codec: TaskCodec,
        method: OrderingMethod,
        fill: FillOrder = FillOrder.COLUMN_MAJOR_DEAL,
        model_latency: bool = False,
    ) -> None:
        self.codec = codec
        self.method = method
        # The baseline transmits the Fig. 2 layout: values in arrival
        # order, padding concentrated in the tail flit (row-major).
        # The column-major deal is part of the ordering transformation
        # (Fig. 3), so it only applies to O1/O2.
        if method is OrderingMethod.BASELINE:
            fill = FillOrder.ROW_MAJOR
        self.fill = fill
        self.model_latency = model_latency
        self.latency_model = OrderingLatencyModel(codec.word_width)
        self.tasks_ordered = 0
        self.total_latency_cycles = 0

    def encode(
        self,
        input_words: list[int],
        weight_words: list[int],
        bias_word: int,
    ) -> tuple[EncodedTask, int]:
        """Order + flitise a task; returns (encoded, delay_cycles)."""
        encoded = self.codec.encode(
            input_words, weight_words, bias_word, self.method, self.fill
        )
        return encoded, self.account(encoded.n_pairs)

    def account(self, n_pairs: int) -> int:
        """Record stats + latency for one ordered task; returns delay.

        The batch data plane orders whole layers out-of-band through
        :meth:`repro.accelerator.flitize.TaskCodec.encode_batch`; each
        task still passes through its MC's unit here, so throughput
        counters and modelled ordering latency are identical across
        codecs.
        """
        delay = 0
        if self.model_latency:
            delay = self.latency_model.task_cycles(n_pairs, self.method)
        self.tasks_ordered += 1
        self.total_latency_cycles += delay
        return delay
