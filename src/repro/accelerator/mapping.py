"""PE / memory-controller placement and task-to-PE mapping.

The paper attaches MCs to edge routers with external memory links
(Fig. 6) and evaluates 4x4/MC2, 8x8/MC4 and 8x8/MC8.  We reproduce
that arrangement deterministically:

* MCs sit on the west and east edge columns, alternating sides,
  spread evenly over the rows (the 4x4/MC2 default lands on the row-2
  edge routers, matching Fig. 6's placement).
* Every other node hosts a PE.
* Tasks are assigned to PEs round-robin; each PE is served by its
  nearest MC (Manhattan distance, ties to the lower node id), which is
  where the ordering unit for its traffic lives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.topology import manhattan_distance, node_id

__all__ = [
    "Placement",
    "make_placement",
    "partition_mesh",
    "placement_for_nodes",
]


@dataclass(frozen=True)
class Placement:
    """Node roles and serving relations for one accelerator instance.

    Attributes:
        width / height: mesh dimensions.
        mc_nodes: node ids hosting memory controllers.
        pe_nodes: node ids hosting processing elements.
        serving_mc: pe node -> the MC that feeds it.
    """

    width: int
    height: int
    mc_nodes: tuple[int, ...]
    pe_nodes: tuple[int, ...]
    serving_mc: dict[int, int]

    def pe_for_task(self, task_index: int) -> int:
        """Round-robin task distribution over the PE array."""
        return self.pe_nodes[task_index % len(self.pe_nodes)]

    def pe_for_group(self, layer_index: int, group: int) -> int:
        """Group-affine assignment: one PE per weight-sharing group.

        All tasks of a (layer, group) land on the same PE so cached
        weight blocks can be reused (weight-stationary dataflow).  The
        layer index is folded in so different layers spread over
        different PEs.
        """
        slot = (layer_index * 131 + group) % len(self.pe_nodes)
        return self.pe_nodes[slot]


def _edge_positions(width: int, height: int, n_mcs: int) -> list[int]:
    """Spread ``n_mcs`` nodes over the west/east edge columns.

    MCs alternate west/east; row indices are spread evenly.  With two
    MCs on a 4x4 mesh this yields nodes 8 and 11 — the Fig. 6 layout.
    """
    positions = []
    pairs = -(-n_mcs // 2)  # rows needed (two MCs fit per row)
    for k in range(n_mcs):
        row_slot = k // 2
        # Even spread of row slots over the mesh height.
        y = int(round((row_slot + 0.5) * height / pairs)) % height
        x = 0 if k % 2 == 0 else width - 1
        node = node_id(x, y, width)
        if node in positions:
            # Collision (many MCs, small mesh): walk down the column.
            step = 1
            while node in positions:
                node = node_id(x, (y + step) % height, width)
                step += 1
        positions.append(node)
    return positions


def make_placement(width: int, height: int, n_mcs: int) -> Placement:
    """Build the deterministic placement for a mesh and MC count."""
    if n_mcs >= width * height:
        raise ValueError("MCs cannot occupy every node")
    mc_nodes = tuple(sorted(_edge_positions(width, height, n_mcs)))
    pe_nodes = tuple(
        n for n in range(width * height) if n not in set(mc_nodes)
    )
    serving: dict[int, int] = {}
    for pe in pe_nodes:
        best = min(
            mc_nodes,
            key=lambda mc: (manhattan_distance(pe, mc, width), mc),
        )
        serving[pe] = best
    return Placement(
        width=width,
        height=height,
        mc_nodes=mc_nodes,
        pe_nodes=pe_nodes,
        serving_mc=serving,
    )


def partition_mesh(
    width: int, height: int, shares: list[int], policy: str = "interleaved"
) -> list[tuple[int, ...]]:
    """Split the mesh's nodes into per-tenant partitions.

    Args:
        width / height: mesh dimensions.
        shares: positive integer weight per tenant; partition sizes are
            proportional to the weights.
        policy: "interleaved" stripes node ids across tenants in
            weighted round-robin (tenants share every mesh region, so
            their traffic contends on the same links — the
            interference-study default), "blocks" hands each tenant a
            contiguous node-id range (spatial isolation baseline).

    Returns:
        One node-id tuple per tenant, disjoint, covering all nodes.
    """
    if not shares or any(s <= 0 for s in shares):
        raise ValueError("shares must be a non-empty list of positive ints")
    n_nodes = width * height
    if len(shares) > n_nodes:
        raise ValueError("more tenants than mesh nodes")
    parts: list[list[int]] = [[] for _ in shares]
    if policy == "interleaved":
        order = [i for i, s in enumerate(shares) for _ in range(s)]
        for node in range(n_nodes):
            parts[order[node % len(order)]].append(node)
    elif policy == "blocks":
        total = sum(shares)
        start = 0
        bound = 0.0
        for i, s in enumerate(shares):
            bound += s * n_nodes / total
            remaining = len(shares) - i - 1
            end = n_nodes if remaining == 0 else int(round(bound))
            end = max(end, start + 1)  # every tenant gets >= 1 node
            # ... but never so many that a later tenant gets none.
            end = min(end, n_nodes - remaining)
            parts[i] = list(range(start, end))
            start = end
    else:
        raise ValueError(f"unknown partition policy {policy!r}")
    if any(not p for p in parts):
        raise ValueError("partitioning left a tenant without nodes")
    return [tuple(p) for p in parts]


def placement_for_nodes(
    width: int, height: int, n_mcs: int, nodes: tuple[int, ...]
) -> Placement:
    """A :func:`make_placement`-style placement restricted to ``nodes``.

    MCs are chosen by matching each ideal edge position from the
    full-mesh layout to the nearest unused partition node (Manhattan
    distance, ties to the lower node id); the remaining partition nodes
    host PEs.  Handing the full node set reproduces
    :func:`make_placement` exactly, which is what lets a single-tenant
    serving run conform bit-exactly to a whole-mesh model job.
    """
    node_set = set(nodes)
    if len(node_set) != len(nodes):
        raise ValueError("partition nodes must be unique")
    if not node_set:
        raise ValueError("partition must contain at least one node")
    if any(n < 0 or n >= width * height for n in node_set):
        raise ValueError("partition node out of mesh range")
    if n_mcs >= len(node_set):
        raise ValueError("MCs cannot occupy every partition node")
    ideals = _edge_positions(width, height, n_mcs)
    mc_list: list[int] = []
    for ideal in ideals:
        best = min(
            (n for n in node_set if n not in mc_list),
            key=lambda n: (manhattan_distance(n, ideal, width), n),
        )
        mc_list.append(best)
    mc_nodes = tuple(sorted(mc_list))
    pe_nodes = tuple(
        n for n in sorted(node_set) if n not in set(mc_nodes)
    )
    serving: dict[int, int] = {}
    for pe in pe_nodes:
        serving[pe] = min(
            mc_nodes,
            key=lambda mc: (manhattan_distance(pe, mc, width), mc),
        )
    return Placement(
        width=width,
        height=height,
        mc_nodes=mc_nodes,
        pe_nodes=pe_nodes,
        serving_mc=serving,
    )
