"""Full NOC-DNA simulation: DNN inference as real NoC traffic (Fig. 7).

For every weighted layer, the memory controllers ship each sampled
neuron task to its PE as one packet per k*k-sized chunk (half-half
flitised, ordered by the MC's ordering unit); the PE decodes the
delivered payload bits, accumulates the partial MACs, and returns a
single-flit response to its serving MC once the final chunk has
arrived.  Layers run back-to-back with a barrier in between — the
paper's layer-level interval (Sec. IV-C-3).

The run verifies functional correctness end-to-end: every MAC computed
from *transmitted bits* must equal the reference computed from the
originally encoded words, which proves affiliated-ordering needs no
recovery and separated-ordering's index recovery works.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Sequence
from dataclasses import dataclass, field
from heapq import heappop, heappush

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.flitize import EncodedInputs, EncodedTask, TaskCodec
from repro.accelerator.mapping import Placement, make_placement
from repro.accelerator.orderer import OrderingUnit
from repro.accelerator.tasks import (
    LayerTasks,
    NeuronTask,
    extract_tasks,
    split_task,
)
from repro.bits.formats import DataFormat, Float32Format
from repro.bits.lanes import lane_fast_path
from repro.obs.metrics import active_registry
from repro.dnn.models import ModelSpec
from repro.dnn.quantize import tensor_format
from repro.noc.flit import Packet, make_packet
from repro.noc.network import Network, SimulationTimeout

__all__ = ["LayerSummary", "RunResult", "AcceleratorSimulator", "run_model_on_noc"]


@dataclass(frozen=True)
class LayerSummary:
    """Per-layer traffic and BT accounting.

    Attributes:
        layer_name: e.g. "conv1".
        n_tasks: neuron tasks simulated (after sampling).
        total_neurons: tasks the full layer would have.
        packets: packets carried (request chunks + responses).
        flits: flits injected for this layer.
        bit_transitions: NoC-wide BT delta attributed to this layer.
        cycles: cycles the layer's barrier window took.
    """

    layer_name: str
    n_tasks: int
    total_neurons: int
    packets: int
    flits: int
    bit_transitions: int
    cycles: int

    def to_dict(self) -> dict:
        """JSON-compatible dict; exact inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "LayerSummary":
        return cls(**data)


@dataclass
class RunResult:
    """Outcome of one accelerator simulation.

    Attributes:
        config: the experiment configuration.
        total_bit_transitions: Fig. 8 NoC-wide sum over the whole run.
        total_cycles: inference latency in cycles.
        flit_hops: total link traversals.
        layers: per-layer summaries.
        tasks_verified: tasks whose NoC-computed MAC matched reference.
        tasks_total: tasks simulated.
        mean_packet_latency: average packet latency in cycles.
        ordering_latency_cycles: total cycles spent in ordering units
            (informational; hidden from the critical path by default).
        per_link: link-name -> accumulated BTs on that link (the
            Fig. 8 per-recorder breakdown; feeds the campaign engine's
            per-link pivots).
        steps_executed: cycles the network actually stepped (on the
            event core ``steps_executed <= total_cycles`` because idle
            cycles are fast-forwarded over).
        idle_cycles_skipped: idle cycles the event core jumped without
            stepping (0 on the stepped reference core).
        metrics: flat observability counter snapshot (``event.*``,
            ``router.*``, ``codec.*`` families — see
            :mod:`repro.obs.metrics`).  Deterministic simulation facts,
            filled unconditionally: identical whether or not a metrics
            registry is enabled and however many sweep workers ran.
    """

    config: AcceleratorConfig
    total_bit_transitions: int
    total_cycles: int
    flit_hops: int
    layers: list[LayerSummary]
    tasks_verified: int
    tasks_total: int
    mean_packet_latency: float
    ordering_latency_cycles: int
    per_link: dict[str, int] = field(default_factory=dict)
    steps_executed: int = 0
    idle_cycles_skipped: int = 0
    metrics: dict[str, int] = field(default_factory=dict)

    @property
    def all_verified(self) -> bool:
        return self.tasks_verified == self.tasks_total

    @property
    def transitions_per_flit_hop(self) -> float:
        if self.flit_hops == 0:
            return 0.0
        return self.total_bit_transitions / self.flit_hops

    def to_dict(self) -> dict:
        """JSON-compatible dict; exact inverse of :meth:`from_dict`.

        The campaign result store persists run results as JSONL, so
        the dict form nests the config and per-layer summaries as
        plain dicts.
        """
        return {
            "config": self.config.to_dict(),
            "total_bit_transitions": self.total_bit_transitions,
            "total_cycles": self.total_cycles,
            "flit_hops": self.flit_hops,
            "layers": [layer.to_dict() for layer in self.layers],
            "tasks_verified": self.tasks_verified,
            "tasks_total": self.tasks_total,
            "mean_packet_latency": self.mean_packet_latency,
            "ordering_latency_cycles": self.ordering_latency_cycles,
            "per_link": dict(self.per_link),
            "steps_executed": self.steps_executed,
            "idle_cycles_skipped": self.idle_cycles_skipped,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        kwargs = dict(data)
        kwargs["config"] = AcceleratorConfig.from_dict(kwargs["config"])
        kwargs["layers"] = [
            LayerSummary.from_dict(layer) for layer in kwargs["layers"]
        ]
        # Records persisted before per-link recording default to empty.
        kwargs.setdefault("per_link", {})
        # Records persisted before the observability layer default to
        # "nothing measured".
        kwargs.setdefault("steps_executed", 0)
        kwargs.setdefault("idle_cycles_skipped", 0)
        kwargs.setdefault("metrics", {})
        return cls(**kwargs)


class _PendingQueue:
    """Packets waiting for their release cycle (ordering/compute delay).

    A min-heap keyed by ``(release_cycle, sequence)``: the drain loop
    peeks the earliest release in O(1) instead of re-scanning every
    pending packet each cycle.  The monotonic sequence preserves push
    order among equal release cycles, which is exactly the order the
    old list scan released them in (a pending packet only matures on
    the cycle it was released for, so equal-release FIFO order is the
    only order the list scan could observe).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Packet]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, release_cycle: int, packet: Packet) -> None:
        heappush(self._heap, (release_cycle, next(self._seq), packet))

    def next_release(self) -> int:
        """Earliest release cycle; only valid when non-empty."""
        return self._heap[0][0]

    def pop(self) -> Packet:
        """Remove and return the earliest-release packet."""
        return heappop(self._heap)[2]

    def reorder(self, key) -> None:
        """Re-queue all packets under a new (release, packet) sort key.

        Used by the ``count_desc`` packet-scheduling policy: the sorted
        order becomes the new FIFO order via fresh sequence numbers.
        """
        items = [
            (release, packet)
            for release, _, packet in sorted(self._heap, key=lambda t: t[1])
        ]
        items.sort(key=key)
        self._heap.clear()
        self._seq = itertools.count()
        for release, packet in items:
            self.push(release, packet)


@dataclass
class _TaskRecord:
    """Simulator-side bookkeeping for one in-flight neuron task."""

    task: NeuronTask
    reference: float
    pe: int
    mc: int
    n_chunks: int
    encoded: dict[int, EncodedTask | EncodedInputs] = field(
        default_factory=dict
    )
    # Arrival-plane fast path: original-order words recovered from the
    # encoded payloads in layer-batched decode passes at encode time
    # (decode is a pure function of the encoded object, so pre-decoding
    # is bit-identical to decoding at arrival).  Keyed by chunk index:
    # full chunks map to (input_words, weight_words, bias), input-only
    # chunks to the input word row.  Consumed (popped) by ``pe_sink``.
    decoded: dict[int, object] = field(default_factory=dict)
    partials: dict[int, float] = field(default_factory=dict)
    computed: float | None = None
    response_received: bool = False


@dataclass
class _ChunkJob:
    """One chunk's encode work order inside ``_encode_tasks``.

    Phase 1 fills everything but ``encoded`` in task/chunk order;
    phase 2 (the codec pass) fills ``encoded`` — batched across the
    layer or chunk by chunk; phase 3 turns jobs into packets in the
    original order.
    """

    record: _TaskRecord
    task_id: int
    chunk_index: int
    mc: int
    pe: int
    cache_key: tuple
    inputs: np.ndarray
    weights: np.ndarray
    bias: int
    input_only: bool
    encoded: EncodedTask | EncodedInputs | None = None
    # Filled by the batch codec's grouped decode pass (None under the
    # scalar oracle, which decodes per packet at arrival).
    decoded: object | None = None


class AcceleratorSimulator:
    """Drives one model + configuration through the NoC."""

    def __init__(
        self,
        config: AcceleratorConfig,
        model: ModelSpec,
        sample_image: np.ndarray,
        placement: Placement | None = None,
    ) -> None:
        self.config = config
        self.model = model
        if placement is None:
            placement = make_placement(
                config.width, config.height, config.n_mcs
            )
        elif (placement.width, placement.height) != (
            config.width,
            config.height,
        ):
            raise ValueError(
                "placement mesh "
                f"{placement.width}x{placement.height} does not match "
                f"config mesh {config.width}x{config.height}"
            )
        self.placement: Placement = placement
        self.layer_tasks: list[LayerTasks] = extract_tasks(
            model,
            sample_image,
            max_tasks_per_layer=config.max_tasks_per_layer,
            seed=config.seed,
        )
        self.codec = TaskCodec(
            values_per_flit=config.values_per_flit,
            word_width=config.word_width,
            include_index_payload=config.include_index_payload,
        )
        self.orderers = {
            mc: OrderingUnit(
                self.codec,
                config.ordering,
                config.fill_order,
                model_latency=bool(config.extra.get("model_ordering_latency")),
            )
            for mc in self.placement.mc_nodes
        }
        self._formats = self._build_formats()
        # Weight blocks already shipped to each PE (MC-side knowledge
        # used by the weight-stationary dataflow).
        self._mc_sent_keys: dict[int, set[tuple]] = {
            pe: set() for pe in self.placement.pe_nodes
        }
        # The most recent run's network, exposed for the perf harness
        # (steps_executed vs stats.cycles — the fast-forward invariant).
        self.last_network: Network | None = None
        # Codec observability: chunks encoded per path.  fallback
        # counts batch-API chunks that degraded to the per-row scalar
        # reference because the lane width has no numpy fast path.
        self.codec_batch_groups = 0
        self.codec_batch_chunks = 0
        self.codec_scalar_chunks = 0
        self.codec_fallback_chunks = 0
        # Arrival-plane observability: chunks whose words came from a
        # grouped decode pass vs per-packet scalar decode at the sink.
        self.codec_decode_batch_chunks = 0
        self.codec_decode_scalar_chunks = 0

    def _build_formats(self) -> dict[int, tuple[DataFormat, DataFormat]]:
        """Per-layer (input, weight) wire formats."""
        formats: dict[int, tuple[DataFormat, DataFormat]] = {}
        for lt in self.layer_tasks:
            if self.config.data_format == "float32":
                formats[lt.layer_index] = (Float32Format(), Float32Format())
                continue
            all_inputs = np.concatenate([t.inputs for t in lt.tasks])
            all_weights = np.concatenate(
                [t.weights for t in lt.tasks]
                + [np.array([t.bias for t in lt.tasks])]
            )
            formats[lt.layer_index] = (
                tensor_format(all_inputs),
                tensor_format(all_weights),
            )
        return formats

    # -- running ---------------------------------------------------------

    def run(
        self,
        max_cycles_per_layer: int = 2_000_000,
        trace_collector=None,
    ) -> RunResult:
        """Simulate every layer and return the run result.

        Args:
            max_cycles_per_layer: drain budget per barrier window.
            trace_collector: optional
                :class:`repro.workloads.traces.TraceCollector` that
                receives every recorded wire image (Fig. 7's packet
                traffic trace output).
        """
        network = Network(self.config.noc_config())
        network.trace_collector = trace_collector
        self.last_network = network
        records: dict[int, _TaskRecord] = {}
        pending = _PendingQueue()
        # Outstanding-task counter for the drain loop: O(1) per-cycle
        # termination check instead of re-scanning every task record.
        counters = {"outstanding": 0}
        response_fmt = Float32Format()

        def complete_task(record: _TaskRecord) -> None:
            if not record.response_received:
                record.response_received = True
                counters["outstanding"] -= 1
        # Weight-stationary state: per-PE decoded weight blocks and
        # input-only chunks that arrived before their weights.
        pe_cache: dict[int, dict[tuple, tuple[Sequence[int], int]]] = {}
        parked: dict[tuple[int, tuple], list[tuple[_TaskRecord, int, Sequence[int]]]] = {}

        def finish_chunk(
            record: _TaskRecord,
            chunk_index: int,
            input_words: Sequence[int] | np.ndarray,
            weight_words: Sequence[int] | np.ndarray,
            bias_word: int,
            cycle: int,
        ) -> None:
            in_fmt, w_fmt = self._formats[record.task.layer_index]
            record.partials[chunk_index] = _mac(
                input_words, weight_words, bias_word, in_fmt, w_fmt
            )
            if len(record.partials) < record.n_chunks:
                return
            # All chunks arrived: sum partials in chunk order so the
            # result is deterministic regardless of arrival order.
            record.computed = sum(
                record.partials[c] for c in range(record.n_chunks)
            )
            if not self.config.include_responses:
                complete_task(record)
                return
            payload = int(
                response_fmt.encode(
                    np.array([record.computed], dtype=np.float32)
                )[0]
            )
            response = make_packet(
                src=record.pe,
                dst=record.mc,
                payloads=[payload],
                width=self.config.link_width,
                metadata={"kind": "response", "task_id": record.task.task_id},
            )
            pending.push(cycle + self.config.compute_delay, response)

        def pe_sink(packet: Packet, cycle: int) -> None:
            meta = packet.metadata
            kind = meta.get("kind")
            if kind not in ("task", "task_inputs"):
                return
            record: _TaskRecord = records[meta["task_id"]]
            chunk_index = meta["chunk_index"]
            key = meta.get("cache_key")
            pre = record.decoded.pop(chunk_index, None)
            if kind == "task":
                if pre is not None:
                    # Arrival-plane fast path: the words were recovered
                    # from this chunk's payload bits in a layer-batched
                    # decode pass (see _encode_jobs).
                    input_words, weight_words, bias_word = pre
                    self.codec_decode_batch_chunks += 1
                else:
                    encoded = record.encoded[chunk_index]
                    assert isinstance(encoded, EncodedTask)
                    decoded = self.codec.decode(encoded)
                    pairs = decoded.original_pairs()
                    input_words = [p[0] for p in pairs]
                    weight_words = [p[1] for p in pairs]
                    bias_word = decoded.bias
                    self.codec_decode_scalar_chunks += 1
                finish_chunk(
                    record,
                    chunk_index,
                    input_words,
                    weight_words,
                    bias_word,
                    cycle,
                )
                if self.config.weight_cache and key is not None:
                    cache = pe_cache.setdefault(packet.dst, {})
                    cache[key] = (weight_words, bias_word)
                    for rec, ci, inputs in parked.pop((packet.dst, key), []):
                        finish_chunk(
                            rec, ci, inputs, weight_words, bias_word, cycle
                        )
                return
            # Input-only chunk: needs the cached weight block.
            if pre is not None:
                input_words = pre
                self.codec_decode_batch_chunks += 1
            else:
                encoded_in = record.encoded[chunk_index]
                assert isinstance(encoded_in, EncodedInputs)
                input_words = self.codec.decode_inputs_only(encoded_in)
                self.codec_decode_scalar_chunks += 1
            cached = pe_cache.get(packet.dst, {}).get(key)
            if cached is None:
                parked.setdefault((packet.dst, key), []).append(
                    (record, chunk_index, input_words)
                )
                return
            weight_words, bias_word = cached
            finish_chunk(
                record, chunk_index, input_words, weight_words, bias_word,
                cycle,
            )

        def mc_sink(packet: Packet, cycle: int) -> None:
            meta = packet.metadata
            if meta.get("kind") != "response":
                return
            complete_task(records[meta["task_id"]])

        for pe in self.placement.pe_nodes:
            network.attach_sink(pe, pe_sink)
        for mc in self.placement.mc_nodes:
            network.attach_sink(mc, mc_sink)

        summaries: list[LayerSummary] = []
        if self.config.layer_barrier:
            for lt in self.layer_tasks:
                bt_before = network.stats.total_bit_transitions
                packets_before = network.stats.packets_injected
                cycles_before = network.cycle
                for record in self._encode_tasks(
                    lt.tasks, network.cycle, pending
                ):
                    records[record.task.task_id] = record
                self._schedule_pending(pending)
                layer_flits = self._drain(
                    network,
                    pending,
                    counters,
                    records,
                    lt.tasks,
                    max_cycles_per_layer,
                )
                summaries.append(
                    LayerSummary(
                        layer_name=lt.layer_name,
                        n_tasks=len(lt.tasks),
                        total_neurons=lt.total_neurons,
                        packets=network.stats.packets_injected
                        - packets_before,
                        flits=layer_flits,
                        bit_transitions=network.stats.total_bit_transitions
                        - bt_before,
                        cycles=network.cycle - cycles_before,
                    )
                )
        else:
            # Pipelined mode: every layer's packets queue upfront and
            # interleave freely; one aggregate summary is produced.
            all_tasks = [t for lt in self.layer_tasks for t in lt.tasks]
            for record in self._encode_tasks(
                all_tasks, network.cycle, pending
            ):
                records[record.task.task_id] = record
            self._schedule_pending(pending)
            total_flits = self._drain(
                network,
                pending,
                counters,
                records,
                all_tasks,
                max_cycles_per_layer,
            )
            summaries.append(
                LayerSummary(
                    layer_name="(pipelined)",
                    n_tasks=len(all_tasks),
                    total_neurons=sum(
                        lt.total_neurons for lt in self.layer_tasks
                    ),
                    packets=network.stats.packets_injected,
                    flits=total_flits,
                    bit_transitions=network.stats.total_bit_transitions,
                    cycles=network.cycle,
                )
            )
        total_ordering_latency = sum(
            unit.total_latency_cycles for unit in self.orderers.values()
        )

        verified = 0
        for record in records.values():
            if record.computed is None:
                continue
            if abs(record.computed - record.reference) <= 1e-9 * max(
                1.0, abs(record.reference)
            ):
                verified += 1
        stats = network.stats
        metrics = network.metrics_snapshot()
        metrics["codec.batch_groups"] = self.codec_batch_groups
        metrics["codec.batch_chunks"] = self.codec_batch_chunks
        metrics["codec.scalar_chunks"] = self.codec_scalar_chunks
        metrics["codec.fallback_chunks"] = self.codec_fallback_chunks
        metrics["codec.decode_batch_chunks"] = self.codec_decode_batch_chunks
        metrics["codec.decode_scalar_chunks"] = (
            self.codec_decode_scalar_chunks
        )
        registry = active_registry()
        if registry is not None:
            registry.merge(metrics)
        return RunResult(
            config=self.config,
            total_bit_transitions=stats.total_bit_transitions,
            total_cycles=network.cycle,
            flit_hops=stats.flit_hops,
            layers=summaries,
            tasks_verified=verified,
            tasks_total=len(records),
            mean_packet_latency=stats.mean_latency,
            ordering_latency_cycles=total_ordering_latency,
            per_link=network.ledger.per_link(),
            steps_executed=network.steps_executed,
            idle_cycles_skipped=network.idle_cycles_skipped,
            metrics=metrics,
        )

    def _encode_tasks(
        self,
        tasks: list[NeuronTask],
        cycle: int,
        pending: _PendingQueue,
    ) -> list[_TaskRecord]:
        """Encode the tasks' chunks and queue their request packets.

        Three phases so the batch codec can order and flitise every
        same-shaped chunk of the layer in single numpy passes:

        1. wire-format word conversion and weight-cache decisions, in
           task/chunk order (the cache decisions are order-dependent);
        2. the codec pass (:meth:`_encode_jobs`) — batched under
           ``codec="batch"``, chunk by chunk under the scalar oracle;
        3. packet assembly, latency accounting and injection in
           exactly the task/chunk order of phase 1, so the pending
           queue, ordering-unit stats and release cycles are identical
           across codecs.
        """
        jobs: list[_ChunkJob] = []
        records: list[_TaskRecord] = []
        for task in tasks:
            if self.config.mapping_policy == "group_affine":
                pe = self.placement.pe_for_group(
                    task.layer_index, task.group
                )
            else:
                pe = self.placement.pe_for_task(task.task_id)
            mc = self.placement.serving_mc[pe]
            in_fmt, w_fmt = self._formats[task.layer_index]
            chunks = split_task(task, self.config.chunk_pairs)
            record = _TaskRecord(
                task=task,
                reference=0.0,
                pe=pe,
                mc=mc,
                n_chunks=len(chunks),
            )
            records.append(record)
            reference = 0.0
            for chunk in chunks:
                input_words = in_fmt.encode(chunk.inputs)
                weight_words = w_fmt.encode(chunk.weights)
                bias_word = int(w_fmt.encode(np.array([chunk.bias]))[0])
                key = (chunk.layer_index, chunk.group, chunk.chunk_index)
                cached = (
                    self.config.weight_cache
                    and key in self._mc_sent_keys[pe]
                )
                if not cached and self.config.weight_cache:
                    self._mc_sent_keys[pe].add(key)
                jobs.append(
                    _ChunkJob(
                        record=record,
                        task_id=task.task_id,
                        chunk_index=chunk.chunk_index,
                        mc=mc,
                        pe=pe,
                        cache_key=key,
                        inputs=input_words,
                        weights=weight_words,
                        bias=bias_word,
                        input_only=cached,
                    )
                )
                # The cached weight block is bit-identical to this
                # chunk's own words (same filter, same per-layer
                # scale), so the reference uses the chunk's words in
                # both paths.
                reference += _mac(
                    input_words, weight_words, bias_word, in_fmt, w_fmt
                )
            record.reference = reference
        self._encode_jobs(jobs)
        current: _TaskRecord | None = None
        release = cycle
        for job in jobs:
            if job.record is not current:
                current = job.record
                release = cycle
            encoded = job.encoded
            assert encoded is not None
            job.record.encoded[job.chunk_index] = encoded
            if job.decoded is not None:
                job.record.decoded[job.chunk_index] = job.decoded
            if job.input_only:
                kind = "task_inputs"
                delay = 0
            else:
                kind = "task"
                delay = self.orderers[job.mc].account(job.inputs.shape[0])
            packet = make_packet(
                src=job.mc,
                dst=job.pe,
                payloads=list(encoded.payloads),
                width=self.config.link_width,
                metadata={
                    "kind": kind,
                    "task_id": job.task_id,
                    "chunk_index": job.chunk_index,
                    "cache_key": job.cache_key,
                },
            )
            release += delay
            pending.push(release, packet)
        return records

    def _encode_jobs(self, jobs: list[_ChunkJob]) -> None:
        """Run the configured codec over the collected chunk jobs.

        The batch path groups jobs by pair count (a layer's chunks all
        share one width; ragged tail chunks form their own group) and
        encodes each group in one :meth:`TaskCodec.encode_batch` /
        :meth:`TaskCodec.encode_inputs_only_batch` call.  The scalar
        oracle encodes chunk by chunk exactly as the pre-batch
        simulator did.
        """
        if not jobs:
            return
        # Every MC's unit shares the config's method and effective fill
        # (the baseline's row-major override included).
        unit = self.orderers[jobs[0].mc]
        if self.config.codec == "scalar":
            self.codec_scalar_chunks += len(jobs)
            for job in jobs:
                if job.input_only:
                    job.encoded = self.codec.encode_inputs_only(
                        job.inputs.tolist(),
                        self.config.ordering,
                        self.config.fill_order,
                    )
                else:
                    job.encoded = self.codec.encode(
                        job.inputs.tolist(),
                        job.weights.tolist(),
                        job.bias,
                        unit.method,
                        unit.fill,
                    )
            return
        full: dict[int, list[_ChunkJob]] = {}
        inputs_only: dict[int, list[_ChunkJob]] = {}
        for job in jobs:
            group = inputs_only if job.input_only else full
            group.setdefault(job.inputs.shape[0], []).append(job)
        self.codec_batch_groups += len(full) + len(inputs_only)
        self.codec_batch_chunks += len(jobs)
        if not lane_fast_path(self.codec.word_width):
            # encode_batch degrades to the per-row scalar reference for
            # exotic lane widths; surface how many chunks took that hit.
            self.codec_fallback_chunks += len(jobs)
        for group_jobs in full.values():
            encoded = self.codec.encode_batch(
                np.stack([job.inputs for job in group_jobs]),
                np.stack([job.weights for job in group_jobs]),
                [job.bias for job in group_jobs],
                unit.method,
                unit.fill,
            )
            # Arrival plane: recover each chunk's original-order words
            # from the transmitted payload bits in one grouped decode
            # pass.  Decode is pure in the encoded object, so this is
            # bit-identical to the scalar oracle's decode-at-arrival.
            decoded = self.codec.decode_batch_words(encoded)
            for job, enc, dec in zip(group_jobs, encoded, decoded):
                job.encoded = enc
                job.decoded = dec
        for group_jobs in inputs_only.values():
            encoded = self.codec.encode_inputs_only_batch(
                np.stack([job.inputs for job in group_jobs]),
                self.config.ordering,
                self.config.fill_order,
            )
            decoded_rows = self.codec.decode_inputs_only_batch(encoded)
            for job, enc, row in zip(group_jobs, encoded, decoded_rows):
                job.encoded = enc
                job.decoded = row

    def _schedule_pending(self, pending: _PendingQueue) -> None:
        """Apply the MC injection-order policy to queued packets.

        "count_desc" extends the ordering idea across packet
        boundaries: each MC streams its packets in descending order of
        total payload '1' count, so consecutive packets on shared links
        carry similar bit densities.  Release cycles keep priority so
        modelled ordering latency is respected.
        """
        if self.config.packet_scheduling != "count_desc":
            return
        pending.reorder(
            key=lambda item: (
                item[0],
                -sum(f.payload.bit_count() for f in item[1].flits),
            )
        )

    def _drain(
        self,
        network: Network,
        pending: _PendingQueue,
        counters: dict[str, int],
        records: dict[int, _TaskRecord],
        tasks: list[NeuronTask],
        max_cycles: int,
    ) -> int:
        """Run the network until the given tasks complete."""
        flits_before = network.stats.flits_injected
        deadline = network.cycle + max_cycles
        counters["outstanding"] = sum(
            1 for t in tasks if not records[t.task_id].response_received
        )
        event = network.event_core

        while counters["outstanding"] > 0:
            if event and network.is_idle:
                # Nothing can act this cycle: jump straight to the next
                # packet release or link arrival (clamped so timeout
                # semantics match the stepped run exactly).  With
                # neither queued the run is wedged — jumping to the
                # deadline raises the same timeout the stepped core
                # would reach by spinning.
                target = deadline
                if pending:
                    target = min(target, pending.next_release())
                arrival = network.next_internal_event()
                if arrival is not None:
                    target = min(target, arrival)
                network.fast_forward(target)
            if network.cycle >= deadline:
                raise SimulationTimeout(
                    f"{len(tasks)} tasks did not complete within "
                    f"{max_cycles} cycles"
                )
            # Release matured packets into their source NI.
            while pending and pending.next_release() <= network.cycle:
                network.send_packet(pending.pop())
            network.step()
        return network.stats.flits_injected - flits_before


def _dtype(fmt: DataFormat) -> type:
    """Numpy unsigned dtype matching a format's word width."""
    return {8: np.uint8, 16: np.uint16, 32: np.uint32}[fmt.width]


def _mac(
    input_words: list[int] | np.ndarray,
    weight_words: list[int] | np.ndarray,
    bias_word: int,
    in_fmt: DataFormat,
    w_fmt: DataFormat,
) -> float:
    """Dot product + bias over decoded wire words (float64 accumulate).

    Both the PE-side computation and the reference use this helper with
    the pairs in *original* order, so a correct recovery yields
    bit-identical results.
    """
    in_vals = in_fmt.decode(
        np.array(input_words, dtype=_dtype(in_fmt))
    ).astype(np.float64)
    w_vals = w_fmt.decode(
        np.array(weight_words, dtype=_dtype(w_fmt))
    ).astype(np.float64)
    bias = float(w_fmt.decode(np.array([bias_word], dtype=_dtype(w_fmt)))[0])
    return float(in_vals @ w_vals) + bias


def run_model_on_noc(
    config: AcceleratorConfig,
    model: ModelSpec,
    sample_image: np.ndarray,
    max_cycles_per_layer: int = 2_000_000,
    trace_collector=None,
) -> RunResult:
    """One-call convenience wrapper used by examples and benches."""
    sim = AcceleratorSimulator(config, model, sample_image)
    return sim.run(
        max_cycles_per_layer=max_cycles_per_layer,
        trace_collector=trace_collector,
    )


def run_batch_on_noc(
    config: AcceleratorConfig,
    model: ModelSpec,
    images: np.ndarray,
    max_cycles_per_layer: int = 2_000_000,
) -> list[RunResult]:
    """Run several inference passes (one per image) back to back.

    Each image's activations produce different task payloads, so the
    batch exercises the ordering method across input statistics.  The
    images run as independent inferences on fresh networks; aggregate
    with :func:`aggregate_results`.
    """
    if images.ndim != 4:
        raise ValueError("images must be a (N, C, H, W) batch")
    results = []
    for image in images:
        results.append(
            run_model_on_noc(
                config, model, image, max_cycles_per_layer
            )
        )
    return results


def aggregate_results(results: list[RunResult]) -> dict[str, float]:
    """Batch-level totals and means over per-image run results."""
    if not results:
        raise ValueError("no results to aggregate")
    total_bt = sum(r.total_bit_transitions for r in results)
    total_cycles = sum(r.total_cycles for r in results)
    total_hops = sum(r.flit_hops for r in results)
    return {
        "images": float(len(results)),
        "total_bit_transitions": float(total_bt),
        "total_cycles": float(total_cycles),
        "total_flit_hops": float(total_hops),
        "mean_bt_per_image": total_bt / len(results),
        "transitions_per_flit_hop": (
            total_bt / total_hops if total_hops else 0.0
        ),
        "all_verified": float(all(r.all_verified for r in results)),
    }
