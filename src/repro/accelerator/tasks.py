"""Neuron-task extraction from DNN models.

A *task* is the unit of work the NOC-DNA ships to a PE: the inputs and
weights of one output neuron plus its bias (Fig. 2 — "contents of one
task": k*k inputs, k*k weights, 1 bias).  For a convolution layer that
is one output-channel x spatial-position patch (C*k*k pairs); for a
linear layer it is one output neuron's full row.

Extraction runs a reference forward pass layer by layer, capturing the
activation entering every weighted layer, then enumerates (optionally
subsamples) the layer's output neurons.  The DNN's layer-by-layer
dataflow and order-insensitive MAC structure is exactly what the
ordering methods exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dnn.layers import Conv2d, Linear, im2col
from repro.dnn.models import ModelSpec

__all__ = ["NeuronTask", "TaskChunk", "LayerTasks", "extract_tasks", "split_task"]


@dataclass(frozen=True)
class NeuronTask:
    """One neuron computation to be shipped over the NoC.

    Attributes:
        task_id: global id within the extraction.
        layer_index: index of the weighted layer in the model walk.
        layer_name: e.g. "conv1".
        neuron_index: flat output index within the layer (channel-major
            for conv layers).
        group: weight-sharing group — the output channel for conv
            layers (all spatial positions of a channel share the same
            filter and bias), the neuron index for linear layers.
        inputs: real-valued input patch, length N.
        weights: real-valued weights, length N.
        bias: the neuron's bias.
        expected: reference output (dot(inputs, weights) + bias).
    """

    task_id: int
    layer_index: int
    layer_name: str
    neuron_index: int
    group: int
    inputs: np.ndarray
    weights: np.ndarray
    bias: float
    expected: float

    @property
    def n_pairs(self) -> int:
        return int(self.inputs.shape[0])


@dataclass(frozen=True)
class TaskChunk:
    """A k*k-sized slice of a neuron task — the packet unit of Fig. 2.

    The paper's task contents are "k*k inputs + k*k weights + 1 bias";
    neurons whose fan-in exceeds one kernel plane (multi-channel convs,
    linear layers) are decomposed into chunks of at most ``k*k`` pairs,
    each shipped as its own packet.  The PE accumulates the partial
    MACs and the bias arrives with the final chunk.

    Attributes:
        task_id: parent neuron task.
        chunk_index: position within the parent (0-based).
        n_chunks: total chunks of the parent.
        layer_index: weighted-layer index (formats are per layer).
        group: the parent's weight-sharing group; together with
            (layer_index, chunk_index) it identifies the weight block
            this chunk carries — the weight-stationary cache key.
        inputs / weights: this chunk's pair values.
        bias: parent bias on the final chunk, else 0.0.
    """

    task_id: int
    chunk_index: int
    n_chunks: int
    layer_index: int
    group: int
    inputs: np.ndarray
    weights: np.ndarray
    bias: float

    @property
    def n_pairs(self) -> int:
        return int(self.inputs.shape[0])

    @property
    def is_final(self) -> bool:
        return self.chunk_index == self.n_chunks - 1


def split_task(task: NeuronTask, chunk_pairs: int | None) -> list[TaskChunk]:
    """Decompose a neuron task into packet-sized chunks.

    Args:
        task: the neuron task.
        chunk_pairs: maximum pairs per chunk (paper: k*k = 25); None
            keeps the whole task in one chunk.
    """
    n = task.n_pairs
    if chunk_pairs is None or chunk_pairs >= n:
        return [
            TaskChunk(
                task_id=task.task_id,
                chunk_index=0,
                n_chunks=1,
                layer_index=task.layer_index,
                group=task.group,
                inputs=task.inputs,
                weights=task.weights,
                bias=task.bias,
            )
        ]
    if chunk_pairs <= 0:
        raise ValueError("chunk_pairs must be positive")
    n_chunks = -(-n // chunk_pairs)
    chunks = []
    for c in range(n_chunks):
        lo, hi = c * chunk_pairs, min((c + 1) * chunk_pairs, n)
        chunks.append(
            TaskChunk(
                task_id=task.task_id,
                chunk_index=c,
                n_chunks=n_chunks,
                layer_index=task.layer_index,
                group=task.group,
                inputs=task.inputs[lo:hi],
                weights=task.weights[lo:hi],
                bias=task.bias if c == n_chunks - 1 else 0.0,
            )
        )
    return chunks


@dataclass(frozen=True)
class LayerTasks:
    """All sampled tasks of one weighted layer.

    Attributes:
        layer_index: position among weighted layers.
        layer_name: parameter prefix of the layer.
        tasks: the sampled neuron tasks.
        total_neurons: neurons the full layer would generate (before
            sampling) — used to report the scaling factor.
    """

    layer_index: int
    layer_name: str
    tasks: list[NeuronTask]
    total_neurons: int


def _conv_layer_tasks(
    layer: Conv2d,
    x: np.ndarray,
    layer_index: int,
    start_id: int,
    sample: np.ndarray | None,
) -> LayerTasks:
    """Tasks of a Conv2d layer given its input activation ``x`` (C,H,W)."""
    k, s, p = layer.kernel_size, layer.stride, layer.padding
    cols = im2col(x[None], k, k, s, p)[0]  # (C*k*k, positions)
    n_positions = cols.shape[1]
    n_out = layer.out_channels * n_positions
    w2d = layer.weight.value.reshape(layer.out_channels, -1)
    indices = np.arange(n_out) if sample is None else sample
    name = layer.weight.name.rsplit(".", 1)[0]
    tasks = []
    for offset, neuron in enumerate(indices):
        channel, position = divmod(int(neuron), n_positions)
        inputs = cols[:, position].copy()
        weights = w2d[channel].copy()
        bias = float(layer.bias.value[channel])
        tasks.append(
            NeuronTask(
                task_id=start_id + offset,
                layer_index=layer_index,
                layer_name=name,
                neuron_index=int(neuron),
                group=channel,
                inputs=inputs,
                weights=weights,
                bias=bias,
                expected=float(inputs @ weights + bias),
            )
        )
    return LayerTasks(
        layer_index=layer_index,
        layer_name=name,
        tasks=tasks,
        total_neurons=n_out,
    )


def _linear_layer_tasks(
    layer: Linear,
    x: np.ndarray,
    layer_index: int,
    start_id: int,
    sample: np.ndarray | None,
) -> LayerTasks:
    """Tasks of a Linear layer given its input vector ``x`` (features,)."""
    n_out = layer.out_features
    indices = np.arange(n_out) if sample is None else sample
    name = layer.weight.name.rsplit(".", 1)[0]
    tasks = []
    for offset, neuron in enumerate(indices):
        weights = layer.weight.value[int(neuron)].copy()
        bias = float(layer.bias.value[int(neuron)])
        tasks.append(
            NeuronTask(
                task_id=start_id + offset,
                layer_index=layer_index,
                layer_name=name,
                neuron_index=int(neuron),
                group=int(neuron),
                inputs=x.copy(),
                weights=weights,
                bias=bias,
                expected=float(x @ weights + bias),
            )
        )
    return LayerTasks(
        layer_index=layer_index,
        layer_name=name,
        tasks=tasks,
        total_neurons=n_out,
    )


def extract_tasks(
    model: ModelSpec,
    sample_image: np.ndarray,
    max_tasks_per_layer: int | None = None,
    seed: int = 2025,
) -> list[LayerTasks]:
    """Run a reference forward pass and extract per-layer neuron tasks.

    Args:
        model: the DNN to run (eval mode is forced).
        sample_image: one input of shape ``model.input_shape``.
        max_tasks_per_layer: subsample cap per layer (None = all).
            Sampling is uniform without replacement, seeded — the
            workload-scaling substitution documented in DESIGN.md §5.
        seed: sampling seed.

    Returns:
        One :class:`LayerTasks` per weighted layer, in forward order.
    """
    if sample_image.shape != model.input_shape:
        raise ValueError(
            f"sample shape {sample_image.shape} != model input "
            f"{model.input_shape}"
        )
    rng = np.random.default_rng(seed)
    model.eval()
    x = sample_image[None].astype(np.float64)
    layer_tasks: list[LayerTasks] = []
    weighted_index = 0
    next_id = 0
    for layer in model.layers:
        if isinstance(layer, (Conv2d, Linear)):
            if isinstance(layer, Conv2d):
                n_out = _conv_output_count(layer, x.shape)
            else:
                n_out = layer.out_features
            sample = None
            if max_tasks_per_layer is not None and n_out > max_tasks_per_layer:
                sample = np.sort(
                    rng.choice(n_out, size=max_tasks_per_layer, replace=False)
                )
            if isinstance(layer, Conv2d):
                lt = _conv_layer_tasks(
                    layer, x[0], weighted_index, next_id, sample
                )
            else:
                lt = _linear_layer_tasks(
                    layer, x[0], weighted_index, next_id, sample
                )
            layer_tasks.append(lt)
            next_id += len(lt.tasks)
            weighted_index += 1
        x = layer.forward(x)
    model.train()
    return layer_tasks


def _conv_output_count(layer: Conv2d, x_shape: tuple[int, ...]) -> int:
    """Output neurons of a conv layer for the given input shape."""
    _, _, h, w = x_shape
    k, s, p = layer.kernel_size, layer.stride, layer.padding
    out_h = (h + 2 * p - k) // s + 1
    out_w = (w + 2 * p - k) // s + 1
    return layer.out_channels * out_h * out_w
