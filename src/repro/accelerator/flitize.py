"""Half-half flitisation of neuron tasks (Fig. 2) and its inverse.

Each flit carries ``values_per_flit`` lanes: the left half holds
inputs, the right half the corresponding weights.  A task of N pairs
plus its bias occupies ``ceil((N + 1) / h)`` flits (h = pairs per
flit): LeNet's 25-pair tasks become exactly the 4-flit packet of
Fig. 2, with "1 input + 1 weight + 1 bias + 13 zeros" in the tail.

Padding zero-pairs are part of the transmitted sequence, and —
crucially — they participate in the ordering: under the '1'-count
descending sort they sink below the real values, and the column-major
deal (Fig. 3) then aligns them into the same lanes of consecutive
flits, where they cause zero transitions.  The baseline keeps the
original order, which concentrates the padding in the last flit
(exactly Fig. 2's layout).  The bias is pinned to the final sequence
slot, which both fill orders place in the last flit's last weight lane.

Decoding reverses the placement and — for separated-ordering —
re-pairs values through the minimal-width permutation indices.

Two codec paths share this module.  The scalar methods
(:meth:`TaskCodec.encode` / :meth:`TaskCodec.decode`) convert one task
at a time and are the bit-exact reference; the batch methods
(:meth:`TaskCodec.encode_batch` / :meth:`TaskCodec.decode_batch`)
convert whole layers of same-shaped tasks as ``(n_tasks, n_pairs)``
numpy matrices — vectorised popcount argsort, reshape-based deal, and
lane-matrix payload packing — and are pinned bit-identical to the
scalar path (the ``codec="scalar"`` oracle mirrors the NoC's
``core="stepped"`` pattern).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.bits.lanes import (
    check_lane_range,
    lane_dtype,
    lane_fast_path,
    pack_lane_matrix,
    unpack_lane_matrix,
)
from repro.bits.packing import pack_words, unpack_words
from repro.ordering.batch import (
    argsort_popcount,
    deal_matrix,
    order_batch,
    undeal_matrix,
)
from repro.ordering.strategies import (
    FillOrder,
    OrderingMethod,
    apply_method,
    deal_into_rows,
    index_bits_required,
    undeal_rows,
)

__all__ = ["EncodedTask", "DecodedTask", "EncodedInputs", "TaskCodec"]


@dataclass(frozen=True)
class EncodedTask:
    """A task after ordering + flitisation, ready to become a packet.

    Attributes:
        payloads: per-flit payload ints (data flits first, then any
            in-band index flits).
        n_pairs: number of real (input, weight) pairs in the task.
        n_data_flits: flits carrying lanes (excludes index flits).
        method: ordering applied.
        fill: flit placement used.
        input_perm / weight_perm: ordering permutations over the
            padded pair sequence (``ordered[i] == padded[perm[i]]``);
            side-band metadata unless the codec ships indices in-band.
    """

    payloads: tuple[int, ...]
    n_pairs: int
    n_data_flits: int
    method: OrderingMethod
    fill: FillOrder
    input_perm: tuple[int, ...]
    weight_perm: tuple[int, ...]


@dataclass(frozen=True)
class DecodedTask:
    """Lane contents recovered from delivered payloads.

    ``inputs``/``weights`` are the real pairs (padding stripped) in
    *transmitted* order; :meth:`original_pairs` undoes the ordering.
    """

    inputs: tuple[int, ...]
    weights: tuple[int, ...]
    bias: int
    n_pairs: int
    method: OrderingMethod
    input_perm: tuple[int, ...]
    weight_perm: tuple[int, ...]

    def original_pairs(self) -> list[tuple[int, int]]:
        """Real (input, weight) word pairs in the original task order."""
        n_padded = len(self.input_perm)
        inputs: list[int | None] = [None] * n_padded
        weights: list[int | None] = [None] * n_padded
        for pos, src in enumerate(self.input_perm):
            inputs[src] = self.inputs[pos]
        for pos, src in enumerate(self.weight_perm):
            weights[src] = self.weights[pos]
        if any(v is None for v in inputs + weights):
            raise ValueError("invalid permutation metadata")
        return list(zip(inputs[: self.n_pairs], weights[: self.n_pairs]))  # type: ignore[arg-type]


@dataclass(frozen=True)
class EncodedInputs:
    """An input-only packet for weight-stationary PEs.

    When a PE already caches a chunk's weights (weight-stationary
    dataflow: conv filters are reused across every spatial position),
    the MC ships only the inputs — every lane of every flit is an
    input value.

    Attributes:
        payloads: per-flit payload ints.
        n_values: real input count (padding excluded).
        n_data_flits: flit count.
        method: ordering applied (baseline/affiliated keep original
            order — there are no weight counts to follow; separated
            sorts by the inputs' own counts).
        fill: flit placement.
        input_perm: ordering permutation over the padded sequence.
    """

    payloads: tuple[int, ...]
    n_values: int
    n_data_flits: int
    method: OrderingMethod
    fill: FillOrder
    input_perm: tuple[int, ...]


class TaskCodec:
    """Orders, flitises and decodes neuron tasks.

    Args:
        values_per_flit: lanes per flit (16 in the paper's setups).
        word_width: per-lane width in bits (32 or 8).
        include_index_payload: append separated-ordering recovery
            indices as extra in-band flits (overhead ablation).
    """

    def __init__(
        self,
        values_per_flit: int,
        word_width: int,
        include_index_payload: bool = False,
    ) -> None:
        if values_per_flit % 2:
            raise ValueError("values_per_flit must be even")
        self.values_per_flit = values_per_flit
        self.word_width = word_width
        self.pairs_per_flit = values_per_flit // 2
        self.link_width = values_per_flit * word_width
        self.include_index_payload = include_index_payload

    def data_flit_count(self, n_pairs: int) -> int:
        """Flits for ``n_pairs`` pairs plus the bias slot."""
        if n_pairs <= 0:
            raise ValueError("a task needs at least one pair")
        return -(-(n_pairs + 1) // self.pairs_per_flit)

    # -- encoding ---------------------------------------------------------

    def encode(
        self,
        input_words: list[int],
        weight_words: list[int],
        bias_word: int,
        method: OrderingMethod,
        fill: FillOrder = FillOrder.COLUMN_MAJOR_DEAL,
    ) -> EncodedTask:
        """Order and flitise one task."""
        if len(input_words) != len(weight_words):
            raise ValueError("inputs and weights must pair up")
        n_pairs = len(input_words)
        n_flits = self.data_flit_count(n_pairs)
        h = self.pairs_per_flit
        n_padded = n_flits * h - 1  # one slot reserved for the bias
        pad = n_padded - n_pairs
        padded_inputs = list(input_words) + [0] * pad
        padded_weights = list(weight_words) + [0] * pad
        ordered = apply_method(method, padded_inputs, padded_weights)
        # Bias rides the final sequence slot: both fill orders place it
        # in the last flit's last weight lane.
        seq_inputs = list(ordered.inputs) + [0]
        seq_weights = list(ordered.weights) + [bias_word]
        input_rows = deal_into_rows(seq_inputs, n_flits, fill)
        weight_rows = deal_into_rows(seq_weights, n_flits, fill)
        payloads = []
        for row_idx in range(n_flits):
            lanes = input_rows[row_idx] + weight_rows[row_idx]
            if len(lanes) != self.values_per_flit:
                raise AssertionError("non-uniform flit row")
            payloads.append(pack_words(lanes, self.word_width))
        if self.include_index_payload and not ordered.paired:
            payloads.extend(
                self._index_flits(ordered.weight_perm, ordered.input_perm)
            )
        return EncodedTask(
            payloads=tuple(payloads),
            n_pairs=n_pairs,
            n_data_flits=n_flits,
            method=method,
            fill=fill,
            input_perm=ordered.input_perm,
            weight_perm=ordered.weight_perm,
        )

    def _lane_matrix(self, arr: np.ndarray, what: str) -> np.ndarray:
        """Validate a word matrix against the lane width and cast it.

        The shared :func:`repro.bits.lanes.check_lane_range` mirrors
        the per-lane check the scalar
        :func:`repro.bits.packing.pack_words` performs at pack time,
        so both codecs reject out-of-range words with a ValueError —
        and the check must run *before* the dtype cast, which would
        silently wrap out-of-range values.
        """
        a = np.asarray(arr)
        check_lane_range(a, self.word_width, what)
        return a.astype(lane_dtype(self.word_width), copy=False)

    def encode_batch(
        self,
        input_matrix: np.ndarray,
        weight_matrix: np.ndarray,
        bias_words: Sequence[int],
        method: OrderingMethod,
        fill: FillOrder = FillOrder.COLUMN_MAJOR_DEAL,
    ) -> list[EncodedTask]:
        """Order and flitise a whole batch of same-shaped tasks.

        The numpy data plane: ordering, deal and lane packing each run
        once over the ``(n_tasks, n_pairs)`` matrices instead of once
        per word.  Bit-identical to calling :meth:`encode` on every
        row — same payload ints, same permutations — which the
        property suite pins across methods, fills and widths.

        Args:
            input_matrix / weight_matrix: ``(n_tasks, n_pairs)``
                unsigned word matrices (a layer's tasks all share the
                same pair count; ragged tails form their own batch).
            bias_words: ``n_tasks`` bias words.
            method: ordering applied to every task.
            fill: flit placement.

        Returns:
            One :class:`EncodedTask` per row.
        """
        inputs = np.asarray(input_matrix)
        weights = np.asarray(weight_matrix)
        if inputs.ndim != 2 or inputs.shape != weights.shape:
            raise ValueError(
                f"inputs {inputs.shape} and weights {weights.shape} must "
                "be equal-shape (n_tasks, n_pairs) matrices"
            )
        n_tasks, n_pairs = inputs.shape
        if len(bias_words) != n_tasks:
            raise ValueError(
                f"{len(bias_words)} biases for {n_tasks} tasks"
            )
        if n_tasks == 0:
            return []
        if not lane_fast_path(self.word_width):
            # Exotic lane widths: the scalar reference is the only
            # bit-exact converter, so the batch API degrades to it.
            return [
                self.encode(
                    [int(w) for w in inputs[t]],
                    [int(w) for w in weights[t]],
                    int(bias_words[t]),
                    method,
                    fill,
                )
                for t in range(n_tasks)
            ]
        n_flits = self.data_flit_count(n_pairs)
        h = self.pairs_per_flit
        n_padded = n_flits * h - 1  # one slot reserved for the bias
        dtype = lane_dtype(self.word_width)
        padded_inputs = np.zeros((n_tasks, n_padded), dtype=dtype)
        padded_inputs[:, :n_pairs] = self._lane_matrix(inputs, "input")
        padded_weights = np.zeros((n_tasks, n_padded), dtype=dtype)
        padded_weights[:, :n_pairs] = self._lane_matrix(weights, "weight")
        ordered = order_batch(method, padded_inputs, padded_weights)
        # Bias rides the final sequence slot, exactly as in encode().
        # Built element-wise: np.asarray would silently promote a plain
        # int list mixing magnitudes across 2**63 to float64, which the
        # scalar oracle accepts as uint64 words.
        try:
            bias_arr = np.fromiter(
                (int(b) for b in bias_words),
                dtype=np.uint64,
                count=n_tasks,
            )
        except (OverflowError, ValueError):
            raise ValueError(
                f"bias word does not fit in {self.word_width} bits"
            ) from None
        biases = self._lane_matrix(bias_arr.reshape(n_tasks, 1), "bias")
        seq_inputs = np.concatenate(
            [ordered.inputs, np.zeros((n_tasks, 1), dtype=dtype)], axis=1
        )
        seq_weights = np.concatenate([ordered.weights, biases], axis=1)
        input_rows = deal_matrix(seq_inputs, n_flits, fill)
        weight_rows = deal_matrix(seq_weights, n_flits, fill)
        lanes = np.concatenate([input_rows, weight_rows], axis=2)
        flat_payloads = pack_lane_matrix(
            lanes.reshape(n_tasks * n_flits, self.values_per_flit),
            self.word_width,
        )
        ship_indices = self.include_index_payload and not ordered.paired
        encoded: list[EncodedTask] = []
        for t in range(n_tasks):
            payloads = flat_payloads[t * n_flits : (t + 1) * n_flits]
            input_perm = tuple(ordered.input_perm[t].tolist())
            weight_perm = tuple(ordered.weight_perm[t].tolist())
            if ship_indices:
                payloads = payloads + self._index_flits(
                    weight_perm, input_perm
                )
            encoded.append(
                EncodedTask(
                    payloads=tuple(payloads),
                    n_pairs=n_pairs,
                    n_data_flits=n_flits,
                    method=method,
                    fill=fill,
                    input_perm=input_perm,
                    weight_perm=weight_perm,
                )
            )
        return encoded

    @staticmethod
    def _geometry_groups(
        encoded: Sequence[EncodedTask],
    ) -> dict[tuple[int, int, FillOrder], list[int]]:
        """Batch indices grouped by shared flit geometry.

        Groups preserve first-seen order and each group's index list is
        ascending, so grouped passes reassemble results in input order.
        """
        groups: dict[tuple[int, int, FillOrder], list[int]] = {}
        for i, task in enumerate(encoded):
            key = (task.n_pairs, task.n_data_flits, task.fill)
            groups.setdefault(key, []).append(i)
        return groups

    def _unpack_group(
        self, group: Sequence[EncodedTask], n_flits: int, fill: FillOrder
    ) -> tuple[np.ndarray, np.ndarray]:
        """One lane-unpack + un-deal pass over a same-geometry group.

        Returns the ``(n_tasks, n_flits * h)`` transmitted-order input
        and weight sequences (final weight slot carries the bias).
        """
        h = self.pairs_per_flit
        lanes = unpack_lane_matrix(
            [p for task in group for p in task.payloads[:n_flits]],
            self.word_width,
            self.values_per_flit,
        ).reshape(len(group), n_flits, self.values_per_flit)
        return (
            undeal_matrix(lanes[:, :, :h], fill),
            undeal_matrix(lanes[:, :, h:], fill),
        )

    def _perm_matrix(
        self, group: Sequence, attr: str, n_padded: int
    ) -> np.ndarray:
        """Stack a group's permutations, validating each is one.

        The batch twin of :meth:`DecodedTask.original_pairs`' None
        check: a malformed permutation must raise, not silently
        scatter words to wrong positions.
        """
        try:
            perm = np.asarray(
                [getattr(task, attr) for task in group], dtype=np.int64
            )
        except ValueError:
            raise ValueError("invalid permutation metadata") from None
        if perm.ndim != 2 or perm.shape != (len(group), n_padded):
            raise ValueError("invalid permutation metadata")
        expected = np.broadcast_to(
            np.arange(n_padded, dtype=np.int64), perm.shape
        )
        if not np.array_equal(np.sort(perm, axis=1), expected):
            raise ValueError("invalid permutation metadata")
        return perm

    def decode_batch(
        self, encoded: Sequence[EncodedTask]
    ) -> list[DecodedTask]:
        """Batch inverse of :meth:`encode_batch` (see :meth:`decode`).

        Tasks are grouped by flit geometry — (pair count, data flit
        count, fill order) — with one vectorised lane-unpack per
        group, so mixed-geometry batches (a layer's ragged tail, or a
        whole arrival stream) decode without de-vectorising the
        uniform majority; only groups on an exotic lane width fall
        back to the scalar reference.  Bit-identical to calling
        :meth:`decode` on every task, in input order.
        """
        if not encoded:
            return []
        out: list[DecodedTask | None] = [None] * len(encoded)
        fast = lane_fast_path(self.word_width)
        for (n_pairs, n_flits, fill), idxs in self._geometry_groups(
            encoded
        ).items():
            if self.data_flit_count(n_pairs) != n_flits:
                raise ValueError("inconsistent flit count metadata")
            group = [encoded[i] for i in idxs]
            if not fast or len(group) == 1:
                for i, task in zip(idxs, group):
                    out[i] = self.decode(task)
                continue
            seq_inputs, seq_weights = self._unpack_group(
                group, n_flits, fill
            )
            for t, (i, task) in enumerate(zip(idxs, group)):
                out[i] = DecodedTask(
                    inputs=tuple(seq_inputs[t, :-1].tolist()),
                    weights=tuple(seq_weights[t, :-1].tolist()),
                    bias=int(seq_weights[t, -1]),
                    n_pairs=n_pairs,
                    method=task.method,
                    input_perm=task.input_perm,
                    weight_perm=task.weight_perm,
                )
        return out  # type: ignore[return-value]

    def decode_batch_words(
        self, encoded: Sequence[EncodedTask]
    ) -> list[tuple[Sequence[int], Sequence[int], int]]:
        """Decode a batch straight to original-order word rows.

        The arrival-plane fast path: per geometry group, one
        vectorised lane-unpack + un-deal (as :meth:`decode_batch`)
        followed by a vectorised permutation inversion
        (``original[perm[i]] = transmitted[i]``), skipping the
        per-task :class:`DecodedTask` / :meth:`original_pairs`
        round trip entirely.

        Returns, per task in input order, ``(input_words,
        weight_words, bias)`` — the real pairs in *original* task
        order with padding stripped, exactly
        ``decode(task).original_pairs()`` unzipped.  Rows are numpy
        lane-dtype arrays on the vectorised path and plain lists on
        the scalar fallback; consumers index / iterate either.
        """
        if not encoded:
            return []
        out: list[tuple[Sequence[int], Sequence[int], int] | None]
        out = [None] * len(encoded)
        fast = lane_fast_path(self.word_width)
        for (n_pairs, n_flits, fill), idxs in self._geometry_groups(
            encoded
        ).items():
            if self.data_flit_count(n_pairs) != n_flits:
                raise ValueError("inconsistent flit count metadata")
            group = [encoded[i] for i in idxs]
            if not fast or len(group) == 1:
                for i, task in zip(idxs, group):
                    decoded = self.decode(task)
                    pairs = decoded.original_pairs()
                    out[i] = (
                        [p[0] for p in pairs],
                        [p[1] for p in pairs],
                        decoded.bias,
                    )
                continue
            seq_inputs, seq_weights = self._unpack_group(
                group, n_flits, fill
            )
            sent_inputs = seq_inputs[:, :-1]
            sent_weights = seq_weights[:, :-1]
            n_padded = sent_inputs.shape[1]
            input_perm = self._perm_matrix(group, "input_perm", n_padded)
            weight_perm = self._perm_matrix(group, "weight_perm", n_padded)
            orig_inputs = np.zeros_like(sent_inputs)
            np.put_along_axis(orig_inputs, input_perm, sent_inputs, axis=1)
            orig_weights = np.zeros_like(sent_weights)
            np.put_along_axis(
                orig_weights, weight_perm, sent_weights, axis=1
            )
            for t, i in enumerate(idxs):
                out[i] = (
                    orig_inputs[t, :n_pairs],
                    orig_weights[t, :n_pairs],
                    int(seq_weights[t, -1]),
                )
        return out  # type: ignore[return-value]

    def _index_flits(
        self, weight_perm: tuple[int, ...], input_perm: tuple[int, ...]
    ) -> list[int]:
        """Pack re-pairing indices into whole flits (in-band ablation).

        For ordered weight position ``i`` the index stored is the
        position of its original partner in the ordered input sequence.
        """
        n = len(weight_perm)
        bits = index_bits_required(n)
        if bits == 0:
            return []
        input_pos_of_original = [0] * n
        for pos, src in enumerate(input_perm):
            input_pos_of_original[src] = pos
        rel = [input_pos_of_original[src] for src in weight_perm]
        per_flit = max(1, self.link_width // bits)
        flits = []
        for start in range(0, n, per_flit):
            chunk = rel[start : start + per_flit]
            payload = 0
            for j, idx in enumerate(chunk):
                payload |= idx << (j * bits)
            flits.append(payload)
        return flits

    # -- input-only packets (weight-stationary dataflow) -------------------

    def input_flit_count(self, n_values: int) -> int:
        """Flits for an input-only packet (all lanes carry inputs)."""
        if n_values <= 0:
            raise ValueError("need at least one input value")
        return -(-n_values // self.values_per_flit)

    def encode_inputs_only(
        self,
        input_words: list[int],
        method: OrderingMethod,
        fill: FillOrder = FillOrder.COLUMN_MAJOR_DEAL,
    ) -> EncodedInputs:
        """Flitise inputs for a PE that already caches the weights.

        Baseline and affiliated ordering transmit original order (no
        weight counts exist to affiliate with, and O1's contract is
        zero recovery metadata); separated-ordering sorts the inputs by
        their own '1' counts with the usual side-band permutation.
        """
        n_values = len(input_words)
        n_flits = self.input_flit_count(n_values)
        padded_len = n_flits * self.values_per_flit
        padded = list(input_words) + [0] * (padded_len - n_values)
        if method is OrderingMethod.SEPARATED:
            from repro.ordering.strategies import sort_by_popcount

            ordered, perm = sort_by_popcount(padded)
            use_fill = fill
        else:
            ordered, perm = padded, list(range(padded_len))
            use_fill = FillOrder.ROW_MAJOR
        rows = deal_into_rows(ordered, n_flits, use_fill)
        payloads = tuple(
            pack_words(row, self.word_width) for row in rows
        )
        return EncodedInputs(
            payloads=payloads,
            n_values=n_values,
            n_data_flits=n_flits,
            method=method,
            fill=use_fill,
            input_perm=tuple(perm),
        )

    def encode_inputs_only_batch(
        self,
        input_matrix: np.ndarray,
        method: OrderingMethod,
        fill: FillOrder = FillOrder.COLUMN_MAJOR_DEAL,
    ) -> list[EncodedInputs]:
        """Batch counterpart of :meth:`encode_inputs_only`.

        Bit-identical to the scalar method on every row of the
        ``(n_tasks, n_values)`` matrix (same payloads, same
        permutations, same effective fill order).
        """
        inputs = np.asarray(input_matrix)
        if inputs.ndim != 2:
            raise ValueError(
                f"expected a (n_tasks, n_values) matrix, got shape "
                f"{inputs.shape}"
            )
        n_tasks, n_values = inputs.shape
        if n_tasks == 0:
            return []
        if not lane_fast_path(self.word_width):
            return [
                self.encode_inputs_only(
                    [int(w) for w in inputs[t]], method, fill
                )
                for t in range(n_tasks)
            ]
        n_flits = self.input_flit_count(n_values)
        padded_len = n_flits * self.values_per_flit
        dtype = lane_dtype(self.word_width)
        padded = np.zeros((n_tasks, padded_len), dtype=dtype)
        padded[:, :n_values] = self._lane_matrix(inputs, "input")
        if method is OrderingMethod.SEPARATED:
            perm = argsort_popcount(padded)
            ordered = np.take_along_axis(padded, perm, axis=1)
            use_fill = fill
        else:
            perm = np.broadcast_to(
                np.arange(padded_len, dtype=np.int64),
                (n_tasks, padded_len),
            )
            ordered = padded
            use_fill = FillOrder.ROW_MAJOR
        rows = deal_matrix(ordered, n_flits, use_fill)
        flat_payloads = pack_lane_matrix(
            rows.reshape(n_tasks * n_flits, self.values_per_flit),
            self.word_width,
        )
        return [
            EncodedInputs(
                payloads=tuple(
                    flat_payloads[t * n_flits : (t + 1) * n_flits]
                ),
                n_values=n_values,
                n_data_flits=n_flits,
                method=method,
                fill=use_fill,
                input_perm=tuple(perm[t].tolist()),
            )
            for t in range(n_tasks)
        ]

    def decode_inputs_only(self, encoded: EncodedInputs) -> list[int]:
        """Recover input words in original order (padding stripped)."""
        rows = [
            unpack_words(p, self.word_width, self.values_per_flit)
            for p in encoded.payloads
        ]
        seq = undeal_rows(rows, encoded.fill)
        padded_len = len(encoded.input_perm)
        original: list[int | None] = [None] * padded_len
        for pos, src in enumerate(encoded.input_perm):
            original[src] = seq[pos]
        if any(v is None for v in original):
            raise ValueError("invalid permutation metadata")
        return original[: encoded.n_values]  # type: ignore[return-value]

    def decode_inputs_only_batch(
        self, encoded: Sequence[EncodedInputs]
    ) -> list[Sequence[int]]:
        """Batch counterpart of :meth:`decode_inputs_only`.

        Groups by (value count, flit count, fill order) — one
        vectorised lane-unpack, un-deal, and permutation inversion
        per group — and matches the scalar method element-for-element
        in input order.  Rows are numpy lane-dtype arrays on the
        vectorised path and plain lists on the scalar fallback.
        """
        if not encoded:
            return []
        out: list[Sequence[int] | None] = [None] * len(encoded)
        fast = lane_fast_path(self.word_width)
        groups: dict[tuple[int, int, FillOrder], list[int]] = {}
        for i, task in enumerate(encoded):
            key = (task.n_values, task.n_data_flits, task.fill)
            groups.setdefault(key, []).append(i)
        for (n_values, n_flits, fill), idxs in groups.items():
            group = [encoded[i] for i in idxs]
            if not fast or len(group) == 1:
                for i, task in zip(idxs, group):
                    out[i] = self.decode_inputs_only(task)
                continue
            lanes = unpack_lane_matrix(
                [p for task in group for p in task.payloads[:n_flits]],
                self.word_width,
                self.values_per_flit,
            ).reshape(len(group), n_flits, self.values_per_flit)
            seq = undeal_matrix(lanes, fill)
            perm = self._perm_matrix(group, "input_perm", seq.shape[1])
            original = np.zeros_like(seq)
            np.put_along_axis(original, perm, seq, axis=1)
            for t, i in enumerate(idxs):
                out[i] = original[t, :n_values]
        return out  # type: ignore[return-value]

    # -- decoding ----------------------------------------------------------

    def decode(self, encoded: EncodedTask) -> DecodedTask:
        """Recover lane contents from the transmitted payloads.

        Uses only what crossed the link (the payload ints) plus the
        side-band metadata a real packet header would carry: pair
        count, method, fill order and — for separated-ordering — the
        minimal-width permutation indices.
        """
        n_pairs = encoded.n_pairs
        n_flits = encoded.n_data_flits
        if self.data_flit_count(n_pairs) != n_flits:
            raise ValueError("inconsistent flit count metadata")
        h = self.pairs_per_flit
        input_rows: list[list[int]] = []
        weight_rows: list[list[int]] = []
        for row_idx in range(n_flits):
            lanes = unpack_words(
                encoded.payloads[row_idx],
                self.word_width,
                self.values_per_flit,
            )
            input_rows.append(lanes[:h])
            weight_rows.append(lanes[h:])
        seq_inputs = undeal_rows(input_rows, encoded.fill)
        seq_weights = undeal_rows(weight_rows, encoded.fill)
        bias = seq_weights[-1]
        return DecodedTask(
            inputs=tuple(seq_inputs[:-1]),
            weights=tuple(seq_weights[:-1]),
            bias=bias,
            n_pairs=n_pairs,
            method=encoded.method,
            input_perm=encoded.input_perm,
            weight_perm=encoded.weight_perm,
        )
