"""Half-half flitisation of neuron tasks (Fig. 2) and its inverse.

Each flit carries ``values_per_flit`` lanes: the left half holds
inputs, the right half the corresponding weights.  A task of N pairs
plus its bias occupies ``ceil((N + 1) / h)`` flits (h = pairs per
flit): LeNet's 25-pair tasks become exactly the 4-flit packet of
Fig. 2, with "1 input + 1 weight + 1 bias + 13 zeros" in the tail.

Padding zero-pairs are part of the transmitted sequence, and —
crucially — they participate in the ordering: under the '1'-count
descending sort they sink below the real values, and the column-major
deal (Fig. 3) then aligns them into the same lanes of consecutive
flits, where they cause zero transitions.  The baseline keeps the
original order, which concentrates the padding in the last flit
(exactly Fig. 2's layout).  The bias is pinned to the final sequence
slot, which both fill orders place in the last flit's last weight lane.

Decoding reverses the placement and — for separated-ordering —
re-pairs values through the minimal-width permutation indices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.packing import pack_words, unpack_words
from repro.ordering.strategies import (
    FillOrder,
    OrderingMethod,
    apply_method,
    deal_into_rows,
    index_bits_required,
    undeal_rows,
)

__all__ = ["EncodedTask", "DecodedTask", "EncodedInputs", "TaskCodec"]


@dataclass(frozen=True)
class EncodedTask:
    """A task after ordering + flitisation, ready to become a packet.

    Attributes:
        payloads: per-flit payload ints (data flits first, then any
            in-band index flits).
        n_pairs: number of real (input, weight) pairs in the task.
        n_data_flits: flits carrying lanes (excludes index flits).
        method: ordering applied.
        fill: flit placement used.
        input_perm / weight_perm: ordering permutations over the
            padded pair sequence (``ordered[i] == padded[perm[i]]``);
            side-band metadata unless the codec ships indices in-band.
    """

    payloads: tuple[int, ...]
    n_pairs: int
    n_data_flits: int
    method: OrderingMethod
    fill: FillOrder
    input_perm: tuple[int, ...]
    weight_perm: tuple[int, ...]


@dataclass(frozen=True)
class DecodedTask:
    """Lane contents recovered from delivered payloads.

    ``inputs``/``weights`` are the real pairs (padding stripped) in
    *transmitted* order; :meth:`original_pairs` undoes the ordering.
    """

    inputs: tuple[int, ...]
    weights: tuple[int, ...]
    bias: int
    n_pairs: int
    method: OrderingMethod
    input_perm: tuple[int, ...]
    weight_perm: tuple[int, ...]

    def original_pairs(self) -> list[tuple[int, int]]:
        """Real (input, weight) word pairs in the original task order."""
        n_padded = len(self.input_perm)
        inputs: list[int | None] = [None] * n_padded
        weights: list[int | None] = [None] * n_padded
        for pos, src in enumerate(self.input_perm):
            inputs[src] = self.inputs[pos]
        for pos, src in enumerate(self.weight_perm):
            weights[src] = self.weights[pos]
        if any(v is None for v in inputs + weights):
            raise ValueError("invalid permutation metadata")
        return list(zip(inputs[: self.n_pairs], weights[: self.n_pairs]))  # type: ignore[arg-type]


@dataclass(frozen=True)
class EncodedInputs:
    """An input-only packet for weight-stationary PEs.

    When a PE already caches a chunk's weights (weight-stationary
    dataflow: conv filters are reused across every spatial position),
    the MC ships only the inputs — every lane of every flit is an
    input value.

    Attributes:
        payloads: per-flit payload ints.
        n_values: real input count (padding excluded).
        n_data_flits: flit count.
        method: ordering applied (baseline/affiliated keep original
            order — there are no weight counts to follow; separated
            sorts by the inputs' own counts).
        fill: flit placement.
        input_perm: ordering permutation over the padded sequence.
    """

    payloads: tuple[int, ...]
    n_values: int
    n_data_flits: int
    method: OrderingMethod
    fill: FillOrder
    input_perm: tuple[int, ...]


class TaskCodec:
    """Orders, flitises and decodes neuron tasks.

    Args:
        values_per_flit: lanes per flit (16 in the paper's setups).
        word_width: per-lane width in bits (32 or 8).
        include_index_payload: append separated-ordering recovery
            indices as extra in-band flits (overhead ablation).
    """

    def __init__(
        self,
        values_per_flit: int,
        word_width: int,
        include_index_payload: bool = False,
    ) -> None:
        if values_per_flit % 2:
            raise ValueError("values_per_flit must be even")
        self.values_per_flit = values_per_flit
        self.word_width = word_width
        self.pairs_per_flit = values_per_flit // 2
        self.link_width = values_per_flit * word_width
        self.include_index_payload = include_index_payload

    def data_flit_count(self, n_pairs: int) -> int:
        """Flits for ``n_pairs`` pairs plus the bias slot."""
        if n_pairs <= 0:
            raise ValueError("a task needs at least one pair")
        return -(-(n_pairs + 1) // self.pairs_per_flit)

    # -- encoding ---------------------------------------------------------

    def encode(
        self,
        input_words: list[int],
        weight_words: list[int],
        bias_word: int,
        method: OrderingMethod,
        fill: FillOrder = FillOrder.COLUMN_MAJOR_DEAL,
    ) -> EncodedTask:
        """Order and flitise one task."""
        if len(input_words) != len(weight_words):
            raise ValueError("inputs and weights must pair up")
        n_pairs = len(input_words)
        n_flits = self.data_flit_count(n_pairs)
        h = self.pairs_per_flit
        n_padded = n_flits * h - 1  # one slot reserved for the bias
        pad = n_padded - n_pairs
        padded_inputs = list(input_words) + [0] * pad
        padded_weights = list(weight_words) + [0] * pad
        ordered = apply_method(method, padded_inputs, padded_weights)
        # Bias rides the final sequence slot: both fill orders place it
        # in the last flit's last weight lane.
        seq_inputs = list(ordered.inputs) + [0]
        seq_weights = list(ordered.weights) + [bias_word]
        input_rows = deal_into_rows(seq_inputs, n_flits, fill)
        weight_rows = deal_into_rows(seq_weights, n_flits, fill)
        payloads = []
        for row_idx in range(n_flits):
            lanes = input_rows[row_idx] + weight_rows[row_idx]
            if len(lanes) != self.values_per_flit:
                raise AssertionError("non-uniform flit row")
            payloads.append(pack_words(lanes, self.word_width))
        if self.include_index_payload and not ordered.paired:
            payloads.extend(
                self._index_flits(ordered.weight_perm, ordered.input_perm)
            )
        return EncodedTask(
            payloads=tuple(payloads),
            n_pairs=n_pairs,
            n_data_flits=n_flits,
            method=method,
            fill=fill,
            input_perm=ordered.input_perm,
            weight_perm=ordered.weight_perm,
        )

    def _index_flits(
        self, weight_perm: tuple[int, ...], input_perm: tuple[int, ...]
    ) -> list[int]:
        """Pack re-pairing indices into whole flits (in-band ablation).

        For ordered weight position ``i`` the index stored is the
        position of its original partner in the ordered input sequence.
        """
        n = len(weight_perm)
        bits = index_bits_required(n)
        if bits == 0:
            return []
        input_pos_of_original = [0] * n
        for pos, src in enumerate(input_perm):
            input_pos_of_original[src] = pos
        rel = [input_pos_of_original[src] for src in weight_perm]
        per_flit = max(1, self.link_width // bits)
        flits = []
        for start in range(0, n, per_flit):
            chunk = rel[start : start + per_flit]
            payload = 0
            for j, idx in enumerate(chunk):
                payload |= idx << (j * bits)
            flits.append(payload)
        return flits

    # -- input-only packets (weight-stationary dataflow) -------------------

    def input_flit_count(self, n_values: int) -> int:
        """Flits for an input-only packet (all lanes carry inputs)."""
        if n_values <= 0:
            raise ValueError("need at least one input value")
        return -(-n_values // self.values_per_flit)

    def encode_inputs_only(
        self,
        input_words: list[int],
        method: OrderingMethod,
        fill: FillOrder = FillOrder.COLUMN_MAJOR_DEAL,
    ) -> EncodedInputs:
        """Flitise inputs for a PE that already caches the weights.

        Baseline and affiliated ordering transmit original order (no
        weight counts exist to affiliate with, and O1's contract is
        zero recovery metadata); separated-ordering sorts the inputs by
        their own '1' counts with the usual side-band permutation.
        """
        n_values = len(input_words)
        n_flits = self.input_flit_count(n_values)
        padded_len = n_flits * self.values_per_flit
        padded = list(input_words) + [0] * (padded_len - n_values)
        if method is OrderingMethod.SEPARATED:
            from repro.ordering.strategies import sort_by_popcount

            ordered, perm = sort_by_popcount(padded)
            use_fill = fill
        else:
            ordered, perm = padded, list(range(padded_len))
            use_fill = FillOrder.ROW_MAJOR
        rows = deal_into_rows(ordered, n_flits, use_fill)
        payloads = tuple(
            pack_words(row, self.word_width) for row in rows
        )
        return EncodedInputs(
            payloads=payloads,
            n_values=n_values,
            n_data_flits=n_flits,
            method=method,
            fill=use_fill,
            input_perm=tuple(perm),
        )

    def decode_inputs_only(self, encoded: EncodedInputs) -> list[int]:
        """Recover input words in original order (padding stripped)."""
        rows = [
            unpack_words(p, self.word_width, self.values_per_flit)
            for p in encoded.payloads
        ]
        seq = undeal_rows(rows, encoded.fill)
        padded_len = len(encoded.input_perm)
        original: list[int | None] = [None] * padded_len
        for pos, src in enumerate(encoded.input_perm):
            original[src] = seq[pos]
        if any(v is None for v in original):
            raise ValueError("invalid permutation metadata")
        return original[: encoded.n_values]  # type: ignore[return-value]

    # -- decoding ----------------------------------------------------------

    def decode(self, encoded: EncodedTask) -> DecodedTask:
        """Recover lane contents from the transmitted payloads.

        Uses only what crossed the link (the payload ints) plus the
        side-band metadata a real packet header would carry: pair
        count, method, fill order and — for separated-ordering — the
        minimal-width permutation indices.
        """
        n_pairs = encoded.n_pairs
        n_flits = encoded.n_data_flits
        if self.data_flit_count(n_pairs) != n_flits:
            raise ValueError("inconsistent flit count metadata")
        h = self.pairs_per_flit
        input_rows: list[list[int]] = []
        weight_rows: list[list[int]] = []
        for row_idx in range(n_flits):
            lanes = unpack_words(
                encoded.payloads[row_idx],
                self.word_width,
                self.values_per_flit,
            )
            input_rows.append(lanes[:h])
            weight_rows.append(lanes[h:])
        seq_inputs = undeal_rows(input_rows, encoded.fill)
        seq_weights = undeal_rows(weight_rows, encoded.fill)
        bias = seq_weights[-1]
        return DecodedTask(
            inputs=tuple(seq_inputs[:-1]),
            weights=tuple(seq_weights[:-1]),
            bias=bias,
            n_pairs=n_pairs,
            method=encoded.method,
            input_perm=encoded.input_perm,
            weight_perm=encoded.weight_perm,
        )
