"""Configuration of the NOC-DNA (NoC-based DNN accelerator).

Bundles the NoC structure, the data format on the links, the ordering
method under test, and the workload-scaling knobs.  The paper's two
link setups are captured by :func:`link_width_for`: 512-bit links carry
16 float-32 values, 128-bit links carry 16 fixed-8 values (Sec. V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any

from repro.noc.network import CORES, NoCConfig
from repro.ordering.strategies import FillOrder, OrderingMethod

__all__ = ["AcceleratorConfig", "link_width_for", "TASK_CODECS", "VALUES_PER_FLIT"]

# Both paper link configurations carry 16 values per flit.
VALUES_PER_FLIT = 16

# Task-codec implementations (see repro.accelerator.flitize): the
# vectorised batch data plane is the default, the scalar per-task path
# is retained as the bit-exact oracle — the codec twin of the NoC's
# "event"/"stepped" core pair.
TASK_CODECS = ("batch", "scalar")


def link_width_for(data_format: str, values_per_flit: int = VALUES_PER_FLIT) -> int:
    """Link width in bits for a data format at 16 values per flit."""
    word = {"float32": 32, "fixed8": 8}.get(data_format)
    if word is None:
        raise ValueError(f"unknown data format {data_format!r}")
    return word * values_per_flit


@dataclass(frozen=True)
class AcceleratorConfig:
    """Full NOC-DNA experiment configuration.

    Attributes:
        width / height: mesh dimensions (paper: 4x4 and 8x8).
        n_mcs: number of memory controllers (paper: 2, 4, 8).
        data_format: "float32" or "fixed8".
        ordering: O0 baseline / O1 affiliated / O2 separated.
        fill_order: placement of ordered values into flits (deal =
            paper's Fig. 3; row-major kept for the ablation).
        values_per_flit: lanes per flit (16 in both paper setups).
        max_tasks_per_layer: cap on neuron tasks sampled per layer
            (workload scaling, see DESIGN.md §5; None = all tasks).
        chunk_pairs: pairs per packet chunk; the paper's task is
            "k*k inputs + k*k weights + 1 bias" (Fig. 2), so larger
            neurons are decomposed into chunks of this size (default
            25 = LeNet's 5x5 kernel plane; None = whole neuron per
            packet).
        compute_delay: PE cycles between receiving a task packet and
            emitting its response.
        layer_barrier: drain the NoC between layers (the paper's
            layer-level interval, default) or queue every layer's
            packets upfront and let them pipeline freely.
        packet_scheduling: MC injection order — "fifo" (task order) or
            "count_desc" (packets sorted by total payload '1' count,
            extending the ordering idea across packet boundaries; an
            extension study, not a paper configuration).
        mapping_policy: task-to-PE assignment — "round_robin" (paper
            style spreading) or "group_affine" (all tasks sharing a
            weight block land on the same PE, enabling weight reuse).
        weight_cache: weight-stationary dataflow — PEs cache each
            (layer, group, chunk) weight block; repeat tasks ship
            input-only packets (extension study).
        include_responses: also send PE->MC single-flit result packets.
        include_index_payload: ship separated-ordering recovery indices
            in-band as extra payload flits (overhead ablation; the
            default models the paper's side-band minimal index).
        n_vcs / vc_depth / routing / injection_rate: NoC parameters.
        core: pin the NoC cycle-loop core ("event" or "stepped");
            None uses the process default.  Sweepable (``repro sweep
            --cores``) for cross-core checks at campaign scale.
        codec: task encode/decode implementation — "batch" (default)
            runs the vectorised numpy data plane over whole layers of
            tasks, "scalar" the retained per-task reference.  The two
            are pinned bit-identical, so like ``core`` this is an
            execution detail: it never changes results, only wall
            time.
        seed: workload sampling seed.
    """

    width: int = 4
    height: int = 4
    n_mcs: int = 2
    data_format: str = "float32"
    ordering: OrderingMethod = OrderingMethod.BASELINE
    fill_order: FillOrder = FillOrder.COLUMN_MAJOR_DEAL
    values_per_flit: int = VALUES_PER_FLIT
    max_tasks_per_layer: int | None = 128
    chunk_pairs: int | None = 25
    compute_delay: int = 2
    layer_barrier: bool = True
    packet_scheduling: str = "fifo"
    mapping_policy: str = "round_robin"
    weight_cache: bool = False
    include_responses: bool = True
    include_index_payload: bool = False
    n_vcs: int = 4
    vc_depth: int = 4
    routing: str = "xy"
    injection_rate: int = 1
    record_ejection: bool = True
    core: str | None = None
    codec: str = "batch"
    seed: int = 2025
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.n_mcs <= 0:
            raise ValueError("need at least one memory controller")
        if self.n_mcs >= self.width * self.height:
            raise ValueError("memory controllers cannot fill the whole mesh")
        if self.values_per_flit % 2:
            raise ValueError(
                "values_per_flit must be even (half inputs, half weights)"
            )
        if self.packet_scheduling not in ("fifo", "count_desc"):
            raise ValueError(
                f"unknown packet scheduling {self.packet_scheduling!r}"
            )
        if self.mapping_policy not in ("round_robin", "group_affine"):
            raise ValueError(
                f"unknown mapping policy {self.mapping_policy!r}"
            )
        if self.weight_cache and self.mapping_policy != "group_affine":
            raise ValueError(
                "weight_cache requires the group_affine mapping policy "
                "(weight reuse needs group-stable PE assignment)"
            )
        if self.core is not None and self.core not in CORES:
            raise ValueError(
                f"unknown network core {self.core!r}; use one of {CORES}"
            )
        if self.codec not in TASK_CODECS:
            raise ValueError(
                f"unknown task codec {self.codec!r}; "
                f"use one of {TASK_CODECS}"
            )
        link_width_for(self.data_format)  # validates the format name

    @property
    def word_width(self) -> int:
        """Per-value wire width in bits."""
        return {"float32": 32, "fixed8": 8}[self.data_format]

    @property
    def link_width(self) -> int:
        """Flit/link width in bits."""
        return self.word_width * self.values_per_flit

    @property
    def pairs_per_flit(self) -> int:
        """(input, weight) pairs per flit under half-half flitisation."""
        return self.values_per_flit // 2

    def noc_config(self) -> NoCConfig:
        """Derive the NoC structural configuration."""
        return NoCConfig(
            width=self.width,
            height=self.height,
            n_vcs=self.n_vcs,
            vc_depth=self.vc_depth,
            link_width=self.link_width,
            routing=self.routing,
            record_ejection=self.record_ejection,
            injection_rate=self.injection_rate,
            core=self.core,
        )

    def label(self) -> str:
        """Short experiment label, e.g. "4x4 MC2 float32 O1"."""
        return (
            f"{self.width}x{self.height} MC{self.n_mcs} "
            f"{self.data_format} {self.ordering.value}"
        )

    # -- serialization ---------------------------------------------------
    #
    # The campaign engine hashes configs into cache keys and persists
    # them in JSONL stores, so the dict form must be stable, canonical
    # (enums as their string values) and loss-free.

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; exact inverse of :meth:`from_dict`."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (OrderingMethod, FillOrder)):
                value = value.value
            elif isinstance(value, dict):
                value = dict(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AcceleratorConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected (they signal a version mismatch the
        cache must treat as a different configuration, not silently
        drop).
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown AcceleratorConfig fields: {sorted(unknown)}"
            )
        kwargs = dict(data)
        if "ordering" in kwargs and not isinstance(
            kwargs["ordering"], OrderingMethod
        ):
            kwargs["ordering"] = OrderingMethod.from_name(kwargs["ordering"])
        if "fill_order" in kwargs and not isinstance(
            kwargs["fill_order"], FillOrder
        ):
            kwargs["fill_order"] = FillOrder(kwargs["fill_order"])
        return cls(**kwargs)
