"""Atomic filesystem write helpers shared by every artifact producer.

Every durable artifact the repo writes — ``BENCH_*.json`` snapshots,
``*.trace.gz`` captures, CSV exports, cache entries — goes through the
same temp-then-rename discipline: write the full content to a sibling
temp file, flush and fsync it, then :func:`os.replace` it over the
destination.  ``os.replace`` is atomic on POSIX (and on Windows for
same-volume renames), so a reader never observes a torn file and an
interrupt mid-write leaves at worst an orphaned ``*.tmp.<pid>`` sibling,
never a corrupted artifact.
"""

from __future__ import annotations

import os
import pathlib
from contextlib import contextmanager
from typing import IO, Iterator

__all__ = ["atomic_open", "atomic_write_bytes", "atomic_write_text"]


def _temp_path(path: pathlib.Path) -> pathlib.Path:
    # PID-suffixed so concurrent writers (pool workers, parallel CI
    # jobs) never clobber each other's in-flight temp file.
    return path.with_name(f"{path.name}.tmp.{os.getpid()}")


@contextmanager
def atomic_open(
    path: str | os.PathLike,
    mode: str = "w",
    *,
    newline: str | None = None,
) -> Iterator[IO]:
    """Open a temp sibling for writing; rename over ``path`` on success.

    The rename only happens if the body completes without raising —
    on error the temp file is removed and the destination is untouched.
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_open is write-only; got mode {mode!r}")
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = _temp_path(target)
    fh = open(tmp, mode, newline=newline)
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
    except BaseException:
        fh.close()
        tmp.unlink(missing_ok=True)
        raise
    fh.close()
    os.replace(tmp, target)


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp-then-rename."""
    with atomic_open(path, "wb") as fh:
        fh.write(data)


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """Write ``text`` to ``path`` via temp-then-rename."""
    with atomic_open(path, "w") as fh:
        fh.write(text)
