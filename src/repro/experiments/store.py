"""Append-only JSONL result store with CSV export.

Every campaign run appends one record per job (cached or freshly
simulated), so the store is the durable, replayable log a ``repro
report`` reads — reporting never re-simulates.  Records are plain
dicts (see runner.py for the schema); :meth:`ResultStore.latest_by_job`
deduplicates re-runs of the same point, keeping the newest record.
"""

from __future__ import annotations

import csv
import json
import os
import pathlib
from typing import Any, Iterator

__all__ = ["ResultStore"]

# Scalar result fields promoted into CSV columns, in column order.
# The union over job kinds: model/batch rows leave the synthetic-only
# columns empty and vice versa.
_CSV_RESULT_FIELDS = (
    "total_bit_transitions",
    "total_cycles",
    "flit_hops",
    "tasks_verified",
    "tasks_total",
    "mean_packet_latency",
    "ordering_latency_cycles",
    "n_images",
    "packets_delivered",
    "recorded_bit_transitions",
    "cores_agree",
    "steps_executed",
    "idle_cycles_skipped",
)
_CSV_CONFIG_FIELDS = (
    "width",
    "height",
    "n_mcs",
    "data_format",
    "ordering",
    "max_tasks_per_layer",
    "pattern",
    "payload",
    "n_packets",
    "flits_per_packet",
    "injection_window",
    "hotspot_node",
    "link_width",
    "core",
    "trace",
    "coding",
    "seed",
)


def _flat_config(config: dict[str, Any]) -> dict[str, Any]:
    """Flatten a kind's config dict for column lookup.

    Accelerator configs are already flat; synthetic configs nest
    ``traffic`` and ``noc`` sections (whose field names are disjoint),
    so both merge into one namespace.
    """
    flat = dict(config)
    for section in ("noc", "traffic"):
        nested = flat.pop(section, None)
        if isinstance(nested, dict):
            flat.update(nested)
    return flat


class ResultStore:
    """One campaign's JSONL log of job records.

    Attributes:
        path: the JSONL file.
        corrupt_skipped: unparseable lines skipped by the last read
            (a torn append must not take the whole campaign log down).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self.corrupt_skipped = 0

    def append(self, record: dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")

    def extend(self, records: list[dict[str, Any]]) -> None:
        for record in records:
            self.append(record)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        if not self.path.is_file():
            return
        self.corrupt_skipped = 0
        with self.path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self.corrupt_skipped += 1
                    continue
                if isinstance(record, dict):
                    yield record
                else:
                    self.corrupt_skipped += 1

    def load(self) -> list[dict[str, Any]]:
        return list(self)

    def latest_by_job(self) -> dict[str, dict[str, Any]]:
        """Newest record per job_id (append order = recency)."""
        latest: dict[str, dict[str, Any]] = {}
        for record in self:
            latest[record["job_id"]] = record
        return latest

    def to_csv(self, path: str | os.PathLike) -> int:
        """Flatten successful records into a CSV; returns row count.

        One row per job (latest record wins) with the campaign/job
        identity, the headline config fields, and the scalar results.
        """
        rows = []
        for record in self.latest_by_job().values():
            if record.get("status") != "ok":
                continue
            config = _flat_config(record.get("config", {}))
            result = record.get("result", {})
            row: dict[str, Any] = {
                "job_id": record["job_id"],
                "campaign": record.get("campaign", ""),
                "kind": record.get("kind", "model"),
                "model": record.get("model", ""),
                "cached": record.get("cached", False),
            }
            for name in _CSV_CONFIG_FIELDS:
                row[name] = config.get(name)
            for name in _CSV_RESULT_FIELDS:
                row[name] = result.get(name)
            rows.append(row)
        out = pathlib.Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        fieldnames = (
            ["job_id", "campaign", "kind", "model", "cached"]
            + list(_CSV_CONFIG_FIELDS)
            + list(_CSV_RESULT_FIELDS)
        )
        with out.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(rows)
        return len(rows)
