"""Append-only JSONL result store, campaign journal, and CSV export.

Every campaign run appends one record per job (cached or freshly
simulated), so the store is the durable, replayable log a ``repro
report`` reads — reporting never re-simulates.  Records are plain
dicts (see runner.py for the schema); :meth:`ResultStore.latest_by_job`
deduplicates re-runs of the same point, keeping the newest record.

:class:`CampaignJournal` is the crash-safety half: an append-only,
fsynced event log the runner writes *as jobs complete* (not at
campaign end), so a crash, kill, or Ctrl-C mid-sweep loses at most the
in-flight jobs.  ``repro sweep --resume`` replays the journal to skip
every journaled-complete job; :meth:`CampaignJournal.recover`
truncates a torn tail (an append cut mid-line by the crash) via an
atomic temp-then-rename rewrite before the entries are read back.
"""

from __future__ import annotations

import csv
import json
import os
import pathlib
from typing import Any, Iterator

from repro.ioutil import atomic_open, atomic_write_bytes

__all__ = ["CampaignJournal", "ResultStore"]

# Scalar result fields promoted into CSV columns, in column order.
# The union over job kinds: model/batch rows leave the synthetic-only
# columns empty and vice versa.
_CSV_RESULT_FIELDS = (
    "total_bit_transitions",
    "total_cycles",
    "flit_hops",
    "tasks_verified",
    "tasks_total",
    "mean_packet_latency",
    "ordering_latency_cycles",
    "n_images",
    "packets_delivered",
    "recorded_bit_transitions",
    "cores_agree",
    "steps_executed",
    "idle_cycles_skipped",
)
_CSV_CONFIG_FIELDS = (
    "width",
    "height",
    "n_mcs",
    "data_format",
    "ordering",
    "max_tasks_per_layer",
    "pattern",
    "payload",
    "n_packets",
    "flits_per_packet",
    "injection_window",
    "hotspot_node",
    "link_width",
    "core",
    "trace",
    "coding",
    "seed",
)


def _flat_config(config: dict[str, Any]) -> dict[str, Any]:
    """Flatten a kind's config dict for column lookup.

    Accelerator configs are already flat; synthetic configs nest
    ``traffic`` and ``noc`` sections (whose field names are disjoint),
    so both merge into one namespace.
    """
    flat = dict(config)
    for section in ("noc", "traffic"):
        nested = flat.pop(section, None)
        if isinstance(nested, dict):
            flat.update(nested)
    return flat


class ResultStore:
    """One campaign's JSONL log of job records.

    Attributes:
        path: the JSONL file.
        corrupt_skipped: unparseable lines skipped by the last read
            (a torn append must not take the whole campaign log down).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self.corrupt_skipped = 0

    def append(self, record: dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")

    def extend(self, records: list[dict[str, Any]]) -> None:
        for record in records:
            self.append(record)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        if not self.path.is_file():
            return
        self.corrupt_skipped = 0
        with self.path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self.corrupt_skipped += 1
                    continue
                if isinstance(record, dict):
                    yield record
                else:
                    self.corrupt_skipped += 1

    def load(self) -> list[dict[str, Any]]:
        return list(self)

    def latest_by_job(self) -> dict[str, dict[str, Any]]:
        """Newest record per job_id (append order = recency)."""
        latest: dict[str, dict[str, Any]] = {}
        for record in self:
            latest[record["job_id"]] = record
        return latest

    def to_csv(self, path: str | os.PathLike) -> int:
        """Flatten successful records into a CSV; returns row count.

        One row per job (latest record wins) with the campaign/job
        identity, the headline config fields, and the scalar results.
        """
        rows = []
        for record in self.latest_by_job().values():
            if record.get("status") != "ok":
                continue
            config = _flat_config(record.get("config", {}))
            result = record.get("result", {})
            row: dict[str, Any] = {
                "job_id": record["job_id"],
                "campaign": record.get("campaign", ""),
                "kind": record.get("kind", "model"),
                "model": record.get("model", ""),
                "cached": record.get("cached", False),
            }
            for name in _CSV_CONFIG_FIELDS:
                row[name] = config.get(name)
            for name in _CSV_RESULT_FIELDS:
                row[name] = result.get(name)
            rows.append(row)
        fieldnames = (
            ["job_id", "campaign", "kind", "model", "cached"]
            + list(_CSV_CONFIG_FIELDS)
            + list(_CSV_RESULT_FIELDS)
        )
        # Atomic temp-then-rename: an interrupted export never leaves a
        # torn CSV where a previous complete export used to be.
        with atomic_open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(rows)
        return len(rows)


class CampaignJournal:
    """Append-only, crash-safe event log of one campaign's progress.

    Events are JSONL objects with an ``"event"`` key:

    * ``start`` — campaign id, name, the expanded spec dict, and the
      store path, written once when the journal is created.  Resume
      rebuilds the whole sweep from this entry alone.
    * ``job`` — one completed (status ``ok``) record, appended the
      moment the job finalises.  ``completed()`` is the resume set.
    * ``resume`` / ``checkpoint`` / ``end`` — lifecycle markers;
      ``checkpoint`` (written on SIGINT) and ``end`` carry the
      structured failure report and done/remaining counts.

    Appends flush and fsync, so a journaled job survives any crash of
    the parent.  A crash *during* an append leaves a torn tail — an
    unterminated partial line — which :meth:`recover` truncates off via
    an atomic temp-then-rename rewrite; every reader calls it first.

    Attributes:
        path: the journal file.
        torn_bytes_dropped: tail bytes removed by the last
            :meth:`recover`.
        corrupt_skipped: interior lines the last read skipped.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self.torn_bytes_dropped = 0
        self.corrupt_skipped = 0

    def exists(self) -> bool:
        return self.path.is_file() and self.path.stat().st_size > 0

    def append(self, entry: dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def recover(self) -> int:
        """Drop a torn (unterminated) tail; returns bytes removed.

        The rewrite goes through a temp file and one atomic rename, so
        a second crash during recovery can't lose intact entries.
        """
        self.torn_bytes_dropped = 0
        if not self.path.is_file():
            return 0
        raw = self.path.read_bytes()
        if not raw or raw.endswith(b"\n"):
            return 0
        cut = raw.rfind(b"\n") + 1  # 0 when no newline at all
        self.torn_bytes_dropped = len(raw) - cut
        atomic_write_bytes(self.path, raw[:cut])
        return self.torn_bytes_dropped

    def entries(self) -> list[dict[str, Any]]:
        """Parsed journal entries; torn tail and bad lines skipped."""
        self.corrupt_skipped = 0
        if not self.path.is_file():
            return []
        out: list[dict[str, Any]] = []
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        torn = lines.pop() if lines and lines[-1] else None
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                self.corrupt_skipped += 1
                continue
            if isinstance(entry, dict):
                out.append(entry)
            else:
                self.corrupt_skipped += 1
        if torn is not None:
            # Tolerate a torn tail on read too (recover() removes it
            # on disk); a *parseable* unterminated line is kept — the
            # crash happened between write and the trailing newline.
            try:
                entry = json.loads(torn)
                if isinstance(entry, dict):
                    out.append(entry)
            except ValueError:
                pass
        return out

    def start(
        self,
        campaign_id: str,
        name: str,
        spec: dict[str, Any] | None,
        store_path: str | None = None,
    ) -> None:
        self.append(
            {
                "event": "start",
                "campaign_id": campaign_id,
                "campaign": name,
                "spec": spec,
                "store": store_path,
            }
        )

    def start_entry(self) -> dict[str, Any] | None:
        """The ``start`` event, or None for an empty/foreign file."""
        for entry in self.entries():
            if entry.get("event") == "start":
                return entry
        return None

    def record_job(self, record: dict[str, Any]) -> None:
        self.append({"event": "job", "record": record})

    def completed(self) -> dict[str, dict[str, Any]]:
        """job_id -> record for every journaled-complete (ok) job."""
        done: dict[str, dict[str, Any]] = {}
        for entry in self.entries():
            if entry.get("event") != "job":
                continue
            record = entry.get("record")
            if (
                isinstance(record, dict)
                and record.get("status") == "ok"
                and record.get("job_id")
            ):
                done[record["job_id"]] = record
        return done
