"""Aggregation and paper-style reporting over persisted campaign records.

These helpers turn a :class:`~repro.experiments.store.ResultStore` (or
an in-memory record list) back into the paper's grids without touching
the simulator: :func:`pivot` is the generic
``{row -> {column -> value}}`` aggregation,
:func:`fig12_report` renders the Fig. 12/13 absolute-BT and
reduction-vs-O0 tables per data format, reusing the exact
:func:`~repro.analysis.summary.format_series` layout the benches record.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.analysis.summary import format_series, reduction_rate

__all__ = [
    "ok_records",
    "pivot",
    "mesh_row_key",
    "model_row_key",
    "reduction_series",
    "fig12_report",
]

Record = dict[str, Any]


def ok_records(records: Iterable[Record]) -> list[Record]:
    """Only successful simulation records."""
    return [r for r in records if r.get("status") == "ok"]


def mesh_row_key(record: Record) -> str:
    """Fig. 12 row key: "WxH MCn"."""
    config = record["config"]
    return (
        f"{config['width']}x{config['height']} MC{config['n_mcs']}"
    )


def model_row_key(record: Record) -> str:
    """Fig. 13 row key: the model name."""
    return str(record.get("model", "?"))


def pivot(
    records: Iterable[Record],
    row_key: Callable[[Record], str] = mesh_row_key,
    col_key: Callable[[Record], str] = lambda r: r["config"]["ordering"],
    value: Callable[[Record], float] = lambda r: float(
        r["result"]["total_bit_transitions"]
    ),
) -> dict[str, dict[str, float]]:
    """Aggregate records into the {row -> {column -> value}} grid shape.

    Later records win on key collisions (store append order = recency),
    matching :meth:`ResultStore.latest_by_job` semantics.
    """
    series: dict[str, dict[str, float]] = {}
    for record in ok_records(records):
        series.setdefault(row_key(record), {})[col_key(record)] = value(
            record
        )
    return series


def reduction_series(
    series: dict[str, dict[str, float]], baseline: str = "O0"
) -> dict[str, dict[str, float]]:
    """Per-row reduction rates vs the baseline column, in percent."""
    out: dict[str, dict[str, float]] = {}
    for row, values in series.items():
        if baseline not in values:
            continue
        base = values[baseline]
        out[row] = {
            col: reduction_rate(base, value)
            for col, value in values.items()
            if col != baseline
        }
    return out


def fig12_report(
    records: Iterable[Record],
    row_key: Callable[[Record], str] = mesh_row_key,
    title: str = "Absolute BTs",
) -> str:
    """Render the Fig. 12-style grids, one block per data format."""
    records = ok_records(records)
    formats = sorted({r["config"]["data_format"] for r in records})
    if not formats:
        return "(no successful records)"
    blocks: list[str] = []
    for fmt in formats:
        subset = [r for r in records if r["config"]["data_format"] == fmt]
        series = pivot(subset, row_key=row_key)
        blocks.append(format_series(series, f"{title} ({fmt})"))
        reductions = reduction_series(series)
        if reductions:
            blocks.append(
                format_series(reductions, f"Reductions vs O0, % ({fmt})")
            )
    return "\n\n".join(blocks)
