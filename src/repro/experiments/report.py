"""Aggregation and paper-style reporting over persisted campaign records.

These helpers turn a :class:`~repro.experiments.store.ResultStore` (or
an in-memory record list) back into the paper's grids without touching
the simulator: :func:`pivot` is the generic
``{row -> {column -> value}}`` aggregation,
:func:`fig12_report` renders the Fig. 12/13 absolute-BT and
reduction-vs-O0 tables per data format, reusing the exact
:func:`~repro.analysis.summary.format_series` layout the benches
record.  The layer is kind-aware: :func:`layer_pivot` /
:func:`link_pivot` aggregate per-layer and per-link BTs (fanning batch
records out across their images), and :func:`campaign_report` renders
whatever mix of model, batch, and synthetic records a store holds.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Iterator

from repro.analysis.summary import format_series, reduction_rate

__all__ = [
    "REPORT_PIVOTS",
    "ok_records",
    "skipped_records",
    "record_kind",
    "pivot",
    "mesh_row_key",
    "model_row_key",
    "ordering_col_key",
    "layer_pivot",
    "link_pivot",
    "reduction_series",
    "fig12_report",
    "effort_block",
    "campaign_report",
    "failures_report",
]

Record = dict[str, Any]

REPORT_PIVOTS = ("mesh", "model", "layer", "link", "tenant")


def ok_records(records: Iterable[Record]) -> list[Record]:
    """Only reportable simulation records.

    A reportable record is ``status == "ok"`` *and* structurally sound
    (a result object is present).  Failed jobs, and ok-status records
    whose result payload is missing entirely, are excluded here — the
    CLI surfaces them via :func:`skipped_records` instead of letting a
    single bad line take the whole report down.
    """
    return [
        r
        for r in records
        if r.get("status") == "ok" and isinstance(r.get("result"), dict)
    ]


def skipped_records(
    records: Iterable[Record],
) -> list[tuple[Record, str]]:
    """(record, reason) for every record a report will skip.

    The complement of :func:`ok_records`: failed jobs carry their
    captured error, malformed ok-records the structural reason.
    """
    skipped: list[tuple[Record, str]] = []
    for record in records:
        status = record.get("status")
        if status == "ok":
            if not isinstance(record.get("result"), dict):
                skipped.append((record, "ok record carries no result"))
        else:
            skipped.append(
                (record, str(record.get("error") or f"status={status!r}"))
            )
    return skipped


def record_kind(record: Record) -> str:
    """The record's job kind; pre-registry records default to model."""
    return str(record.get("kind", "model"))


def mesh_row_key(record: Record) -> str:
    """Fig. 12 row key: "WxH MCn" (accelerator kinds), "WxH" (synthetic)."""
    config = record["config"]
    if "noc" in config:
        noc = config["noc"]
        return f"{noc['width']}x{noc['height']}"
    return (
        f"{config['width']}x{config['height']} MC{config['n_mcs']}"
    )


def model_row_key(record: Record) -> str:
    """Fig. 13 row key: the model name."""
    return str(record.get("model", "?"))


def ordering_col_key(record: Record) -> str:
    """Default column key: the ordering method, or — for synthetic
    records, which carry no ordering — the traffic pattern."""
    config = record.get("config", {})
    if "ordering" in config:
        return str(config["ordering"])
    return str(config.get("traffic", {}).get("pattern", "?"))


def pivot(
    records: Iterable[Record],
    row_key: Callable[[Record], str] = mesh_row_key,
    col_key: Callable[[Record], str] = ordering_col_key,
    value: Callable[[Record], float] = lambda r: float(
        r["result"]["total_bit_transitions"]
    ),
) -> dict[str, dict[str, float]]:
    """Aggregate records into the {row -> {column -> value}} grid shape.

    Later records win on key collisions (store append order = recency),
    matching :meth:`ResultStore.latest_by_job` semantics.  Records
    whose result payload lacks the pivoted field (older stores, foreign
    kinds) are skipped rather than raising — a sweep that mixes job
    generations must still report the rows it can.
    """
    series: dict[str, dict[str, float]] = {}
    for record in ok_records(records):
        try:
            cell = value(record)
        except (KeyError, TypeError):
            continue
        series.setdefault(row_key(record), {})[col_key(record)] = cell
    return series


def _layer_items(record: Record) -> Iterator[tuple[str, float]]:
    """(layer_name, bit_transitions) pairs of one record.

    Model records carry their layers directly; batch records fan out
    across the per-image results.  Kinds without layers yield nothing.
    """
    result = record.get("result") or {}
    if "layers" in result:
        for layer in result["layers"]:
            yield layer["layer_name"], float(layer["bit_transitions"])
    elif "images" in result:
        for image in result["images"]:
            for layer in image.get("layers", []):
                yield layer["layer_name"], float(layer["bit_transitions"])


def layer_pivot(
    records: Iterable[Record],
    col_key: Callable[[Record], str] = ordering_col_key,
) -> dict[str, dict[str, float]]:
    """{layer_name -> {column -> summed BTs}} across all records.

    Unlike :func:`pivot` this *sums* colliding cells: a batch record
    contributes every image's layer, and a multi-mesh grid aggregates
    each layer over its meshes.
    """
    series: dict[str, dict[str, float]] = {}
    for record in ok_records(records):
        col = col_key(record)
        for layer_name, bts in _layer_items(record):
            row = series.setdefault(layer_name, {})
            row[col] = row.get(col, 0.0) + bts
    return series


def link_pivot(
    records: Iterable[Record],
    col_key: Callable[[Record], str] = ordering_col_key,
) -> dict[str, dict[str, float]]:
    """{link_name -> {column -> summed BTs}} across all records.

    Every kind's result payload carries ``per_link`` (router outport ->
    accumulated BTs), so model, batch, and synthetic records all land
    in the same grid.  Cells sum like :func:`layer_pivot` — but link
    names repeat across topologies (R0.EAST exists in every mesh), so
    when the record set spans more than one mesh/config context, each
    row is prefixed with it rather than conflating distinct physical
    links into one cell.
    """
    records = ok_records(records)
    if records and all("trace" in r.get("config", {}) for r in records):
        context = _replay_row_key
    elif records and all("noc" in r.get("config", {}) for r in records):
        context = _synthetic_row_key_for(records)
    else:
        context = mesh_row_key
    multiple = len({context(r) for r in records}) > 1
    series: dict[str, dict[str, float]] = {}
    for record in records:
        col = col_key(record)
        prefix = f"{context(record)} " if multiple else ""
        per_link = (record.get("result") or {}).get("per_link", {})
        for link_name, bts in per_link.items():
            row = series.setdefault(f"{prefix}{link_name}", {})
            row[col] = row.get(col, 0.0) + float(bts)
    return series


def reduction_series(
    series: dict[str, dict[str, float]], baseline: str = "O0"
) -> dict[str, dict[str, float]]:
    """Per-row reduction rates vs the baseline column, in percent.

    Core-suffixed columns (``O2@stepped`` from a ``--cores`` sweep)
    reduce against the matching suffixed baseline (``O0@stepped``), so
    adding the core axis never silently drops the reduction tables.
    """
    out: dict[str, dict[str, float]] = {}
    for row, values in series.items():
        reductions: dict[str, float] = {}
        for col, value in values.items():
            prefix, at, suffix = col.partition("@")
            if prefix == baseline:
                continue
            base = values.get(f"{baseline}{at}{suffix}")
            if base is None:
                continue
            reductions[col] = reduction_rate(base, value)
        if reductions:
            out[row] = reductions
    return out


def _core_aware_col_key(
    records: list[Record],
) -> Callable[[Record], str]:
    """Column key that separates cycle-loop cores when they vary.

    A ``--cores event,stepped`` cross-check produces records whose
    configs differ only in ``core``; without this, the mesh/model
    pivots would silently overwrite one core's cell with the other's
    and the summing layer/link pivots would double-count BTs.  With
    it, each core gets its own column (``O0@stepped``) — a cross-core
    divergence becomes visible side by side.
    """
    cores = {r.get("config", {}).get("core") for r in records}
    if len(cores) <= 1:
        return ordering_col_key

    def col_key(record: Record) -> str:
        core = record.get("config", {}).get("core") or "default"
        return f"{ordering_col_key(record)}@{core}"

    return col_key


def fig12_report(
    records: Iterable[Record],
    row_key: Callable[[Record], str] = mesh_row_key,
    title: str = "Absolute BTs",
    col_key: Callable[[Record], str] | None = None,
) -> str:
    """Render the Fig. 12-style grids, one block per data format."""
    records = [
        r
        for r in ok_records(records)
        if "data_format" in r.get("config", {})
    ]
    formats = sorted({r["config"]["data_format"] for r in records})
    if not formats:
        return "(no successful records)"
    if col_key is None:
        col_key = _core_aware_col_key(records)
    blocks: list[str] = []
    for fmt in formats:
        subset = [r for r in records if r["config"]["data_format"] == fmt]
        series = pivot(subset, row_key=row_key, col_key=col_key)
        blocks.append(format_series(series, f"{title} ({fmt})"))
        reductions = reduction_series(series)
        if reductions:
            blocks.append(
                format_series(reductions, f"Reductions vs O0, % ({fmt})")
            )
    return "\n\n".join(blocks)


def _per_format_blocks(
    records: list[Record],
    make_series: Callable[[list[Record]], dict[str, dict[str, float]]],
    title: str,
    empty_note: str,
    reduction_title: str | None = None,
) -> list[str]:
    """One block per data format — BT magnitudes of different formats
    must never sum into one cell (mirrors fig12_report's grouping)."""
    formats = sorted(
        {r["config"].get("data_format", "?") for r in records}
    )
    blocks: list[str] = []
    for fmt in formats:
        subset = [
            r for r in records
            if r["config"].get("data_format", "?") == fmt
        ]
        series = make_series(subset)
        if not series:
            continue
        blocks.append(format_series(series, f"{title} ({fmt})"))
        if reduction_title:
            reductions = reduction_series(series)
            if reductions:
                blocks.append(
                    format_series(reductions, f"{reduction_title} ({fmt})")
                )
    return blocks or [empty_note]


def _accel_blocks(records: list[Record], pivot_name: str) -> list[str]:
    """Report blocks for the accelerator kinds (model / batch)."""
    col_key = _core_aware_col_key(ok_records(records))
    if pivot_name == "tenant":
        return ["(model/batch records have no tenant pivot)"]
    if pivot_name == "model":
        return [fig12_report(records, row_key=model_row_key)]
    if pivot_name == "layer":
        return _per_format_blocks(
            records,
            lambda subset: layer_pivot(subset, col_key=col_key),
            "Per-layer BTs",
            "(no per-layer data in records)",
            reduction_title="Per-layer reductions vs O0, %",
        )
    if pivot_name == "link":
        return _per_format_blocks(
            records,
            lambda subset: link_pivot(subset, col_key=col_key),
            "Per-link BTs",
            "(no per-link data in records)",
        )
    return [fig12_report(records)]


def _folded_row_key(
    records: list[Record],
    flat: Callable[[Record], dict[str, Any]],
    col_key: Callable[[Record], str],
    skip: tuple[str, ...],
) -> Callable[[Record], str]:
    """Row key covering every config field the record set varies.

    The base row is the mesh shape; any flat config field outside
    ``skip`` that differs between records sharing a (mesh, column)
    cell — payload, n_packets, link_width, a swept seed, ... — is
    folded into the row label so pivot() never silently overwrites one
    point with another.
    """
    cells: dict[tuple[str, str], list[dict[str, Any]]] = {}
    for record in records:
        key = (mesh_row_key(record), col_key(record))
        cells.setdefault(key, []).append(flat(record))
    # The per-point seed is usually *derived* from the other fields,
    # so it varies with them and would pollute every label; fold it
    # only if the real axes (second pass below) can't disambiguate.
    folded: set[str] = set()
    for group in cells.values():
        for field in group[0]:
            if field in skip or field == "seed":
                continue
            if len({repr(g.get(field)) for g in group}) > 1:
                folded.add(field)

    def label_for(values: dict[str, Any], base: str) -> str:
        for field in sorted(folded):
            value = values.get(field)
            part = value if isinstance(value, str) else f"{field}={value}"
            base = f"{base} {part}"
        return base

    for (base, _), group in cells.items():
        by_label: dict[str, set[str]] = {}
        for g in group:
            by_label.setdefault(label_for(g, base), set()).add(
                repr(sorted(g.items()))
            )
        if any(len(variants) > 1 for variants in by_label.values()):
            # Distinct points still share a label: an explicit seed
            # axis — fold the seed as a last resort.
            folded.add("seed")
            break

    def row_key(record: Record) -> str:
        return label_for(flat(record), mesh_row_key(record))

    return row_key


def _synthetic_row_key_for(
    records: list[Record],
) -> Callable[[Record], str]:
    """Folding row key over the traffic + NoC flat fields."""

    def flat(record: Record) -> dict[str, Any]:
        config = record["config"]
        return {**config.get("traffic", {}), **config.get("noc", {})}

    return _folded_row_key(
        records, flat, ordering_col_key, ("pattern", "width", "height")
    )


def _synthetic_blocks(records: list[Record], pivot_name: str) -> list[str]:
    """Report blocks for synthetic-traffic records."""
    if pivot_name == "link":
        series = link_pivot(records)
        if not series:
            return ["(no per-link data in records)"]
        return [format_series(series, "Synthetic per-link BTs")]
    # Be explicit rather than silently rendering the default grid.
    if pivot_name == "layer":
        return ["(synthetic records have no per-layer data)"]
    if pivot_name == "model":
        return ["(synthetic records have no model pivot)"]
    if pivot_name == "tenant":
        return ["(synthetic records have no tenant pivot)"]
    row_key = _synthetic_row_key_for(records)
    blocks = [
        format_series(
            pivot(records, row_key=row_key),
            "Synthetic traffic BTs",
        ),
        format_series(
            pivot(
                records,
                row_key=row_key,
                value=lambda r: float(r["result"]["mean_packet_latency"]),
            ),
            "Synthetic mean packet latency (cycles)",
        ),
    ]
    return blocks


def _replay_row_key(record: Record) -> str:
    """Replay row key: trace basename plus the replay target."""
    config = record.get("config", {})
    row = os.path.basename(str(config.get("trace", "?")))
    core = config.get("core", "offline")
    if core != "offline":
        row = f"{row} {core}"
    if config.get("link_latency") is not None:
        row = f"{row} lat{config['link_latency']}"
    return row


def _replay_col_key(record: Record) -> str:
    """Replay column key: the re-applied ordering (+ coding)."""
    config = record.get("config", {})
    col = str(config.get("ordering", "?"))
    if config.get("coding", "none") != "none":
        col = f"{col}+{config['coding']}"
    return col


def _replay_blocks(records: list[Record], pivot_name: str) -> list[str]:
    """Report blocks for trace-replay records."""
    if pivot_name == "layer":
        return ["(replay records have no per-layer data)"]
    if pivot_name == "model":
        return ["(replay records have no model pivot)"]
    if pivot_name == "tenant":
        return ["(replay records have no tenant pivot)"]
    if pivot_name == "link":
        series = link_pivot(records, col_key=_replay_col_key)
        if not series:
            return ["(no per-link data in records)"]
        return [format_series(series, "Replayed per-link BTs")]
    series = pivot(records, row_key=_replay_row_key, col_key=_replay_col_key)
    if not series:
        return ["(no successful replay records)"]
    blocks = [format_series(series, "Replayed BTs")]
    # Baseline is each row's replayed "none" ordering — equal to the
    # recorded traffic only when that row replays without overrides.
    reductions = reduction_series(series, baseline="none")
    if reductions:
        blocks.append(
            format_series(reductions, "Replay reductions vs none, %")
        )
    return blocks


def _serving_flat(record: Record) -> dict[str, Any]:
    """Flat serving+NoC field view; tenants collapse to the mix."""
    config = record.get("config", {})
    serving = dict(config.get("serving", {}))
    tenants = serving.pop("tenants", [])
    serving["tenants"] = "+".join(str(t.get("name", "?")) for t in tenants)
    return {**serving, **config.get("noc", {})}


def _serving_col_key_for(
    records: list[Record],
) -> Callable[[Record], str]:
    """Serving column key: the fleet ordering, core-suffixed when the
    record set spans several cycle-loop cores (mirrors
    :func:`_core_aware_col_key` for the nested serving config)."""
    cores = {
        r.get("config", {}).get("noc", {}).get("core") for r in records
    }

    def col_key(record: Record) -> str:
        config = record.get("config", {})
        col = str(config.get("serving", {}).get("ordering", "?"))
        if len(cores) > 1:
            core = config.get("noc", {}).get("core") or "default"
            col = f"{col}@{core}"
        return col

    return col_key


#: Per-tenant metric columns of the ``--pivot tenant`` grids.
_TENANT_METRICS = (
    ("p50 req", "p50_request_latency"),
    ("p99 req", "p99_request_latency"),
    ("p99 pkt", "p99_packet_latency"),
    ("BTs", "bit_transitions"),
    ("completed", "requests_completed"),
    ("rejected", "requests_rejected"),
)


def _serving_blocks(records: list[Record], pivot_name: str) -> list[str]:
    """Report blocks for serving-fleet records."""
    if pivot_name == "layer":
        return ["(serving records have no per-layer data)"]
    if pivot_name == "model":
        return [
            "(serving records have no model pivot; use --pivot tenant)"
        ]
    col_key = _serving_col_key_for(records)
    # Ordering is the column, so it never folds into default rows.
    row_key = _folded_row_key(
        records,
        _serving_flat,
        col_key,
        ("ordering", "width", "height", "core"),
    )
    if pivot_name == "link":
        multiple = len({row_key(r) for r in records}) > 1
        series: dict[str, dict[str, float]] = {}
        for record in records:
            prefix = f"{row_key(record)} " if multiple else ""
            col = col_key(record)
            per_link = (record.get("result") or {}).get("per_link", {})
            for link_name, bts in per_link.items():
                row = series.setdefault(f"{prefix}{link_name}", {})
                row[col] = row.get(col, 0.0) + float(bts)
        if not series:
            return ["(no per-link data in records)"]
        return [format_series(series, "Serving per-link BTs")]
    if pivot_name == "tenant":
        # Context rows fold *everything* varied (including ordering)
        # since the columns are metrics, not orderings.
        context_key = _folded_row_key(
            records,
            _serving_flat,
            lambda record: "tenants",
            ("width", "height", "core"),
        )
        multiple = len({context_key(r) for r in records}) > 1
        table: dict[str, dict[str, float]] = {}
        bt_series: dict[str, dict[str, float]] = {}
        for record in records:
            prefix = f"{context_key(record)} " if multiple else ""
            bt_prefix = f"{row_key(record)} " if multiple else ""
            col = col_key(record)
            for tenant in (record.get("result") or {}).get("tenants", []):
                name = tenant.get("name", "?")
                table[f"{prefix}{name}"] = {
                    label: float(tenant.get(field, 0))
                    for label, field in _TENANT_METRICS
                }
                bt_row = bt_series.setdefault(f"{bt_prefix}{name}", {})
                bt_row[col] = float(tenant.get("bit_transitions", 0))
        if not table:
            return ["(no per-tenant data in records)"]
        blocks = [
            format_series(table, "Per-tenant serving stats"),
            format_series(bt_series, "Per-tenant BTs"),
        ]
        reductions = reduction_series(bt_series)
        if reductions:
            blocks.append(
                format_series(
                    reductions, "Per-tenant BT reductions vs O0, %"
                )
            )
        return blocks
    series = pivot(records, row_key=row_key, col_key=col_key)
    if not series:
        return ["(no successful serving records)"]
    blocks = [format_series(series, "Serving fleet BTs")]
    reductions = reduction_series(series)
    if reductions:
        blocks.append(
            format_series(reductions, "Serving BT reductions vs O0, %")
        )
    blocks.append(
        format_series(
            pivot(
                records,
                row_key=row_key,
                col_key=col_key,
                value=lambda r: float(r["result"]["p99_packet_latency"]),
            ),
            "Serving p99 packet latency (cycles)",
        )
    )
    return blocks


def effort_block(records: Iterable[Record]) -> str | None:
    """Aggregate cycle-loop effort over records that measured it.

    Surfaces ``steps_executed`` / ``idle_cycles_skipped`` (recorded in
    results since the observability layer) as one summary block; None
    when no record carries the counters, so stores written by older
    versions render byte-identically.
    """
    steps = skipped = cycles = 0
    seen = False
    for record in records:
        result = record.get("result") or {}
        record_steps = result.get("steps_executed") or 0
        record_skipped = result.get("idle_cycles_skipped") or 0
        if not record_steps and not record_skipped:
            continue
        seen = True
        steps += int(record_steps)
        skipped += int(record_skipped)
        cycles += int(result.get("total_cycles") or 0)
    if not seen:
        return None
    lines = [
        "Event-core effort",
        f"  steps executed      : {steps}",
        f"  idle cycles skipped : {skipped}",
    ]
    if cycles:
        lines.append(
            f"  simulated cycles    : {cycles} "
            f"({100.0 * skipped / cycles:.1f}% fast-forwarded)"
        )
    return "\n".join(lines)


def failures_report(records: Iterable[Record]) -> str:
    """Render the failure view for ``repro report --failures``.

    One line per job whose *latest* record failed (a point that failed
    once but succeeded on a re-run is healthy and not listed), with its
    error class, attempt count, and quarantine flag, plus per-class
    totals.  Records written before the resilience layer carry no
    class/attempt annotations and render as ``permanent`` / 1 attempt.
    """
    latest: dict[str, Record] = {}
    for record in records:
        job = record.get("job_id")
        if job:
            latest[job] = record
    failed = [
        r for r in latest.values() if r.get("status") != "ok"
    ]
    if not failed:
        return f"(no failed jobs across {len(latest)} job(s))"
    by_class: dict[str, int] = {}
    lines = [f"Failed jobs ({len(failed)} of {len(latest)}):"]
    for record in failed:
        error_class = str(record.get("error_class", "permanent"))
        by_class[error_class] = by_class.get(error_class, 0) + 1
        attempts = record.get("attempts", 1)
        flags = [error_class, f"{attempts} attempt(s)"]
        if record.get("quarantined"):
            flags.append("QUARANTINED")
        lines.append(
            f"  {record.get('job_id', '?')} "
            f"[{record.get('kind', 'model')}] "
            f"({', '.join(flags)}): {record.get('error', '?')}"
        )
    lines.append("")
    lines.append("By class:")
    for error_class in sorted(by_class):
        lines.append(f"  {error_class:<14}: {by_class[error_class]}")
    return "\n".join(lines)


def _report_family(record: Record) -> str:
    """Which block family renders a record.

    Dispatches through the kind registry (``JobKind.report_family``);
    records of unregistered kinds fall back to the accelerator family,
    whose result schema the base :class:`JobKind` guarantees.
    """
    from repro.experiments.kinds import job_kind

    try:
        return job_kind(record_kind(record)).report_family
    except ValueError:
        return "accelerator"


def campaign_report(
    records: Iterable[Record], pivot_name: str = "mesh"
) -> str:
    """Kind-aware campaign rendering for ``repro sweep`` / ``report``.

    Accelerator-family records (model/batch) render the Fig. 12/13
    grids for the ``mesh`` and ``model`` pivots, or the per-layer /
    per-link aggregations; synthetic-family records render BT +
    latency grids by pattern (``link`` pivots them per link instead).
    When one store mixes several kinds of the same family, each kind
    gets its own block group so same-config points don't collide.
    """
    if pivot_name not in REPORT_PIVOTS:
        raise ValueError(
            f"unknown pivot {pivot_name!r}; use one of {REPORT_PIVOTS}"
        )
    records = ok_records(records)
    accel = [r for r in records if _report_family(r) == "accelerator"]
    synth = [r for r in records if _report_family(r) == "synthetic"]
    replay = [r for r in records if _report_family(r) == "replay"]
    serving = [r for r in records if _report_family(r) == "serving"]
    blocks: list[str] = []
    accel_kinds = sorted({record_kind(r) for r in accel})
    for kind_name in accel_kinds:
        subset = [r for r in accel if record_kind(r) == kind_name]
        if len(accel_kinds) > 1:
            blocks.append(f"== {kind_name} jobs ==")
        blocks.extend(_accel_blocks(subset, pivot_name))
    if synth:
        blocks.extend(_synthetic_blocks(synth, pivot_name))
    if replay:
        blocks.extend(_replay_blocks(replay, pivot_name))
    if serving:
        blocks.extend(_serving_blocks(serving, pivot_name))
    if not blocks:
        return "(no successful records)"
    effort = effort_block(records)
    if effort is not None:
        blocks.append(effort)
    return "\n\n".join(blocks)
