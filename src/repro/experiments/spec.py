"""Declarative sweep specifications for the campaign engine.

A :class:`SweepSpec` names a cartesian grid over the fields of one job
kind's config (see :mod:`repro.experiments.kinds`) and expands it into
a deterministic list of :class:`JobSpec` — one fully-resolved
simulation each.  The paper's evaluation grids map directly: Fig. 12
is ``mesh x ordering`` for one model/format, Fig. 13 is
``model x ordering``, Table I adds ``data_format``; synthetic-traffic
sweeps walk ``mesh x pattern`` instead.

Per-job seeds are derived from the campaign seed and the job's
parameters with :func:`derive_seed`, so a job's workload sampling is
reproducible regardless of which worker runs it, in which order, or
whether the grid around it grows or shrinks.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.experiments.hashing import canonical_json, derive_seed
from repro.experiments.kinds import (
    MODEL_NAMES,
    job_kind,
    parse_mesh_axis,
)

__all__ = [
    "MODEL_NAMES",
    "campaign_id",
    "canonical_json",
    "derive_seed",
    "JobSpec",
    "SweepSpec",
    "parse_mesh_axis",
]


@dataclass(frozen=True)
class JobSpec:
    """One fully-resolved simulation point of a campaign.

    Attributes:
        model: workload model name (one of :data:`MODEL_NAMES`) for the
            model/batch kinds; None for synthetic jobs.
        config: the kind's configuration object
            (:class:`~repro.accelerator.config.AcceleratorConfig` for
            model/batch, :class:`~repro.experiments.kinds.SyntheticJobConfig`
            for synthetic).
        model_seed: RNG seed for model construction / training.
        image_seed: dataset seed for the sample image(s).
        max_cycles_per_layer: simulator drain budget (per barrier
            window for model/batch; whole-run budget for synthetic).
        kind: registered job kind name (default ``"model"``).
        n_images: batch size (batch kind only; must stay 1 otherwise).
    """

    model: str | None = None
    config: Any = None
    model_seed: int = 1
    image_seed: int = 5
    max_cycles_per_layer: int = 2_000_000
    kind: str = "model"
    n_images: int = 1

    def __post_init__(self) -> None:
        handler = job_kind(self.kind)  # unknown kinds fail loudly here
        if self.config is None:
            raise ValueError(f"kind {self.kind!r} jobs need a config")
        handler.validate_job(self)

    def key_payload(self) -> dict[str, Any]:
        """The JSON-compatible identity hashed into the cache key."""
        return job_kind(self.kind).key_payload(self)

    @property
    def job_id(self) -> str:
        """Short stable identifier (prefix of the identity hash)."""
        digest = hashlib.sha256(
            canonical_json(self.key_payload()).encode()
        ).hexdigest()
        return digest[:12]

    def label(self) -> str:
        """Human-readable point label, e.g. "lenet 4x4 MC2 fixed8 O2"."""
        return job_kind(self.kind).job_label(self)

    def to_dict(self) -> dict[str, Any]:
        return self.key_payload()

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        kwargs = dict(data)
        handler = job_kind(kwargs.setdefault("kind", "model"))
        kwargs["config"] = handler.config_from_dict(kwargs["config"])
        return cls(**kwargs)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative cartesian sweep over one job kind.

    Attributes:
        name: campaign name (store/report labelling).
        kind: registered job kind every expanded job runs as.
        model: model name, or the axis ``"model"`` overrides it
            (model/batch kinds; ignored for synthetic).
        base: config keyword defaults shared by every point.
        axes: axis name -> list of values.  Axis names are the kind's
            config field names, plus the pseudo-axes ``"model"`` (list
            of model names), ``"mesh"`` (list of "WxH:MCS" strings or
            {width, height, n_mcs} dicts), and — for the batch kind —
            ``"n_images"``.
        seed: campaign seed; per-job config seeds derive from it
            unless ``base``/``axes`` pin ``seed`` explicitly.
        model_seed / image_seed: workload construction seeds.
        max_cycles_per_layer: simulator drain budget per job.
        n_images: batch size for the batch kind.
    """

    name: str = "sweep"
    model: str = "lenet"
    base: dict[str, Any] = field(default_factory=dict)
    axes: dict[str, list[Any]] = field(default_factory=dict)
    seed: int = 0
    model_seed: int = 1
    image_seed: int = 5
    max_cycles_per_layer: int = 2_000_000
    kind: str = "model"
    n_images: int = 1

    def __post_init__(self) -> None:
        # Unknown kinds and kind-inapplicable fields (which the kind's
        # expansion would silently drop) both fail at spec build time.
        job_kind(self.kind).validate_spec(self)
        if "kind" in self.axes or "kind" in self.base:
            raise ValueError(
                "'kind' is not sweepable; run one sweep per job kind"
            )
        for axis, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {axis!r} has no values")

    @property
    def n_points(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def expand(self) -> list[JobSpec]:
        """Expand the grid into jobs, in deterministic axis order.

        The last axis varies fastest (itertools.product order over the
        axes in insertion order), matching how the paper's tables walk
        their grids.  All validation — unknown config fields, bad
        values, impossible meshes — happens here, with the kind named
        in the error, never deep inside a worker process.
        """
        handler = job_kind(self.kind)
        axis_names = list(self.axes)
        jobs: list[JobSpec] = []
        for combo in itertools.product(
            *(self.axes[name] for name in axis_names)
        ):
            point = dict(zip(axis_names, combo))
            kwargs = handler.point_kwargs(self, point)
            jobs.append(JobSpec(kind=self.kind, **kwargs))
        return jobs

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "model": self.model,
            "base": dict(self.base),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "seed": self.seed,
            "model_seed": self.model_seed,
            "image_seed": self.image_seed,
            "max_cycles_per_layer": self.max_cycles_per_layer,
            "n_images": self.n_images,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SweepSpec":
        return cls(**data)


def campaign_id(spec: SweepSpec) -> str:
    """Stable campaign identifier: name plus a short spec digest.

    Hashes the full spec dict, so the same grid always journals under
    the same id (``repro sweep --resume <id>``) while any grid edit —
    new axis value, different seed — starts a fresh journal instead of
    silently resuming a different campaign's.
    """
    digest = hashlib.sha256(
        canonical_json(spec.to_dict()).encode()
    ).hexdigest()
    return f"{spec.name}-{digest[:8]}"
