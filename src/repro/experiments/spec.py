"""Declarative sweep specifications for the campaign engine.

A :class:`SweepSpec` names a cartesian grid over
:class:`~repro.accelerator.config.AcceleratorConfig` fields (plus the
pseudo-axes ``model`` and ``mesh``) and expands it into a deterministic
list of :class:`JobSpec` — one fully-resolved simulation each.  The
paper's evaluation grids map directly: Fig. 12 is
``mesh x ordering`` for one model/format, Fig. 13 is
``model x ordering``, Table I adds ``data_format``.

Per-job seeds are derived from the campaign seed and the job's
parameters with :func:`derive_seed`, so a job's workload sampling is
reproducible regardless of which worker runs it, in which order, or
whether the grid around it grows or shrinks.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any

from repro.accelerator.config import AcceleratorConfig

__all__ = [
    "MODEL_NAMES",
    "canonical_json",
    "derive_seed",
    "JobSpec",
    "SweepSpec",
    "parse_mesh_axis",
]

# Model names the job executor knows how to build (see runner.py).
MODEL_NAMES = ("lenet", "darknet", "trained_lenet")

# Pseudo-axes expanded specially rather than passed to the config.
_MESH_KEYS = ("width", "height", "n_mcs")


def _json_default(obj: Any) -> Any:
    if isinstance(obj, enum.Enum):
        return obj.value
    raise TypeError(f"not JSON-canonicalisable: {obj!r}")


def canonical_json(obj: Any) -> str:
    """Canonical (sorted-key, compact) JSON used for hashing.

    Enums serialise as their values so specs built from
    :class:`OrderingMethod` members and from plain strings hash alike.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=_json_default
    )


def derive_seed(*parts: Any) -> int:
    """Deterministic 32-bit seed from arbitrary JSON-compatible parts."""
    digest = hashlib.sha256(canonical_json(list(parts)).encode()).digest()
    return int.from_bytes(digest[:4], "big")


def parse_mesh_axis(text: str) -> dict[str, int]:
    """Parse "WxH:MCS" (e.g. "8x8:4") into mesh config fields."""
    try:
        mesh, _, mcs = text.partition(":")
        w, h = mesh.lower().split("x")
        return {
            "width": int(w),
            "height": int(h),
            "n_mcs": int(mcs) if mcs else 2,
        }
    except ValueError as exc:
        raise ValueError(
            f"bad mesh {text!r}; use WxH:MCS like 8x8:4"
        ) from exc


@dataclass(frozen=True)
class JobSpec:
    """One fully-resolved simulation point of a campaign.

    Attributes:
        model: workload model name (one of :data:`MODEL_NAMES`).
        config: the accelerator configuration to simulate.
        model_seed: RNG seed for model construction / training.
        image_seed: dataset seed for the sample image.
        max_cycles_per_layer: simulator drain budget.
    """

    model: str
    config: AcceleratorConfig
    model_seed: int = 1
    image_seed: int = 5
    max_cycles_per_layer: int = 2_000_000

    def __post_init__(self) -> None:
        if self.model not in MODEL_NAMES:
            raise ValueError(
                f"unknown model {self.model!r}; use one of {MODEL_NAMES}"
            )

    def key_payload(self) -> dict[str, Any]:
        """The JSON-compatible identity hashed into the cache key."""
        return {
            "model": self.model,
            "model_seed": self.model_seed,
            "image_seed": self.image_seed,
            "max_cycles_per_layer": self.max_cycles_per_layer,
            "config": self.config.to_dict(),
        }

    @property
    def job_id(self) -> str:
        """Short stable identifier (prefix of the identity hash)."""
        digest = hashlib.sha256(
            canonical_json(self.key_payload()).encode()
        ).hexdigest()
        return digest[:12]

    def label(self) -> str:
        """Human-readable point label, e.g. "lenet 4x4 MC2 fixed8 O2"."""
        return f"{self.model} {self.config.label()}"

    def to_dict(self) -> dict[str, Any]:
        return self.key_payload()

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        kwargs = dict(data)
        kwargs["config"] = AcceleratorConfig.from_dict(kwargs["config"])
        return cls(**kwargs)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative cartesian sweep.

    Attributes:
        name: campaign name (store/report labelling).
        model: model name, or the axis ``"model"`` overrides it.
        base: AcceleratorConfig keyword defaults shared by every point.
        axes: axis name -> list of values.  Axis names are
            AcceleratorConfig field names, plus ``"model"`` (list of
            model names) and ``"mesh"`` (list of "WxH:MCS" strings or
            {width, height, n_mcs} dicts).
        seed: campaign seed; per-job config seeds derive from it
            unless ``base``/``axes`` pin ``seed`` explicitly.
        model_seed / image_seed: workload construction seeds.
        max_cycles_per_layer: simulator drain budget per job.
    """

    name: str = "sweep"
    model: str = "lenet"
    base: dict[str, Any] = field(default_factory=dict)
    axes: dict[str, list[Any]] = field(default_factory=dict)
    seed: int = 0
    model_seed: int = 1
    image_seed: int = 5
    max_cycles_per_layer: int = 2_000_000

    def __post_init__(self) -> None:
        for axis, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {axis!r} has no values")

    @property
    def n_points(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def expand(self) -> list[JobSpec]:
        """Expand the grid into jobs, in deterministic axis order.

        The last axis varies fastest (itertools.product order over the
        axes in insertion order), matching how the paper's tables walk
        their grids.
        """
        axis_names = list(self.axes)
        jobs: list[JobSpec] = []
        for combo in itertools.product(
            *(self.axes[name] for name in axis_names)
        ):
            point = dict(zip(axis_names, combo))
            model = point.pop("model", self.model)
            kwargs: dict[str, Any] = dict(self.base)
            mesh = point.pop("mesh", None)
            if mesh is not None:
                mesh_kw = (
                    parse_mesh_axis(mesh) if isinstance(mesh, str) else mesh
                )
                kwargs.update(
                    {k: mesh_kw[k] for k in _MESH_KEYS if k in mesh_kw}
                )
            kwargs.update(point)
            if "seed" not in kwargs:
                kwargs["seed"] = derive_seed(self.seed, model, kwargs)
            jobs.append(
                JobSpec(
                    model=model,
                    config=AcceleratorConfig.from_dict(kwargs),
                    model_seed=self.model_seed,
                    image_seed=self.image_seed,
                    max_cycles_per_layer=self.max_cycles_per_layer,
                )
            )
        return jobs

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "model": self.model,
            "base": dict(self.base),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "seed": self.seed,
            "model_seed": self.model_seed,
            "image_seed": self.image_seed,
            "max_cycles_per_layer": self.max_cycles_per_layer,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SweepSpec":
        return cls(**data)
