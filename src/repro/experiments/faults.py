"""Deterministic fault injection for the campaign engine.

The resilience features of :class:`~repro.experiments.runner.
CampaignRunner` — per-job timeouts, retry with backoff, worker-crash
recovery, quarantine, journaled resume — are each proven against the
failure they handle by injecting that failure into the *real*
execution path.  A :class:`FaultPlan` maps jobs (by grid index or
job_id) to :class:`FaultAction` lists; the runner serialises the
matching actions into the job payload, and ``execute_job`` applies
them inside the worker process, so an injected hang really occupies a
pool slot and an injected kill really takes a worker down mid-job.

Faults are seeded and attempt-aware: an action fires on exactly the
attempt it names, so "fail once, succeed on retry" scenarios replay
identically on every run.  :func:`FaultPlan.sampled` derives per-job
fault draws from a seed the same way workload seeds derive — stable
under grid growth and worker count.

File-level faults (corrupted cache entries, torn JSONL tails) act on
artifacts rather than processes; :func:`corrupt_cache_entry` and
:func:`tear_file_tail` are the chaos-test counterparts of the
verify-on-read and torn-tail-recovery machinery.

:func:`classify_error` is the runner's transient-vs-permanent triage:
transient failures (injected or environmental) are retried with
backoff, permanent ones (a real bug, a budget overrun) fail fast.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.experiments.hashing import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.cache import ResultCache
    from repro.experiments.spec import JobSpec

__all__ = [
    "FAULT_KINDS",
    "NETWORK_FAULT_KINDS",
    "TRANSIENT_ERROR_TYPES",
    "FaultAction",
    "FaultPlan",
    "TransientFaultError",
    "apply_fault_actions",
    "backoff_seconds",
    "classify_error",
    "corrupt_cache_entry",
    "tear_file_tail",
]

#: In-worker fault kinds ``apply_fault_actions`` knows how to fire.
FAULT_KINDS = ("transient", "hang", "kill")

#: Network fault kinds, fired by a :class:`~repro.service.worker.
#: SweepWorker` through the real service socket rather than inside the
#: job body: "drop_connection" closes the socket without submitting the
#: result (the lease, not the connection, re-queues the job),
#: "heartbeat_stall" silences the heartbeat thread for ``hang_seconds``
#: (expiring the lease while the job keeps computing — the late-result
#: reconciliation path), "torn_frame" writes a half-written result
#: frame then reconnects and submits properly, and "duplicate_result"
#: submits the same result twice.  ``apply_fault_actions`` skips them:
#: a network action that ends up in an in-process payload (inline
#: ``repro sweep`` with a served fault plan) is a no-op by design.
NETWORK_FAULT_KINDS = (
    "drop_connection",
    "heartbeat_stall",
    "torn_frame",
    "duplicate_result",
)

#: Exit code an injected kill dies with — distinctive in ``ps`` output
#: and in the supervisor's WorkerCrash error strings.
KILL_EXIT_CODE = 87


class TransientFaultError(RuntimeError):
    """An injected (or environmental) failure that a retry may clear."""


@dataclass(frozen=True)
class FaultAction:
    """One fault to fire inside a worker process.

    Attributes:
        kind: "transient" raises :class:`TransientFaultError`, "hang"
            sleeps ``hang_seconds`` before the job body runs (tripping
            any job timeout), "kill" hard-exits the worker process via
            ``os._exit`` — no cleanup, no captured traceback, exactly
            like an OOM kill or a segfault.  The
            :data:`NETWORK_FAULT_KINDS` fire through the service
            socket instead of inside the job (see there).
        attempt: 1-based attempt number the action fires on; other
            attempts of the same job run clean, which is how
            "fails once, succeeds on retry" scenarios are built.
        hang_seconds: sleep duration for "hang"; doubles as the stall
            duration for "heartbeat_stall".
    """

    kind: str
    attempt: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS + NETWORK_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; use one of "
                f"{FAULT_KINDS + NETWORK_FAULT_KINDS}"
            )
        if self.attempt < 1:
            raise ValueError("fault attempt numbers are 1-based")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")

    @property
    def is_network(self) -> bool:
        """True for socket-path faults a worker fires, not the job."""
        return self.kind in NETWORK_FAULT_KINDS

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "attempt": self.attempt,
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultAction":
        unknown = set(data) - {"kind", "attempt", "hang_seconds"}
        if unknown:
            raise ValueError(
                f"unknown FaultAction keys: {sorted(unknown)}"
            )
        return cls(**data)


class FaultPlan:
    """Deterministic job -> fault-action assignment for one campaign.

    Actions are keyed by grid index (int, or all-digit string — the
    CI-friendly spelling, since indices are known before job_ids are)
    or by job_id prefix.  ``actions_for`` returns the actions whose
    ``attempt`` matches, so the runner consults the plan once per
    dispatch.
    """

    def __init__(
        self,
        actions: dict[str | int, Iterable[FaultAction]] | None = None,
        seed: int = 0,
    ) -> None:
        self.seed = seed
        self.by_index: dict[int, tuple[FaultAction, ...]] = {}
        self.by_job_id: dict[str, tuple[FaultAction, ...]] = {}
        for key, acts in (actions or {}).items():
            acts = tuple(acts)
            if isinstance(key, int) or (
                isinstance(key, str) and key.isdigit()
            ):
                self.by_index[int(key)] = acts
            else:
                self.by_job_id[str(key)] = acts

    def __len__(self) -> int:
        return len(self.by_index) + len(self.by_job_id)

    def actions_for(
        self, job_id: str, index: int, attempt: int
    ) -> list[FaultAction]:
        """The actions that fire for this (job, attempt) dispatch."""
        matched = list(self.by_index.get(index, ()))
        for prefix, acts in self.by_job_id.items():
            if job_id.startswith(prefix):
                matched.extend(acts)
        return [a for a in matched if a.attempt == attempt]

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"seed": self.seed, "actions": {}}
        for index, acts in sorted(self.by_index.items()):
            out["actions"][str(index)] = [a.to_dict() for a in acts]
        for job_id, acts in sorted(self.by_job_id.items()):
            out["actions"][job_id] = [a.to_dict() for a in acts]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        unknown = set(data) - {"seed", "actions"}
        if unknown:
            raise ValueError(f"unknown FaultPlan keys: {sorted(unknown)}")
        actions = {
            key: [FaultAction.from_dict(a) for a in acts]
            for key, acts in (data.get("actions") or {}).items()
        }
        return cls(actions=actions, seed=data.get("seed", 0))

    @classmethod
    def sampled(
        cls,
        jobs: Iterable["JobSpec"],
        seed: int,
        kill_rate: float = 0.0,
        hang_rate: float = 0.0,
        transient_rate: float = 0.0,
        hang_seconds: float = 30.0,
    ) -> "FaultPlan":
        """Seeded random plan: each job draws each fault independently.

        Draws derive from ``(seed, job_id, kind)`` exactly like
        workload seeds derive from the campaign seed, so the same jobs
        fault the same way regardless of grid order or worker count.
        """
        actions: dict[str | int, list[FaultAction]] = {}
        for job in jobs:
            drawn: list[FaultAction] = []
            for kind, rate in (
                ("kill", kill_rate),
                ("hang", hang_rate),
                ("transient", transient_rate),
            ):
                draw = derive_seed(seed, job.job_id, kind) / 2**32
                if draw < rate:
                    drawn.append(
                        FaultAction(kind=kind, hang_seconds=hang_seconds)
                    )
            if drawn:
                actions[job.job_id] = drawn
        return cls(actions=actions, seed=seed)


def apply_fault_actions(actions: Iterable[dict[str, Any]]) -> None:
    """Fire serialized fault actions inside the current (worker) process.

    Called by ``execute_job`` between payload decode and kind dispatch.
    "hang" sleeps (then lets the job proceed — if no timeout reaps it,
    the result is still correct, just late); "transient" raises;
    "kill" never returns.  Network kinds are skipped: they belong to
    the service socket layer, and a job body has no socket to fault.
    """
    for data in actions:
        action = FaultAction.from_dict(dict(data))
        if action.is_network:
            continue
        if action.kind == "hang":
            time.sleep(action.hang_seconds)
        elif action.kind == "transient":
            raise TransientFaultError(
                f"injected transient fault (attempt {action.attempt})"
            )
        elif action.kind == "kill":
            # A hard kill: bypasses finally-blocks, atexit, and the
            # execute_job exception net, exactly like SIGKILL/OOM.
            os._exit(KILL_EXIT_CODE)


# -- error triage --------------------------------------------------------

#: Exception type names the runner treats as transient (retryable).
#: JobTimeout / WorkerCrash are the supervisor's own synthetic classes;
#: the OS-level ones cover flaky filesystems and broken pipes.  Real
#: simulation bugs (ValueError, SimulationTimeout, ...) stay permanent:
#: deterministic jobs fail the same way on every retry.
TRANSIENT_ERROR_TYPES = frozenset(
    {
        "TransientFaultError",
        "JobTimeout",
        "WorkerCrash",
        "ConnectionError",
        "ConnectionResetError",
        "BrokenPipeError",
        "EOFError",
        "InterruptedError",
        "ProtocolError",
    }
)


def classify_error(
    error: str | None, transient_types: Iterable[str] = ()
) -> str:
    """"transient" or "permanent" for a captured "Type: msg" string.

    ``transient_types`` extends the built-in set — job kinds declare
    their own retryable failures via ``JobKind.transient_errors``
    (e.g. the replay kind treats trace-file OSErrors as transient).
    """
    type_name = (error or "").split(":", 1)[0].strip()
    if type_name in TRANSIENT_ERROR_TYPES or type_name in set(
        transient_types
    ):
        return "transient"
    return "permanent"


def backoff_seconds(
    seed: int,
    job_id: str,
    attempt: int,
    base: float = 0.05,
    cap: float = 2.0,
) -> float:
    """Seeded exponential backoff before retry number ``attempt``.

    ``base * 2**(attempt-1)``, capped, scaled by a deterministic jitter
    factor in [0.5, 1.5) derived from (seed, job_id, attempt) — the
    decorrelation real retry storms need, without wall-clock
    randomness that would make campaign runs unreproducible.
    """
    if attempt < 1:
        raise ValueError("attempt numbers are 1-based")
    delay = min(cap, base * 2 ** (attempt - 1))
    jitter = 0.5 + derive_seed(seed, job_id, "backoff", attempt) / 2**32
    return delay * jitter


# -- file-level chaos helpers -------------------------------------------


def corrupt_cache_entry(
    cache: "ResultCache", job: "JobSpec", mode: str = "flip"
) -> os.PathLike:
    """Corrupt a job's on-disk cache entry in place; returns its path.

    Modes: "flip" rewrites a byte inside the JSON body (parseable but
    digest-mismatched — only verify-on-read catches it), "truncate"
    tears the tail off, "garbage" replaces the content wholesale.
    """
    path = cache._path(cache.key_for(job))
    raw = bytearray(path.read_bytes())
    if mode == "flip":
        # Flip a digit inside the payload so the JSON still parses.
        for offset in range(len(raw) - 1, -1, -1):
            if chr(raw[offset]).isdigit():
                raw[offset] = ord("0") if raw[offset] != ord("0") else ord("9")
                break
        path.write_bytes(bytes(raw))
    elif mode == "truncate":
        path.write_bytes(bytes(raw[: max(1, len(raw) // 2)]))
    elif mode == "garbage":
        path.write_bytes(b"\x00not json\xff")
    else:
        raise ValueError(
            f"unknown corruption mode {mode!r}; "
            "use flip, truncate, or garbage"
        )
    return path


def tear_file_tail(
    path: str | os.PathLike, partial: bytes = b'{"event": "job", "rec'
) -> None:
    """Append an unterminated partial line — a torn mid-append crash."""
    with open(path, "ab") as fh:
        fh.write(partial)
