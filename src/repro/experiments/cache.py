"""Content-addressed on-disk cache for campaign results.

A cache entry is keyed by the SHA-256 of the job's canonical identity
(:meth:`JobSpec.key_payload`) combined with a code-version tag hashed
from the simulation-relevant source modules.  Re-running a campaign
therefore only simulates points that are new *or* whose semantics may
have changed — editing the simulator invalidates every entry, editing
the report layer invalidates nothing.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json``, written
atomically (temp file + rename) so a killed worker never leaves a
half-written entry behind.  Every entry is an envelope carrying the
SHA-256 of its canonical record body, verified on every read: a
corrupted entry — torn write, disk fault, bit flip inside otherwise
valid JSON — is quarantined (moved aside under ``<root>/quarantine/``
for inspection, never silently served) and the point re-simulates.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from functools import lru_cache
from typing import Any

from repro.experiments.hashing import canonical_json
from repro.experiments.spec import JobSpec

__all__ = ["code_version_tag", "ResultCache"]

# Modules whose source participates in every cache key: a change to
# any of them changes what a simulation means, so cached results from
# older code must not be served.  The job-kind module is versioned
# because it owns the executors (workload construction, batch fan-out,
# synthetic drivers); the report layer deliberately is not.
_VERSIONED_MODULES = (
    "repro.accelerator.config",
    "repro.accelerator.flitize",
    "repro.accelerator.mapping",
    "repro.accelerator.orderer",
    "repro.accelerator.simulator",
    "repro.accelerator.tasks",
    "repro.bits.formats",
    "repro.bits.transitions",
    "repro.dnn.models",
    "repro.experiments.kinds",
    "repro.noc.network",
    "repro.noc.recorder",
    "repro.noc.router",
    "repro.noc.traffic",
    "repro.ordering.strategies",
    "repro.workloads.traces",
)


@lru_cache(maxsize=1)
def code_version_tag() -> str:
    """Short hash over the simulation-relevant source files."""
    import importlib

    digest = hashlib.sha256()
    for name in _VERSIONED_MODULES:
        module = importlib.import_module(name)
        source = pathlib.Path(module.__file__).read_bytes()
        digest.update(name.encode())
        digest.update(source)
    return digest.hexdigest()[:12]


class ResultCache:
    """Content-addressed store of finished job records.

    Attributes:
        root: cache directory (created lazily on first put).
        version_tag: code-version component of every key; defaults to
            :func:`code_version_tag`.  Tests override it to model a
            code change without editing source files.
        corrupt_dropped: entries discarded due to unreadable JSON.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        version_tag: str | None = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.version_tag = (
            code_version_tag() if version_tag is None else version_tag
        )
        self.corrupt_dropped = 0

    # -- keys ------------------------------------------------------------

    def key_for(self, job: JobSpec) -> str:
        """The content address of a job under the current code version."""
        identity = {"code": self.version_tag, "job": job.key_payload()}
        return hashlib.sha256(canonical_json(identity).encode()).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    # -- access ----------------------------------------------------------

    @staticmethod
    def _record_digest(record: dict[str, Any]) -> str:
        return hashlib.sha256(canonical_json(record).encode()).hexdigest()

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupt entry aside (never served, kept for autopsy).

        The ``.corrupt`` suffix keeps quarantined files out of the
        ``*/*.json`` globs ``__len__``/``clear`` walk.
        """
        self.corrupt_dropped += 1
        target = self.root / "quarantine" / (path.name + ".corrupt")
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            path.unlink(missing_ok=True)

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached record, or None on miss / corrupted entry.

        Verify-on-read: the envelope's digest is recomputed over the
        record body every time, so corruption that keeps the JSON
        parseable still quarantines instead of serving wrong results.
        Pre-envelope (legacy) entries are accepted as-is.
        """
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except (FileNotFoundError, OSError):
            return None
        try:
            # json.loads on bytes: invalid UTF-8 raises a ValueError
            # subclass too, so binary garbage lands in quarantine.
            doc = json.loads(raw)
            if not isinstance(doc, dict):
                raise ValueError("cache entry is not an object")
        except ValueError:
            # Unparseable entry (truncated write, disk fault, manual
            # edit): quarantine so the point re-simulates cleanly.
            self._quarantine(path)
            return None
        if "sha256" in doc and "record" in doc:
            record = doc["record"]
            if not isinstance(record, dict) or self._record_digest(
                record
            ) != doc["sha256"]:
                self._quarantine(path)
                return None
            return record
        return doc

    def get_job(self, job: JobSpec) -> dict[str, Any] | None:
        return self.get(self.key_for(job))

    def put(self, key: str, record: dict[str, Any]) -> None:
        """Atomically persist a record (digest envelope) under its key."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"sha256": self._record_digest(record), "record": record}
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, sort_keys=True))
        tmp.replace(path)

    def put_job(self, job: JobSpec, record: dict[str, Any]) -> None:
        self.put(self.key_for(job), record)

    def contains(self, job: JobSpec) -> bool:
        return self._path(self.key_for(job)).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
