"""Content-addressed on-disk cache for campaign results.

A cache entry is keyed by the SHA-256 of the job's canonical identity
(:meth:`JobSpec.key_payload`) combined with a code-version tag hashed
from the simulation-relevant source modules.  Re-running a campaign
therefore only simulates points that are new *or* whose semantics may
have changed — editing the simulator invalidates every entry, editing
the report layer invalidates nothing.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json``, written
atomically (temp file + rename) so a killed worker never leaves a
half-written entry behind.  Every entry is an envelope carrying the
SHA-256 of its canonical record body, verified on every read: a
corrupted entry — torn write, disk fault, bit flip inside otherwise
valid JSON — is quarantined (moved aside under ``<root>/quarantine/``
for inspection, never silently served) and the point re-simulates.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
import time
from functools import lru_cache
from typing import Any

from repro.experiments.hashing import canonical_json
from repro.experiments.spec import JobSpec

__all__ = ["code_version_tag", "ResultCache"]

# Modules whose source participates in every cache key: a change to
# any of them changes what a simulation means, so cached results from
# older code must not be served.  The job-kind module is versioned
# because it owns the executors (workload construction, batch fan-out,
# synthetic drivers); the report layer deliberately is not.
_VERSIONED_MODULES = (
    "repro.accelerator.config",
    "repro.accelerator.flitize",
    "repro.accelerator.mapping",
    "repro.accelerator.orderer",
    "repro.accelerator.simulator",
    "repro.accelerator.tasks",
    "repro.bits.formats",
    "repro.bits.transitions",
    "repro.dnn.models",
    "repro.experiments.kinds",
    "repro.noc.network",
    "repro.noc.recorder",
    "repro.noc.router",
    "repro.noc.traffic",
    "repro.ordering.strategies",
    "repro.workloads.traces",
)


@lru_cache(maxsize=1)
def code_version_tag() -> str:
    """Short hash over the simulation-relevant source files."""
    import importlib

    digest = hashlib.sha256()
    for name in _VERSIONED_MODULES:
        module = importlib.import_module(name)
        source = pathlib.Path(module.__file__).read_bytes()
        digest.update(name.encode())
        digest.update(source)
    return digest.hexdigest()[:12]


class ResultCache:
    """Content-addressed store of finished job records.

    Attributes:
        root: cache directory (created lazily on first put).
        version_tag: code-version component of every key; defaults to
            :func:`code_version_tag`.  Tests override it to model a
            code change without editing source files.
        corrupt_dropped: entries discarded due to unreadable JSON.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        version_tag: str | None = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.version_tag = (
            code_version_tag() if version_tag is None else version_tag
        )
        self.corrupt_dropped = 0

    # -- keys ------------------------------------------------------------

    def key_for(self, job: JobSpec) -> str:
        """The content address of a job under the current code version."""
        identity = {"code": self.version_tag, "job": job.key_payload()}
        return hashlib.sha256(canonical_json(identity).encode()).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    # -- access ----------------------------------------------------------

    @staticmethod
    def _record_digest(record: dict[str, Any]) -> str:
        return hashlib.sha256(canonical_json(record).encode()).hexdigest()

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupt entry aside (never served, kept for autopsy).

        The ``.corrupt`` suffix keeps quarantined files out of the
        ``*/*.json`` globs ``__len__``/``clear`` walk.
        """
        self.corrupt_dropped += 1
        target = self.root / "quarantine" / (path.name + ".corrupt")
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            path.unlink(missing_ok=True)

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached record, or None on miss / corrupted entry.

        Verify-on-read: the envelope's digest is recomputed over the
        record body every time, so corruption that keeps the JSON
        parseable still quarantines instead of serving wrong results.
        Pre-envelope (legacy) entries are accepted as-is.
        """
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except (FileNotFoundError, OSError):
            return None
        try:
            # json.loads on bytes: invalid UTF-8 raises a ValueError
            # subclass too, so binary garbage lands in quarantine.
            doc = json.loads(raw)
            if not isinstance(doc, dict):
                raise ValueError("cache entry is not an object")
        except ValueError:
            # Unparseable entry (truncated write, disk fault, manual
            # edit): quarantine so the point re-simulates cleanly.
            self._quarantine(path)
            return None
        if "sha256" in doc and "record" in doc:
            record = doc["record"]
            if not isinstance(record, dict) or self._record_digest(
                record
            ) != doc["sha256"]:
                self._quarantine(path)
                return None
            return record
        return doc

    def get_job(self, job: JobSpec) -> dict[str, Any] | None:
        return self.get(self.key_for(job))

    # -- cross-process claims --------------------------------------------

    def _claim_path(self, key: str) -> pathlib.Path:
        return self.root / "claims" / f"{key}.claim"

    def claim(self, key: str, stale_seconds: float = 600.0) -> bool:
        """Atomically claim ``key`` for computation; False if held.

        The claim is an ``O_CREAT | O_EXCL`` file — the one filesystem
        primitive that is atomic across processes (and NFS-safe enough
        for a shared cache root) — holding the claimant's pid.  Claims
        are advisory dedup, not locks: a worker that cannot claim may
        still compute (the entry ``put`` stays atomic either way), it
        just wastes work.  A claim older than ``stale_seconds`` is
        presumed orphaned by a dead claimant and stolen.
        """
        path = self._claim_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = time.time() - path.stat().st_mtime
            except OSError:
                # Raced with a release: the claim is gone, try again.
                return self.claim(key, stale_seconds)
            if age < stale_seconds:
                return False
            # Stale claim: steal it.  os.replace keeps the steal
            # atomic — two stealers race to rename, one wins.
            tmp = path.with_name(path.name + f".steal.{os.getpid()}")
            try:
                tmp.write_text(str(os.getpid()))
                os.replace(tmp, path)
            except OSError:
                return False
            return True
        with os.fdopen(fd, "w") as fh:
            fh.write(str(os.getpid()))
        return True

    def release_claim(self, key: str) -> None:
        """Drop a claim (done or failed); missing claims are fine."""
        self._claim_path(key).unlink(missing_ok=True)

    def put(self, key: str, record: dict[str, Any]) -> None:
        """Atomically persist a record (digest envelope) under its key.

        The temp name carries pid *and* thread id: the sweep server's
        connection handlers put entries concurrently from one process,
        where a pid-only suffix would make two writers share (and
        steal) the same temp file.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"sha256": self._record_digest(record), "record": record}
        tmp = path.with_name(
            path.name
            + f".tmp.{os.getpid()}.{threading.get_ident()}"
        )
        tmp.write_text(json.dumps(doc, sort_keys=True))
        tmp.replace(path)

    def put_job(self, job: JobSpec, record: dict[str, Any]) -> None:
        self.put(self.key_for(job), record)

    def contains(self, job: JobSpec) -> bool:
        return self._path(self.key_for(job)).is_file()

    # -- integrity sweep -------------------------------------------------

    def _entry_status(self, path: pathlib.Path) -> str:
        """"ok", "legacy" (pre-envelope), or "corrupt" for one entry."""
        try:
            doc = json.loads(path.read_bytes())
            if not isinstance(doc, dict):
                raise ValueError("cache entry is not an object")
        except (ValueError, OSError):
            return "corrupt"
        if "sha256" in doc and "record" in doc:
            record = doc["record"]
            if not isinstance(record, dict) or self._record_digest(
                record
            ) != doc["sha256"]:
                return "corrupt"
            return "ok"
        return "legacy"

    def verify(self, quarantine: bool = True) -> dict[str, Any]:
        """Re-check every entry's digest envelope; returns a report.

        The operational sweep behind ``repro cache verify`` — with the
        cache root shared between workers, disk faults or torn copies
        must surface before they cost a campaign wrong results.  The
        report maps ``checked`` / ``ok`` / ``legacy`` counts plus the
        relative paths found ``corrupt`` (quarantined in place unless
        ``quarantine=False``) and everything already ``quarantined``.
        """
        report: dict[str, Any] = {
            "root": str(self.root),
            "checked": 0,
            "ok": 0,
            "legacy": 0,
            "corrupt": [],
        }
        for path in sorted(self.root.glob("*/*.json")):
            report["checked"] += 1
            status = self._entry_status(path)
            if status == "corrupt":
                report["corrupt"].append(
                    str(path.relative_to(self.root))
                )
                if quarantine:
                    self._quarantine(path)
            else:
                report[status] += 1
        report["quarantined"] = self.quarantined()
        return report

    def quarantined(self) -> list[str]:
        """Names of entries previously moved aside as corrupt."""
        quarantine = self.root / "quarantine"
        if not quarantine.is_dir():
            return []
        return sorted(p.name for p in quarantine.glob("*.corrupt"))

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
