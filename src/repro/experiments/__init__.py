"""repro.experiments — the campaign engine.

Turns one-off simulations into declarative, cached, parallel campaigns:

* :mod:`repro.experiments.spec` — :class:`SweepSpec` grids expand into
  deterministic :class:`JobSpec` lists with derived per-job seeds.
* :mod:`repro.experiments.cache` — content-addressed result cache keyed
  by job identity + code-version tag.
* :mod:`repro.experiments.runner` — :class:`CampaignRunner` worker-pool
  execution with per-job failure capture.
* :mod:`repro.experiments.store` — append-only JSONL store + CSV export.
* :mod:`repro.experiments.report` — Fig. 12/13-style grids from
  persisted records, no re-simulation.

CLI: ``repro sweep`` runs a campaign, ``repro report`` re-renders its
tables from the store.
"""

from repro.experiments.cache import ResultCache, code_version_tag
from repro.experiments.report import fig12_report, pivot, reduction_series
from repro.experiments.runner import CampaignResult, CampaignRunner
from repro.experiments.spec import JobSpec, SweepSpec, derive_seed
from repro.experiments.store import ResultStore

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "JobSpec",
    "ResultCache",
    "ResultStore",
    "SweepSpec",
    "code_version_tag",
    "derive_seed",
    "fig12_report",
    "pivot",
    "reduction_series",
]
