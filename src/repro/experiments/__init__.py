"""repro.experiments — the campaign engine.

Turns one-off simulations into declarative, cached, parallel campaigns:

* :mod:`repro.experiments.kinds` — the job-kind registry: pluggable
  workload handlers (``model`` single-image inference, ``batch``
  multi-image inference with per-image fan-out, ``synthetic`` NoC
  traffic), each owning its config schema, executor, and labels.
* :mod:`repro.experiments.spec` — :class:`SweepSpec` grids expand into
  deterministic :class:`JobSpec` lists with derived per-job seeds.
* :mod:`repro.experiments.cache` — content-addressed result cache keyed
  by job identity + code-version tag, with verify-on-read digests and
  corrupt-entry quarantine.
* :mod:`repro.experiments.runner` — :class:`CampaignRunner` supervised
  execution with per-job failure capture, wall-clock timeouts, seeded
  retry/backoff, poison-job quarantine, and journal-backed resume,
  dispatching through the registry.
* :mod:`repro.experiments.faults` — deterministic fault injection
  (:class:`FaultPlan`) and error classification for chaos testing the
  real multiprocessing path.
* :mod:`repro.experiments.store` — append-only JSONL store + CSV export
  plus the crash-safe :class:`CampaignJournal` behind ``--resume``.
* :mod:`repro.experiments.report` — Fig. 12/13-style grids plus
  per-layer and per-link aggregations from persisted records, no
  re-simulation.

CLI: ``repro sweep --kind {model,batch,synthetic}`` runs a campaign,
``repro report --pivot {mesh,model,layer,link}`` re-renders its tables
from the store.
"""

from repro.experiments.cache import ResultCache, code_version_tag
from repro.experiments.faults import (
    FaultAction,
    FaultPlan,
    TransientFaultError,
    backoff_seconds,
    classify_error,
)
from repro.experiments.hashing import canonical_json, derive_seed
from repro.experiments.kinds import (
    JOB_KINDS,
    JobKind,
    ReplayJobConfig,
    SyntheticJobConfig,
    job_kind,
    register_job_kind,
)
from repro.experiments.report import (
    campaign_report,
    failures_report,
    fig12_report,
    layer_pivot,
    link_pivot,
    pivot,
    reduction_series,
)
from repro.experiments.runner import CampaignResult, CampaignRunner
from repro.experiments.spec import JobSpec, SweepSpec, campaign_id
from repro.experiments.store import CampaignJournal, ResultStore

__all__ = [
    "CampaignJournal",
    "CampaignResult",
    "CampaignRunner",
    "FaultAction",
    "FaultPlan",
    "JOB_KINDS",
    "JobKind",
    "JobSpec",
    "ReplayJobConfig",
    "ResultCache",
    "ResultStore",
    "SweepSpec",
    "SyntheticJobConfig",
    "TransientFaultError",
    "backoff_seconds",
    "campaign_id",
    "campaign_report",
    "canonical_json",
    "classify_error",
    "code_version_tag",
    "derive_seed",
    "failures_report",
    "fig12_report",
    "job_kind",
    "layer_pivot",
    "link_pivot",
    "pivot",
    "reduction_series",
    "register_job_kind",
]
