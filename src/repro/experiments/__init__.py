"""repro.experiments — the campaign engine.

Turns one-off simulations into declarative, cached, parallel campaigns:

* :mod:`repro.experiments.kinds` — the job-kind registry: pluggable
  workload handlers (``model`` single-image inference, ``batch``
  multi-image inference with per-image fan-out, ``synthetic`` NoC
  traffic), each owning its config schema, executor, and labels.
* :mod:`repro.experiments.spec` — :class:`SweepSpec` grids expand into
  deterministic :class:`JobSpec` lists with derived per-job seeds.
* :mod:`repro.experiments.cache` — content-addressed result cache keyed
  by job identity + code-version tag.
* :mod:`repro.experiments.runner` — :class:`CampaignRunner` worker-pool
  execution with per-job failure capture, dispatching through the
  registry.
* :mod:`repro.experiments.store` — append-only JSONL store + CSV export.
* :mod:`repro.experiments.report` — Fig. 12/13-style grids plus
  per-layer and per-link aggregations from persisted records, no
  re-simulation.

CLI: ``repro sweep --kind {model,batch,synthetic}`` runs a campaign,
``repro report --pivot {mesh,model,layer,link}`` re-renders its tables
from the store.
"""

from repro.experiments.cache import ResultCache, code_version_tag
from repro.experiments.hashing import canonical_json, derive_seed
from repro.experiments.kinds import (
    JOB_KINDS,
    JobKind,
    ReplayJobConfig,
    SyntheticJobConfig,
    job_kind,
    register_job_kind,
)
from repro.experiments.report import (
    campaign_report,
    fig12_report,
    layer_pivot,
    link_pivot,
    pivot,
    reduction_series,
)
from repro.experiments.runner import CampaignResult, CampaignRunner
from repro.experiments.spec import JobSpec, SweepSpec
from repro.experiments.store import ResultStore

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "JOB_KINDS",
    "JobKind",
    "JobSpec",
    "ReplayJobConfig",
    "ResultCache",
    "ResultStore",
    "SweepSpec",
    "SyntheticJobConfig",
    "campaign_report",
    "canonical_json",
    "code_version_tag",
    "derive_seed",
    "fig12_report",
    "job_kind",
    "layer_pivot",
    "link_pivot",
    "pivot",
    "reduction_series",
    "register_job_kind",
]
