"""Canonical hashing primitives shared across the campaign engine.

Job identity, cache keys, and derived per-job seeds all hash the same
canonical JSON form: sorted keys, compact separators, enums as their
values.  Keeping the primitives in one dependency-free module lets the
spec, cache, and job-kind layers share them without import cycles.
"""

from __future__ import annotations

import enum
import hashlib
import json
from typing import Any

__all__ = ["canonical_json", "derive_seed"]


def _json_default(obj: Any) -> Any:
    if isinstance(obj, enum.Enum):
        return obj.value
    raise TypeError(f"not JSON-canonicalisable: {obj!r}")


def canonical_json(obj: Any) -> str:
    """Canonical (sorted-key, compact) JSON used for hashing.

    Enums serialise as their values so specs built from
    :class:`OrderingMethod` members and from plain strings hash alike.
    The sort is over JSON string keys, so the output is independent of
    dict insertion order and of ``PYTHONHASHSEED`` — the property the
    cache relies on across process restarts.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=_json_default
    )


def derive_seed(*parts: Any) -> int:
    """Deterministic 32-bit seed from arbitrary JSON-compatible parts."""
    digest = hashlib.sha256(canonical_json(list(parts)).encode()).digest()
    return int.from_bytes(digest[:4], "big")
