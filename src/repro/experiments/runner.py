"""Campaign execution: fault-tolerant worker pool, cache, journal.

The :class:`CampaignRunner` takes a sweep (or an explicit job list),
serves every already-simulated point from the
:class:`~repro.experiments.cache.ResultCache` (and, on resume, from
the :class:`~repro.experiments.store.CampaignJournal`), and executes
the misses across worker processes.  Execution dispatches through the
job-kind registry (:mod:`repro.experiments.kinds`), so model, batch,
synthetic, and replay jobs — and any kind registered later — share one
runner.  Job records are fully deterministic (no timestamps, no host
state), so a sweep executed with one worker is byte-identical to the
same sweep executed with eight — the property the cache, the journal,
and the chaos regression tests rely on.

Resilience model
----------------

Fresh jobs run under a supervisor that owns one child process per
in-flight job (``workers`` slots), collecting results asynchronously:

* **Timeouts** — a job past ``job_timeout`` wall-clock seconds is
  killed and captured as a ``JobTimeout`` failure; the hung worker
  never blocks the rest of the campaign.
* **Worker crashes** — a child that dies without returning a result
  (``os._exit``, SIGKILL, OOM) is captured as a ``WorkerCrash``
  failure; the supervisor just launches the next job.
* **Retry with backoff** — failures classified transient
  (:func:`~repro.experiments.faults.classify_error`; timeouts and
  crashes included) are retried up to ``max_retries`` times after a
  seeded exponential backoff.  Deterministic failures are permanent
  and fail fast.
* **Quarantine** — a job that exhausts its retries on transient-class
  failures is quarantined: recorded as failed, listed in the failure
  report, never allowed to take the campaign down.
* **Graceful degradation** — a campaign always completes (or
  checkpoints on SIGINT) with partial results plus a structured
  :meth:`CampaignResult.failure_report`; ``run`` does not raise for
  job failures of any class.

A failed job is captured as a ``status="error"`` record with its
error class and attempt count; it is *not* cached (so the point
retries on the next run) and still lands in the result store for
inspection.  Injected faults (:mod:`repro.experiments.faults`) ride
the job payload into the worker, so every one of these features is
tested against the real multiprocessing path it defends.
"""

from __future__ import annotations

import contextlib
import heapq
import multiprocessing
import os
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Iterator

from repro.experiments.cache import ResultCache
from repro.experiments.faults import (
    FaultPlan,
    apply_fault_actions,
    backoff_seconds,
    classify_error,
)
from repro.experiments.kinds import job_kind
from repro.experiments.spec import JobSpec, SweepSpec, campaign_id
from repro.experiments.store import CampaignJournal, ResultStore
from repro.obs.metrics import (
    active_registry,
    merge_metrics,
    metrics_suspended,
)

__all__ = [
    "execute_job",
    "CampaignResult",
    "CampaignRunner",
    "SpecDriftError",
    "sigterm_as_interrupt",
]


class SpecDriftError(RuntimeError):
    """A resume was attempted with a spec that no longer matches the
    journaled campaign.

    :func:`~repro.experiments.spec.campaign_id` hashes the full
    canonical spec, so any drift — an edited grid, a changed seed, a
    renamed campaign — changes the id.  Resuming anyway would silently
    mix two different campaigns' results in one store; failing loudly
    is the only safe behaviour.
    """


@contextlib.contextmanager
def sigterm_as_interrupt() -> Iterator[None]:
    """Route SIGTERM through the KeyboardInterrupt graceful path.

    Container orchestrators and batch schedulers stop jobs with
    SIGTERM; without this, a terminated campaign dies mid-write
    instead of checkpointing its journal the way Ctrl-C does.  Only
    the main thread may install signal handlers — elsewhere (a server
    thread running a campaign) this is a no-op and the process-level
    handler owns termination.  The previous handler is restored on
    exit.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _handler)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def execute_job(payload: dict[str, Any]) -> dict[str, Any]:
    """Run one serialized job; never raises (though it may be killed).

    Module-level (not a method) so worker processes can import it, and
    dict-in/dict-out so every transport — inline call, fork, spawn —
    carries the same picklable payload.  A ``"_fault"`` key smuggles
    injected :mod:`~repro.experiments.faults` actions into the worker;
    they fire between payload decode and kind dispatch, inside the
    exception net (except for kills, which bypass it by design).
    """
    payload = dict(payload)
    fault_actions = payload.pop("_fault", None)
    try:
        job = JobSpec.from_dict(payload)
        if fault_actions:
            apply_fault_actions(fault_actions)
        result = job_kind(job.kind).execute(job)
        return {
            "job_id": job.job_id,
            "kind": job.kind,
            "model": job.model,
            "model_seed": job.model_seed,
            "image_seed": job.image_seed,
            "n_images": job.n_images,
            "config": job.config.to_dict(),
            "status": "ok",
            "result": result,
            "error": None,
        }
    except Exception as exc:
        try:
            job_id = JobSpec.from_dict(payload).job_id
        except Exception:
            job_id = "?"
        return {
            "job_id": job_id,
            "kind": payload.get("kind", "model"),
            "model": payload.get("model", "?"),
            "model_seed": payload.get("model_seed"),
            "image_seed": payload.get("image_seed"),
            "n_images": payload.get("n_images"),
            "config": payload.get("config", {}),
            "status": "error",
            "result": None,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


def _worker_main(conn, payload: dict[str, Any]) -> None:
    """Child-process entry: run the job, pipe the record back, exit.

    SIGINT is ignored in workers — a Ctrl-C belongs to the supervisor,
    which checkpoints the journal and kills children deliberately
    instead of letting the process group race to die.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    record = execute_job(payload)
    try:
        conn.send(record)
        conn.close()
    except Exception:  # pragma: no cover - parent died mid-send
        os._exit(1)


@dataclass
class _Task:
    """One (job, attempt) dispatch the supervisor tracks."""

    index: int
    job_id: str
    kind: str
    payload: dict[str, Any]
    attempt: int = 1


def _failure_record(
    task: _Task, error: str, error_class: str
) -> dict[str, Any]:
    """Synthetic error record for failures with no worker to report
    them (timeouts, crashes) — same shape as execute_job's."""
    payload = task.payload
    return {
        "job_id": task.job_id,
        "kind": payload.get("kind", "model"),
        "model": payload.get("model", "?"),
        "model_seed": payload.get("model_seed"),
        "image_seed": payload.get("image_seed"),
        "n_images": payload.get("n_images"),
        "config": payload.get("config", {}),
        "status": "error",
        "result": None,
        "error": error,
        "error_class": error_class,
    }


def _kind_transients(kind_name: str) -> tuple[str, ...]:
    """The kind's extra retryable error types ('' registry-safe)."""
    try:
        return job_kind(kind_name).transient_errors
    except Exception:
        return ()


@dataclass
class CampaignResult:
    """Outcome of one campaign run.

    Attributes:
        name: campaign name.
        records: one record per completed job, in grid order (on an
            interrupted run, jobs never dispatched have no record).
        hits / misses: cache accounting for this run.
        errors: jobs whose final record failed (status="error").
        elapsed_seconds: wall-clock time of the run.
        workers: pool size used for the misses.
        resumed: jobs served from the campaign journal (a `--resume`).
        retries: re-dispatches after transient-class failures.
        timeouts: attempts killed for exceeding the job timeout.
        worker_crashes: attempts whose worker died without a result.
        quarantined: job_ids that exhausted retries on transient-class
            failures (the poison jobs).
        interrupted: True when SIGINT checkpointed the run early.
        remaining: job_ids never run (interrupted before dispatch).
        failures: structured per-failure dicts (job_id, label, error,
            error_class, attempts, quarantined).
        metrics: campaign-wide observability aggregate — every
            record's ``result["metrics"]`` merged (``.peak`` names by
            max, the rest summed) plus the runner's own ``cache.*`` /
            ``runner.*`` counters.
    """

    name: str
    records: list[dict[str, Any]] = field(default_factory=list)
    hits: int = 0
    misses: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0
    workers: int = 1
    resumed: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    quarantined: list[str] = field(default_factory=list)
    interrupted: bool = False
    remaining: list[str] = field(default_factory=list)
    failures: list[dict[str, Any]] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def n_jobs(self) -> int:
        return len(self.records)

    @property
    def hit_rate(self) -> float:
        """Fraction of jobs served from cache, in [0, 1]."""
        if not self.records:
            return 0.0
        return self.hits / len(self.records)

    def ok_records(self) -> list[dict[str, Any]]:
        return [r for r in self.records if r.get("status") == "ok"]

    def summary(self) -> str:
        """The printed cache-hit summary line."""
        line = (
            f"campaign {self.name!r}: {self.n_jobs} jobs, "
            f"{self.hits} cache hits / {self.misses} simulated "
            f"({100.0 * self.hit_rate:.1f}% hit rate), "
            f"{self.errors} errors, {self.workers} workers, "
            f"{self.elapsed_seconds:.2f}s"
        )
        extras = []
        if self.resumed:
            extras.append(f"{self.resumed} resumed")
        if self.retries:
            extras.append(f"{self.retries} retries")
        if self.timeouts:
            extras.append(f"{self.timeouts} timeouts")
        if self.worker_crashes:
            extras.append(f"{self.worker_crashes} worker crashes")
        if self.quarantined:
            extras.append(f"{len(self.quarantined)} quarantined")
        if extras:
            line += f" [{', '.join(extras)}]"
        if self.interrupted:
            line += (
                f" — INTERRUPTED with {len(self.remaining)} job(s) left"
            )
        return line

    def failure_report(self) -> dict[str, Any]:
        """Structured account of everything that went wrong (or not).

        Always well-formed — an all-green campaign reports zero counts
        — so report plumbing and the journal ``end``/``checkpoint``
        entries can carry it unconditionally.
        """
        by_class: dict[str, int] = {}
        for failure in self.failures:
            cls = failure.get("error_class", "permanent")
            by_class[cls] = by_class.get(cls, 0) + 1
        return {
            "campaign": self.name,
            "completed": len(self.ok_records()),
            "failed": len(self.failures),
            "by_class": by_class,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "quarantined": list(self.quarantined),
            "interrupted": self.interrupted,
            "remaining": list(self.remaining),
            "failures": list(self.failures),
        }


class _Supervisor:
    """Async result collection over one-child-per-in-flight-job.

    Replaces ``multiprocessing.Pool``: a pool cannot kill a hung task,
    and a worker that hard-dies strands its AsyncResult forever.  With
    one (daemonic) child per dispatch the supervisor can enforce
    wall-clock deadlines with ``terminate``/``kill``, observe crash
    exit codes directly, and keep scheduling while failed attempts sit
    out their backoff.  Children are forked per job; at
    simulation-scale job costs the fork overhead is noise (see the
    bench regression gate).
    """

    def __init__(self, runner: "CampaignRunner") -> None:
        self.runner = runner
        self.retries = 0
        self.timeouts = 0
        self.worker_crashes = 0
        self.quarantined: list[str] = []
        self.interrupted = False

    def run(
        self,
        tasks: list[_Task],
        on_final: Callable[[int, dict[str, Any], int], None],
    ) -> dict[int, dict[str, Any]]:
        """Run every task to a final record; returns index -> record.

        ``on_final(index, record, attempts)`` fires once per job as its
        outcome settles (ok, or error after retries), in completion
        order.  On KeyboardInterrupt the in-flight children are killed
        and the partial result map is returned with ``interrupted``
        set.
        """
        runner = self.runner
        ctx = multiprocessing.get_context()
        results: dict[int, dict[str, Any]] = {}
        pending: deque[_Task] = deque(tasks)
        waiting: list[tuple[float, int, _Task]] = []  # backoff heap
        running: dict[Any, tuple[_Task, Any, float | None]] = {}
        seq = 0

        def finalize(task: _Task, record: dict[str, Any]) -> None:
            results[task.index] = record
            on_final(task.index, record, task.attempt)

        def settle(task: _Task, record: dict[str, Any]) -> None:
            nonlocal seq
            if record.get("status") == "ok":
                finalize(task, record)
                return
            error_class = record.get("error_class") or classify_error(
                record.get("error"), _kind_transients(task.kind)
            )
            if (
                error_class != "permanent"
                and task.attempt <= runner.max_retries
            ):
                self.retries += 1
                delay = backoff_seconds(
                    runner.backoff_seed,
                    task.job_id,
                    task.attempt,
                    runner.backoff_base,
                    runner.backoff_cap,
                )
                seq += 1
                heapq.heappush(
                    waiting,
                    (
                        time.monotonic() + delay,
                        seq,
                        _Task(
                            task.index,
                            task.job_id,
                            task.kind,
                            task.payload,
                            task.attempt + 1,
                        ),
                    ),
                )
                return
            record = dict(record)
            record["error_class"] = error_class
            record["attempts"] = task.attempt
            record["quarantined"] = error_class != "permanent"
            if record["quarantined"]:
                self.quarantined.append(task.job_id)
            finalize(task, record)

        try:
            while pending or waiting or running:
                now = time.monotonic()
                while waiting and waiting[0][0] <= now:
                    pending.appendleft(heapq.heappop(waiting)[2])
                while pending and len(running) < runner.workers:
                    self._launch(ctx, pending.popleft(), running)
                if not running:
                    # Everything is sitting out a backoff window.
                    time.sleep(
                        max(0.0, waiting[0][0] - time.monotonic())
                    )
                    continue
                ready = mp_connection.wait(
                    list(running), self._next_wake(running, waiting)
                )
                for conn in ready:
                    task, proc, _ = running.pop(conn)
                    settle(task, self._collect(conn, proc, task))
                self._reap_timeouts(running, settle)
        except KeyboardInterrupt:
            self.interrupted = True
            for conn, (task, proc, _) in list(running.items()):
                self._kill(proc)
                conn.close()
        return results

    # -- internals -------------------------------------------------------

    def _launch(self, ctx, task: _Task, running: dict) -> None:
        payload = task.payload
        plan: FaultPlan | None = self.runner.fault_plan
        if plan is not None:
            # Network faults belong to the service socket layer; an
            # in-process worker has no socket to fault, so only the
            # in-worker kinds ride the payload.
            actions = [
                a
                for a in plan.actions_for(
                    task.job_id, task.index, task.attempt
                )
                if not a.is_network
            ]
            if actions:
                payload = dict(payload)
                payload["_fault"] = [a.to_dict() for a in actions]
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main, args=(child_conn, payload), daemon=True
        )
        proc.start()
        child_conn.close()  # keep one write end, so EOF means death
        deadline = (
            None
            if self.runner.job_timeout is None
            else time.monotonic() + self.runner.job_timeout
        )
        running[parent_conn] = (task, proc, deadline)

    @staticmethod
    def _next_wake(running: dict, waiting: list) -> float | None:
        marks = [d for _, _, d in running.values() if d is not None]
        if waiting:
            marks.append(waiting[0][0])
        if not marks:
            return None
        return max(0.0, min(marks) - time.monotonic())

    def _collect(self, conn, proc, task: _Task) -> dict[str, Any]:
        record = None
        try:
            record = conn.recv()
        except (EOFError, OSError):
            record = None
        finally:
            conn.close()
        proc.join(timeout=5.0)
        if isinstance(record, dict):
            return record
        self.worker_crashes += 1
        return _failure_record(
            task,
            f"WorkerCrash: worker exited with code {proc.exitcode} "
            f"before returning a result (attempt {task.attempt})",
            "worker_crash",
        )

    def _reap_timeouts(self, running: dict, settle) -> None:
        now = time.monotonic()
        expired = [
            conn
            for conn, (_, _, deadline) in running.items()
            if deadline is not None and now >= deadline
        ]
        for conn in expired:
            task, proc, _ = running.pop(conn)
            self._kill(proc)
            conn.close()
            self.timeouts += 1
            settle(
                task,
                _failure_record(
                    task,
                    f"JobTimeout: exceeded the "
                    f"{self.runner.job_timeout:g}s wall-clock budget "
                    f"(attempt {task.attempt})",
                    "timeout",
                ),
            )

    @staticmethod
    def _kill(proc) -> None:
        proc.terminate()
        proc.join(timeout=1.0)
        if proc.is_alive():  # pragma: no cover - SIGTERM blocked
            proc.kill()
            proc.join(timeout=5.0)


class CampaignRunner:
    """Executes campaigns against a cache, store, journal, and workers.

    Attributes:
        cache: result cache, or None to always simulate.
        store: JSONL store every record is appended to, or None.
        workers: concurrent in-flight jobs; 1 executes inline (no
            subprocesses) unless a timeout or fault plan forces the
            supervised path.
        job_timeout: per-attempt wall-clock budget in seconds; None
            disables (requires the supervised path to enforce).
        max_retries: transient-failure retries per job (0 = fail on
            first error, the historical behaviour).
        backoff_base / backoff_cap / backoff_seed: seeded exponential
            backoff shape (see :func:`~repro.experiments.faults.
            backoff_seconds`).
        fault_plan: deterministic fault injection for chaos testing.
        journal: campaign journal for crash-safe resume, or None.
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        store: ResultStore | None = None,
        workers: int = 1,
        job_timeout: float | None = None,
        max_retries: int = 0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_seed: int = 0,
        fault_plan: FaultPlan | None = None,
        journal: CampaignJournal | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.cache = cache
        self.store = store
        self.workers = workers
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_seed = backoff_seed
        self.fault_plan = fault_plan
        self.journal = journal

    def run(
        self,
        sweep: SweepSpec | list[JobSpec],
        progress: Callable[[str], None] | None = None,
        telemetry: Callable[[dict[str, Any]], None] | None = None,
    ) -> CampaignResult:
        """Execute every job of a sweep; returns the campaign result.

        Records come back in grid order regardless of which points hit
        the cache or which worker finished first.  ``telemetry``, if
        given, receives one sample dict per *freshly executed* job as
        its final outcome settles (keys: ``job_id``, ``status``,
        ``done``, ``total``, ``cached``, ``failed``, ``running``,
        ``elapsed_seconds``, ``eta_seconds``) — the live feed behind
        ``repro sweep --progress``.  ``progress`` keeps its historical
        meaning: one formatted line per record, in grid order, after
        execution finishes.

        Job failures of any class never raise: the campaign completes
        with partial results and a structured
        :meth:`CampaignResult.failure_report`.  A KeyboardInterrupt —
        or a SIGTERM, routed through the same path when running on the
        main thread — checkpoints the journal and returns the partial
        result with ``interrupted`` set instead of propagating.

        Raises :class:`SpecDriftError` when resuming against a journal
        whose recorded campaign_id no longer matches the spec.
        """
        with sigterm_as_interrupt():
            return self._run(sweep, progress, telemetry)

    def _run(
        self,
        sweep: SweepSpec | list[JobSpec],
        progress: Callable[[str], None] | None = None,
        telemetry: Callable[[dict[str, Any]], None] | None = None,
    ) -> CampaignResult:
        spec = sweep if isinstance(sweep, SweepSpec) else None
        if spec is not None:
            name = spec.name
            jobs = spec.expand()
        else:
            name = "jobs"
            jobs = list(sweep)
        started = time.perf_counter()
        corrupt_before = self.cache.corrupt_dropped if self.cache else 0

        journal_done: dict[str, dict[str, Any]] = {}
        if self.journal is not None:
            if self.journal.exists():
                self.journal.recover()
                if spec is not None:
                    self._check_spec_drift(spec)
                journal_done = self.journal.completed()
                self.journal.append({"event": "resume"})
            else:
                self.journal.start(
                    campaign_id(spec) if spec is not None else name,
                    name,
                    spec.to_dict() if spec is not None else None,
                    str(self.store.path) if self.store else None,
                )

        resumed: dict[int, dict[str, Any]] = {}
        cached: dict[int, dict[str, Any]] = {}
        todo: list[tuple[int, JobSpec]] = []
        for index, job in enumerate(jobs):
            journaled = journal_done.get(job.job_id)
            if journaled is not None:
                resumed[index] = journaled
                continue
            record = self.cache.get_job(job) if self.cache else None
            if record is not None:
                cached[index] = record
            else:
                todo.append((index, job))

        n_fresh = len(todo)
        n_served = len(cached) + len(resumed)
        done = failed = 0

        def on_result(record: dict[str, Any], attempts: int = 1) -> None:
            nonlocal done, failed
            done += 1
            if record.get("status") == "error":
                failed += 1
            elif self.journal is not None:
                # Journal completions the moment they happen — the
                # crash-safety contract — in their final store form.
                self.journal.record_job(
                    {**record, "cached": False, "campaign": name}
                )
            if telemetry is None:
                return
            elapsed = time.perf_counter() - started
            telemetry(
                {
                    "job_id": record.get("job_id"),
                    "status": record.get("status"),
                    "done": done,
                    "total": n_fresh,
                    "cached": n_served,
                    "failed": failed,
                    "running": min(self.workers, n_fresh - done),
                    "elapsed_seconds": elapsed,
                    "eta_seconds": (
                        elapsed / done * (n_fresh - done) if done else None
                    ),
                }
            )

        out = CampaignResult(
            name=name,
            hits=len(cached),
            misses=len(todo),
            workers=self.workers,
            resumed=len(resumed),
        )
        fresh = self._execute(todo, on_result, out)

        by_index: dict[int, dict[str, Any]] = dict(cached)
        by_index.update(fresh)
        job_by_index = {index: job for index, job in todo}
        for index, record in fresh.items():
            if self.cache is not None and record.get("status") == "ok":
                self.cache.put_job(job_by_index[index], record)
        for index, record in resumed.items():
            by_index[index] = record
        for index in range(len(jobs)):
            if index not in by_index:
                out.remaining.append(jobs[index].job_id)
                continue
            record = dict(by_index[index])
            record["cached"] = index in cached
            record["campaign"] = name
            if index in resumed:
                record["resumed"] = True
            if record.get("status") == "error" and index in fresh:
                out.errors += 1
                out.failures.append(
                    {
                        "job_id": record.get("job_id"),
                        "kind": record.get("kind", "model"),
                        "label": jobs[index].label(),
                        "error": record.get("error"),
                        "error_class": record.get(
                            "error_class", "permanent"
                        ),
                        "attempts": record.get("attempts", 1),
                        "quarantined": record.get("quarantined", False),
                    }
                )
            out.records.append(record)
            if progress is not None:
                progress(_progress_line(record))
        out.elapsed_seconds = time.perf_counter() - started
        corrupt_delta = (
            self.cache.corrupt_dropped - corrupt_before if self.cache else 0
        )
        out.metrics = self._aggregate_metrics(out, corrupt_delta)
        registry = active_registry()
        if registry is not None:
            registry.merge(out.metrics)
        if self.store is not None:
            self.store.extend(out.records)
        if self.journal is not None:
            event = "checkpoint" if out.interrupted else "end"
            self.journal.append(
                {"event": event, "report": out.failure_report()}
            )
        return out

    def _check_spec_drift(self, spec: SweepSpec) -> None:
        """Refuse to resume a journal for a different campaign."""
        assert self.journal is not None
        entry = self.journal.start_entry() or {}
        journaled = entry.get("campaign_id")
        expected = campaign_id(spec)
        if journaled is not None and journaled != expected:
            raise SpecDriftError(
                f"journal {self.journal.path} records campaign "
                f"{journaled!r} ({entry.get('campaign')!r}), but this "
                f"spec derives {expected!r} ({spec.name!r}); the grid, "
                f"seed, or name has drifted since the journal was "
                f"written — resume with the original spec, or start a "
                f"fresh campaign (delete the journal or change "
                f"--journal)"
            )

    def _aggregate_metrics(
        self, out: CampaignResult, cache_corrupt: int = 0
    ) -> dict[str, Any]:
        """Campaign-wide metrics: record snapshots + runner counters.

        Cached records contribute too — their stored metrics describe
        the same deterministic simulations, so a fully-cached campaign
        reports the same simulator counter families as a cold one.
        """
        metrics: dict[str, Any] = {}
        for record in out.records:
            result = record.get("result") or {}
            snapshot = result.get("metrics")
            if snapshot:
                merge_metrics(metrics, snapshot)
        merge_metrics(
            metrics,
            {
                "cache.hits": out.hits,
                "cache.misses": out.misses,
                "cache.errors": out.errors,
                "cache.corrupt_entries": cache_corrupt,
                "runner.jobs": out.n_jobs,
                "runner.workers.peak": min(self.workers, out.misses),
                "runner.resumed": out.resumed,
                "runner.retries": out.retries,
                "runner.timeouts": out.timeouts,
                "runner.worker_crashes": out.worker_crashes,
                "runner.quarantined": len(out.quarantined),
            },
        )
        return metrics

    def _execute(
        self,
        todo: list[tuple[int, JobSpec]],
        on_result: Callable[[dict[str, Any], int], None],
        out: CampaignResult,
    ) -> dict[int, dict[str, Any]]:
        """Execute the cache misses; returns index -> final record."""
        if not todo:
            return {}
        tasks = [
            _Task(index, job.job_id, job.kind, job.to_dict())
            for index, job in todo
        ]
        supervised = (
            self.workers > 1
            or self.job_timeout is not None
            or self.fault_plan is not None
        )
        if supervised:
            supervisor = _Supervisor(self)
            results = supervisor.run(
                tasks,
                lambda index, record, attempts: on_result(
                    record, attempts
                ),
            )
            out.retries = supervisor.retries
            out.timeouts = supervisor.timeouts
            out.worker_crashes = supervisor.worker_crashes
            out.quarantined = supervisor.quarantined
            out.interrupted = supervisor.interrupted
            return results
        return self._execute_inline(tasks, on_result, out)

    def _execute_inline(
        self,
        tasks: list[_Task],
        on_result: Callable[[dict[str, Any], int], None],
        out: CampaignResult,
    ) -> dict[int, dict[str, Any]]:
        """Single-process path: no subprocesses, so no kill/hang
        defence — but the same retry/backoff/classification policy.

        Suspends any active registry around in-process execution: the
        runner's single post-run aggregation is the one publication
        path, matching supervised workers (whose processes never
        publish into the parent's registry).
        """
        results: dict[int, dict[str, Any]] = {}
        try:
            with metrics_suspended():
                for task in tasks:
                    while True:
                        record = execute_job(task.payload)
                        if record.get("status") == "ok":
                            break
                        error_class = classify_error(
                            record.get("error"),
                            _kind_transients(task.kind),
                        )
                        if (
                            error_class == "permanent"
                            or task.attempt > self.max_retries
                        ):
                            record = dict(record)
                            record["error_class"] = error_class
                            record["attempts"] = task.attempt
                            record["quarantined"] = (
                                error_class != "permanent"
                            )
                            if record["quarantined"]:
                                out.quarantined.append(task.job_id)
                            break
                        out.retries += 1
                        time.sleep(
                            backoff_seconds(
                                self.backoff_seed,
                                task.job_id,
                                task.attempt,
                                self.backoff_base,
                                self.backoff_cap,
                            )
                        )
                        task.attempt += 1
                    results[task.index] = record
                    on_result(record, task.attempt)
        except KeyboardInterrupt:
            out.interrupted = True
        return results


def _progress_line(record: dict[str, Any]) -> str:
    handler = job_kind(record.get("kind", "model"))
    label = handler.record_label(record)
    origin = (
        "journal"
        if record.get("resumed")
        else "cache" if record.get("cached") else "sim"
    )
    if record.get("status") != "ok":
        return f"  {label}: ERROR ({record.get('error')})"
    return f"  {label} [{origin}]: {handler.result_summary(record['result'])}"
