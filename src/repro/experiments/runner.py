"""Campaign execution: worker pool, cache consultation, failure capture.

The :class:`CampaignRunner` takes a sweep (or an explicit job list),
serves every already-simulated point from the
:class:`~repro.experiments.cache.ResultCache`, and executes the misses
across a ``multiprocessing`` pool.  Execution dispatches through the
job-kind registry (:mod:`repro.experiments.kinds`), so model, batch,
and synthetic jobs — and any kind registered later — share one
runner.  Job records are fully deterministic (no timestamps, no host
state), so a sweep executed with one worker is byte-identical to the
same sweep executed with eight — the property the cache and the
regression tests rely on.

A job that raises is captured as a ``status="error"`` record with the
traceback; it does not poison the pool, is *not* cached (so the point
retries on the next run), and still lands in the result store for
inspection.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.experiments.cache import ResultCache
from repro.experiments.kinds import job_kind
from repro.experiments.spec import JobSpec, SweepSpec
from repro.experiments.store import ResultStore
from repro.obs.metrics import (
    active_registry,
    merge_metrics,
    metrics_suspended,
)

__all__ = ["execute_job", "CampaignResult", "CampaignRunner"]


def execute_job(payload: dict[str, Any]) -> dict[str, Any]:
    """Run one serialized job; never raises.

    Module-level (not a method) so worker processes can import it, and
    dict-in/dict-out so every transport — inline call, fork, spawn —
    carries the same picklable payload.
    """
    try:
        job = JobSpec.from_dict(payload)
        result = job_kind(job.kind).execute(job)
        return {
            "job_id": job.job_id,
            "kind": job.kind,
            "model": job.model,
            "model_seed": job.model_seed,
            "image_seed": job.image_seed,
            "n_images": job.n_images,
            "config": job.config.to_dict(),
            "status": "ok",
            "result": result,
            "error": None,
        }
    except Exception as exc:
        try:
            job_id = JobSpec.from_dict(payload).job_id
        except Exception:
            job_id = "?"
        return {
            "job_id": job_id,
            "kind": payload.get("kind", "model"),
            "model": payload.get("model", "?"),
            "model_seed": payload.get("model_seed"),
            "image_seed": payload.get("image_seed"),
            "n_images": payload.get("n_images"),
            "config": payload.get("config", {}),
            "status": "error",
            "result": None,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


@dataclass
class CampaignResult:
    """Outcome of one campaign run.

    Attributes:
        name: campaign name.
        records: one record per job, in grid order.
        hits / misses: cache accounting for this run.
        errors: jobs that failed (status="error").
        elapsed_seconds: wall-clock time of the run.
        workers: pool size used for the misses.
        metrics: campaign-wide observability aggregate — every
            record's ``result["metrics"]`` merged (``.peak`` names by
            max, the rest summed) plus the runner's own ``cache.*`` /
            ``runner.*`` counters.
    """

    name: str
    records: list[dict[str, Any]] = field(default_factory=list)
    hits: int = 0
    misses: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0
    workers: int = 1
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def n_jobs(self) -> int:
        return len(self.records)

    @property
    def hit_rate(self) -> float:
        """Fraction of jobs served from cache, in [0, 1]."""
        if not self.records:
            return 0.0
        return self.hits / len(self.records)

    def ok_records(self) -> list[dict[str, Any]]:
        return [r for r in self.records if r.get("status") == "ok"]

    def summary(self) -> str:
        """The printed cache-hit summary line."""
        return (
            f"campaign {self.name!r}: {self.n_jobs} jobs, "
            f"{self.hits} cache hits / {self.misses} simulated "
            f"({100.0 * self.hit_rate:.1f}% hit rate), "
            f"{self.errors} errors, {self.workers} workers, "
            f"{self.elapsed_seconds:.2f}s"
        )


class CampaignRunner:
    """Executes campaigns against a cache, store, and worker pool.

    Attributes:
        cache: result cache, or None to always simulate.
        store: JSONL store every record is appended to, or None.
        workers: pool size; 1 executes inline (no subprocesses),
            which keeps single-core runs and pytest sessions cheap.
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        store: ResultStore | None = None,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.cache = cache
        self.store = store
        self.workers = workers

    def run(
        self,
        sweep: SweepSpec | list[JobSpec],
        progress: Callable[[str], None] | None = None,
        telemetry: Callable[[dict[str, Any]], None] | None = None,
    ) -> CampaignResult:
        """Execute every job of a sweep; returns the campaign result.

        Records come back in grid order regardless of which points hit
        the cache or which worker finished first.  ``telemetry``, if
        given, receives one sample dict per *freshly executed* job as
        its result streams back from the pool (keys: ``job_id``,
        ``status``, ``done``, ``total``, ``cached``, ``failed``,
        ``running``, ``elapsed_seconds``, ``eta_seconds``) — the live
        feed behind ``repro sweep --progress``.  ``progress`` keeps its
        historical meaning: one formatted line per record, in grid
        order, after execution finishes.
        """
        if isinstance(sweep, SweepSpec):
            name = sweep.name
            jobs = sweep.expand()
        else:
            name = "jobs"
            jobs = list(sweep)
        started = time.perf_counter()

        cached: dict[int, dict[str, Any]] = {}
        todo: list[tuple[int, JobSpec]] = []
        for index, job in enumerate(jobs):
            record = self.cache.get_job(job) if self.cache else None
            if record is not None:
                cached[index] = record
            else:
                todo.append((index, job))

        n_fresh = len(todo)
        done = failed = 0

        def on_result(record: dict[str, Any]) -> None:
            nonlocal done, failed
            done += 1
            if record.get("status") == "error":
                failed += 1
            if telemetry is None:
                return
            elapsed = time.perf_counter() - started
            telemetry(
                {
                    "job_id": record.get("job_id"),
                    "status": record.get("status"),
                    "done": done,
                    "total": n_fresh,
                    "cached": len(cached),
                    "failed": failed,
                    "running": min(self.workers, n_fresh - done),
                    "elapsed_seconds": elapsed,
                    "eta_seconds": (
                        elapsed / done * (n_fresh - done) if done else None
                    ),
                }
            )

        fresh = self._execute([job for _, job in todo], on_result)

        out = CampaignResult(
            name=name,
            hits=len(cached),
            misses=len(todo),
            workers=self.workers,
        )
        by_index = dict(cached)
        for (index, job), record in zip(todo, fresh):
            if self.cache is not None and record.get("status") == "ok":
                self.cache.put_job(job, record)
            by_index[index] = record
        for index in range(len(jobs)):
            record = dict(by_index[index])
            record["cached"] = index in cached
            record["campaign"] = name
            if record.get("status") == "error" and index not in cached:
                out.errors += 1
            out.records.append(record)
            if progress is not None:
                progress(_progress_line(record))
        out.elapsed_seconds = time.perf_counter() - started
        out.metrics = self._aggregate_metrics(out)
        registry = active_registry()
        if registry is not None:
            registry.merge(out.metrics)
        if self.store is not None:
            self.store.extend(out.records)
        return out

    def _aggregate_metrics(self, out: CampaignResult) -> dict[str, Any]:
        """Campaign-wide metrics: record snapshots + runner counters.

        Cached records contribute too — their stored metrics describe
        the same deterministic simulations, so a fully-cached campaign
        reports the same simulator counter families as a cold one.
        """
        metrics: dict[str, Any] = {}
        for record in out.records:
            result = record.get("result") or {}
            snapshot = result.get("metrics")
            if snapshot:
                merge_metrics(metrics, snapshot)
        merge_metrics(
            metrics,
            {
                "cache.hits": out.hits,
                "cache.misses": out.misses,
                "cache.errors": out.errors,
                "runner.jobs": out.n_jobs,
                "runner.workers.peak": min(self.workers, out.misses),
            },
        )
        return metrics

    def _execute(
        self,
        jobs: list[JobSpec],
        on_result: Callable[[dict[str, Any]], None] | None = None,
    ) -> list[dict[str, Any]]:
        payloads = [job.to_dict() for job in jobs]
        if not payloads:
            return []
        results: list[dict[str, Any]] = []
        if self.workers == 1 or len(payloads) == 1:
            # Suspend any active registry around in-process execution:
            # the runner's single post-run aggregation is the one
            # publication path, matching pool workers (whose processes
            # never see the parent's registry).
            with metrics_suspended():
                for payload in payloads:
                    record = execute_job(payload)
                    results.append(record)
                    if on_result is not None:
                        on_result(record)
            return results
        with multiprocessing.Pool(processes=self.workers) as pool:
            # imap preserves submission order while letting results
            # stream back as they complete — the telemetry feed sees
            # jobs finish without waiting for the whole grid.
            for record in pool.imap(execute_job, payloads, chunksize=1):
                results.append(record)
                if on_result is not None:
                    on_result(record)
        return results


def _progress_line(record: dict[str, Any]) -> str:
    handler = job_kind(record.get("kind", "model"))
    label = handler.record_label(record)
    origin = "cache" if record.get("cached") else "sim"
    if record.get("status") != "ok":
        return f"  {label}: ERROR ({record.get('error')})"
    return f"  {label} [{origin}]: {handler.result_summary(record['result'])}"
