"""Job-kind registry: pluggable workloads for the campaign engine.

The engine's dispatch is a registry of :class:`JobKind` handlers, one
per workload family.  A handler owns everything kind-specific:

* the config schema (building it from an expanded sweep point,
  serialising it into the canonical cache-key / JSONL form),
* execution (what simulator entry point a job drives),
* presentation (job labels, progress-line summaries).

Three kinds ship built in:

* ``"model"`` — single-image DNN inference via
  :func:`repro.accelerator.simulator.run_model_on_noc` (the paper's
  Fig. 12/13 grids).
* ``"batch"`` — a batch of images via :func:`run_batch_on_noc`, with
  per-image results fanned out inside the record.
* ``"synthetic"`` — standalone NoC traffic via
  :func:`repro.noc.traffic.run_synthetic` (uniform / transpose /
  complement / hotspot patterns).
* ``"replay"`` — recorded wire-image traces
  (:mod:`repro.workloads.traces`) re-scored offline or re-injected
  through a network core, with ordering strategies / link codings
  re-applied at replay time; ``core="both"`` is the differential mode
  that runs the event and stepped cores on identical traffic and
  fails the job on any per-link BT divergence.
* ``"serving"`` — a multi-tenant serving fleet
  (:mod:`repro.serving`): co-resident tenants on partitioned meshes
  with open-loop arrivals, admission/batching policies, per-tenant BT
  attribution and tail-latency percentiles.

``register_job_kind`` accepts further kinds; ``SweepSpec`` and
``CampaignRunner`` dispatch purely through the registry, so a new
workload never touches the engine's core.

Note: this module is cache-versioned (see ``_VERSIONED_MODULES`` in
cache.py) because the executors live here, so *any* edit — including
a label or progress-line tweak — invalidates on-disk caches.  That is
the conservative trade-off for keeping each kind's behaviour in one
class; split the presentation hooks out if label churn ever makes it
expensive.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, fields
from functools import lru_cache
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.accelerator.config import AcceleratorConfig, link_width_for
from repro.accelerator.simulator import run_batch_on_noc, run_model_on_noc
from repro.serving.fleet import ServingConfig, TenantSpec, parse_tenant_mix
from repro.serving.scenario import run_serving
from repro.dnn.datasets import synthetic_digits, synthetic_shapes
from repro.dnn.models import ModelSpec, build_model
from repro.experiments.hashing import derive_seed
from repro.noc.network import NoCConfig
from repro.obs.metrics import merge_metrics
from repro.noc.traffic import (
    SyntheticTrafficConfig,
    TrafficPattern,
    drive_synthetic,
)
from repro.workloads.streams import trained_lenet_model
from repro.workloads.traces import (
    REPLAY_ORDERINGS,
    TrafficTrace,
    reencode_per_link,
    replay_through_network,
    trace_digest,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.spec import JobSpec, SweepSpec

__all__ = [
    "MODEL_NAMES",
    "JOB_KINDS",
    "REPLAY_CORES",
    "REPLAY_CODINGS",
    "JobKind",
    "SyntheticJobConfig",
    "ReplayJobConfig",
    "ServingJobConfig",
    "job_kind",
    "parse_mesh_axis",
    "register_job_kind",
]

# Model names the workload builder knows how to construct.
MODEL_NAMES = ("lenet", "darknet", "trained_lenet")

# Pseudo-axes expanded specially rather than passed to the config.
_MESH_KEYS = ("width", "height", "n_mcs")


def parse_mesh_axis(text: str) -> dict[str, int]:
    """Parse "WxH:MCS" (e.g. "8x8:4") into mesh config fields."""
    try:
        mesh, _, mcs = text.partition(":")
        w, h = mesh.lower().split("x")
        return {
            "width": int(w),
            "height": int(h),
            "n_mcs": int(mcs) if mcs else 2,
        }
    except ValueError as exc:
        raise ValueError(
            f"bad mesh {text!r}; use WxH:MCS like 8x8:4"
        ) from exc


def _spec_default(obj: Any, name: str) -> Any:
    """The dataclass default of one of ``obj``'s fields."""
    (field_,) = [f for f in fields(type(obj)) if f.name == name]
    return field_.default


def _build_model_images(
    model_name: str, model_seed: int, image_seed: int, n_images: int
) -> tuple[ModelSpec, np.ndarray]:
    """Construct the (model, image batch) pair for a model/batch job."""
    if model_name == "trained_lenet":
        model = trained_lenet_model(seed=model_seed)
        images = synthetic_digits(n_images, seed=image_seed).images
    elif model_name == "lenet":
        model = build_model("lenet", rng=np.random.default_rng(model_seed))
        images = synthetic_digits(n_images, seed=image_seed).images
    elif model_name == "darknet":
        model = build_model("darknet", rng=np.random.default_rng(model_seed))
        images = synthetic_shapes(n_images, seed=image_seed).images
    else:
        raise ValueError(f"unknown model {model_name!r}")
    return model, images


@dataclass(frozen=True)
class SyntheticJobConfig:
    """Config of one synthetic-traffic point: traffic shape + NoC.

    Attributes:
        traffic: injection schedule, pattern, and payload parameters.
        noc: the mesh the traffic runs on.
    """

    traffic: SyntheticTrafficConfig
    noc: NoCConfig

    def label(self) -> str:
        """Short point label, e.g. "4x4 uniform random p150"."""
        return (
            f"{self.noc.width}x{self.noc.height} "
            f"{self.traffic.pattern.value} {self.traffic.payload} "
            f"p{self.traffic.n_packets}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; exact inverse of :meth:`from_dict`."""
        return {"traffic": self.traffic.to_dict(), "noc": self.noc.to_dict()}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SyntheticJobConfig":
        unknown = set(data) - {"traffic", "noc"}
        if unknown:
            raise ValueError(
                f"unknown SyntheticJobConfig keys: {sorted(unknown)}"
            )
        return cls(
            traffic=SyntheticTrafficConfig.from_dict(data["traffic"]),
            noc=NoCConfig.from_dict(data["noc"]),
        )

    @classmethod
    def from_flat(cls, kwargs: dict[str, Any]) -> "SyntheticJobConfig":
        """Build from a flat sweep-point mapping.

        Sweep axes address traffic and NoC fields by their plain names
        (the two field sets are disjoint); anything else is rejected
        with the full vocabulary so grid mistakes fail at expansion
        time, not inside a worker.
        """
        traffic_fields = {f.name for f in fields(SyntheticTrafficConfig)}
        noc_fields = {f.name for f in fields(NoCConfig)}
        traffic_kw: dict[str, Any] = {}
        noc_kw: dict[str, Any] = {}
        unknown: list[str] = []
        for key, value in kwargs.items():
            if key in traffic_fields:
                traffic_kw[key] = value
            elif key in noc_fields:
                noc_kw[key] = value
            else:
                unknown.append(key)
        if unknown:
            raise ValueError(
                f"unknown synthetic config fields {sorted(unknown)}; "
                f"traffic fields: {sorted(traffic_fields)}, "
                f"noc fields: {sorted(noc_fields)}"
            )
        if "pattern" in traffic_kw and not isinstance(
            traffic_kw["pattern"], TrafficPattern
        ):
            traffic_kw["pattern"] = TrafficPattern(traffic_kw["pattern"])
        return cls(
            traffic=SyntheticTrafficConfig(**traffic_kw),
            noc=NoCConfig(**noc_kw),
        )


#: Replay execution targets: offline re-scoring, one network core, or
#: the differential both-cores conformance mode.
REPLAY_CORES = ("offline", "event", "stepped", "both")

#: Link codings the offline replay path can re-apply.
REPLAY_CODINGS = ("none", "bus_invert", "delta")


@dataclass(frozen=True)
class ReplayJobConfig:
    """Config of one trace-replay point.

    Attributes:
        trace: path to a trace file written by
            :meth:`~repro.workloads.traces.TrafficTrace.save`.
        trace_sha256: content digest of the trace file; filled in from
            the file by :meth:`from_flat` when empty, verified again at
            execution time so a swapped file never serves stale cached
            results.
        ordering: transmission ordering re-applied at replay time
            ("none" or "popcount_desc").  The two replay targets apply
            it at different stages by construction: offline re-sorts
            each packet's wire images within their recorded per-link
            slots, while network replay sorts each packet's payloads
            *before* injection (link interleaving may then differ
            under contention).  Both estimate the ordering's benefit
            on identical traffic; compare rows with that in mind.
        coding: link coding re-applied offline ("none", "bus_invert",
            "delta"; offline mode only).
        core: "offline" re-scores the recorded wire images without a
            network; "event"/"stepped" re-inject the recorded packet
            schedule through that cycle-loop core; "both" is the
            differential conformance mode — both cores run the same
            traffic and the job *fails* on any per-link BT divergence.
        link_latency: optional NoC link-latency override for network
            replay (timing what-ifs on recorded traffic).
    """

    trace: str
    trace_sha256: str = ""
    ordering: str = "none"
    coding: str = "none"
    core: str = "offline"
    link_latency: int | None = None

    def __post_init__(self) -> None:
        if self.ordering not in REPLAY_ORDERINGS:
            raise ValueError(
                f"unknown replay ordering {self.ordering!r}; "
                f"use one of {REPLAY_ORDERINGS}"
            )
        if self.coding not in REPLAY_CODINGS:
            raise ValueError(
                f"unknown replay coding {self.coding!r}; "
                f"use one of {REPLAY_CODINGS}"
            )
        if self.core not in REPLAY_CORES:
            raise ValueError(
                f"unknown replay core {self.core!r}; "
                f"use one of {REPLAY_CORES}"
            )
        if self.coding != "none" and self.core != "offline":
            raise ValueError(
                "link codings re-apply offline only; use core='offline'"
            )
        if self.link_latency is not None:
            if self.core == "offline":
                raise ValueError(
                    "link_latency overrides need a network replay core"
                )
            if self.link_latency < 1:
                raise ValueError("link_latency must be at least 1")

    def label(self) -> str:
        """Short point label, e.g. "run.trace.gz popcount_desc both"."""
        parts = [os.path.basename(self.trace), self.ordering]
        if self.coding != "none":
            parts.append(self.coding)
        parts.append(self.core)
        if self.link_latency is not None:
            parts.append(f"lat{self.link_latency}")
        return " ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; exact inverse of :meth:`from_dict`."""
        return {
            "trace": self.trace,
            "trace_sha256": self.trace_sha256,
            "ordering": self.ordering,
            "coding": self.coding,
            "core": self.core,
            "link_latency": self.link_latency,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ReplayJobConfig":
        known = {
            "trace", "trace_sha256", "ordering", "coding", "core",
            "link_latency",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ReplayJobConfig keys: {sorted(unknown)}"
            )
        return cls(**data)

    @classmethod
    def from_flat(cls, kwargs: dict[str, Any]) -> "ReplayJobConfig":
        """Build from a flat sweep-point mapping.

        Reads the trace file to pin its content digest, so a missing
        or unreadable trace fails at grid-expansion time — with the
        point named — never inside a worker.
        """
        config = cls.from_dict(kwargs)
        if not config.trace_sha256:
            try:
                stat = os.stat(config.trace)
                digest = _trace_digest_cached(
                    config.trace, stat.st_mtime_ns, stat.st_size
                )
            except OSError as exc:
                raise ValueError(
                    f"cannot read trace file {config.trace!r}: {exc}"
                ) from exc
            config = ReplayJobConfig(
                **{**config.to_dict(), "trace_sha256": digest}
            )
        return config


@lru_cache(maxsize=256)
def _trace_digest_cached(path: str, mtime_ns: int, size: int) -> str:
    """Stat-keyed digest memo: a wide grid over one trace hashes the
    file once per (path, mtime, size), not once per expanded point.
    Executors still re-hash at run time, so a swap between expansion
    and execution is always caught."""
    return trace_digest(path)


class JobKind:
    """One workload family the campaign engine can run.

    Subclasses override the hooks; the base class implements the
    model-style (single-image inference) behaviour that ``"model"``
    uses directly and ``"batch"`` extends.
    """

    name = "model"
    # Which campaign_report block family renders this kind's records:
    # "accelerator" promises the RunResult-style scalar schema
    # (total_bit_transitions, data_format in config, ...), "synthetic"
    # the NoC-stats schema.
    report_family = "accelerator"
    # Exception type names (beyond the runner's built-in transient set)
    # whose failures the retry machinery should treat as retryable for
    # this kind.  Deterministic simulation bugs stay permanent.
    transient_errors: tuple[str, ...] = ()
    # Expansion parameters: which mesh pseudo-axis fields apply,
    # whether the kind carries a DNN model (and its workload seeds),
    # and whether its config takes a derived per-point seed at all.
    mesh_keys = _MESH_KEYS
    uses_model = True
    uses_seed = True

    # -- config schema ---------------------------------------------------

    def config_from_dict(self, data: dict[str, Any]) -> Any:
        return AcceleratorConfig.from_dict(data)

    def _validate_accel_workload(self, job: "JobSpec") -> None:
        if job.model not in MODEL_NAMES:
            raise ValueError(
                f"unknown model {job.model!r}; use one of {MODEL_NAMES}"
            )
        if not isinstance(job.config, AcceleratorConfig):
            raise ValueError(
                f"kind {self.name!r} needs an AcceleratorConfig, "
                f"got {type(job.config).__name__}"
            )

    def validate_job(self, job: "JobSpec") -> None:
        """Reject field combinations that make no sense for the kind."""
        self._validate_accel_workload(job)
        if job.n_images != 1:
            raise ValueError("n_images != 1 requires kind='batch'")

    def validate_spec(self, spec: "SweepSpec") -> None:
        """Reject sweep fields the kind would silently drop."""
        if spec.n_images != _spec_default(spec, "n_images"):
            raise ValueError("n_images requires kind='batch'")

    def key_payload(self, job: "JobSpec") -> dict[str, Any]:
        """The JSON-compatible identity hashed into the cache key."""
        return {
            "kind": self.name,
            "model": job.model,
            "model_seed": job.model_seed,
            "image_seed": job.image_seed,
            "max_cycles_per_layer": job.max_cycles_per_layer,
            "config": job.config.to_dict(),
        }

    # -- sweep expansion -------------------------------------------------

    def _build_point_config(self, kwargs: dict[str, Any]) -> Any:
        """Config object from a fully-resolved flat point mapping."""
        return AcceleratorConfig.from_dict(kwargs)

    def point_kwargs(
        self,
        spec: "SweepSpec",
        point: dict[str, Any],
        seed_salt: tuple[Any, ...] = (),
    ) -> dict[str, Any]:
        """Resolve one expanded grid point into JobSpec kwargs.

        One scaffold for every kind: base + mesh pseudo-axis + point
        values, a derived seed when none is pinned, and config
        construction with the kind named in any error.  Subclasses
        parameterize it via ``mesh_keys`` / ``uses_model`` /
        :meth:`_build_point_config`; ``seed_salt`` lets them fold
        kind-specific point fields that live outside the config (e.g.
        the batch size) into the derived seed, keeping per-job seeds
        collision-free.
        """
        point = dict(point)
        model = point.pop("model", spec.model) if self.uses_model else None
        kwargs: dict[str, Any] = dict(spec.base)
        mesh = point.pop("mesh", None)
        if mesh is not None:
            if not self.mesh_keys:
                raise ValueError(
                    f"job kind {self.name!r} takes no mesh axis"
                )
            mesh_kw = (
                parse_mesh_axis(mesh) if isinstance(mesh, str) else mesh
            )
            kwargs.update(
                {k: mesh_kw[k] for k in self.mesh_keys if k in mesh_kw}
            )
        kwargs.update(point)
        if self.uses_seed and "seed" not in kwargs:
            # The network core and task codec are execution details,
            # not workload identity: a --cores cross-check (or a
            # batch-vs-scalar codec axis) must sample the *same*
            # tasks/images on every point, so both stay out of the
            # derived seed (cache keys still separate per core/codec
            # via the config itself).
            seed_kwargs = {
                k: v for k, v in kwargs.items() if k not in ("core", "codec")
            }
            kwargs["seed"] = derive_seed(
                spec.seed, model if self.uses_model else self.name,
                seed_kwargs, *seed_salt,
            )
        try:
            config = self._build_point_config(kwargs)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"job kind {self.name!r}: {exc}") from exc
        out: dict[str, Any] = {
            "model": model,
            "config": config,
            "max_cycles_per_layer": spec.max_cycles_per_layer,
        }
        if self.uses_model:
            out["model_seed"] = spec.model_seed
            out["image_seed"] = spec.image_seed
        return out

    # -- execution -------------------------------------------------------

    def execute(self, job: "JobSpec") -> dict[str, Any]:
        """Run the job; returns the result payload (may raise)."""
        model, images = _build_model_images(
            job.model, job.model_seed, job.image_seed, 1
        )
        result = run_model_on_noc(
            job.config,
            model,
            images[0],
            max_cycles_per_layer=job.max_cycles_per_layer,
        )
        return result.to_dict()

    # -- presentation ----------------------------------------------------

    def job_label(self, job: "JobSpec") -> str:
        return f"{job.model} {job.config.label()}"

    def record_label(self, record: dict[str, Any]) -> str:
        """Point label recovered from a persisted record."""
        config = record.get("config", {})
        return (
            f"{record.get('model', '?')} "
            f"{config.get('width', '?')}x{config.get('height', '?')} "
            f"MC{config.get('n_mcs', '?')} {config.get('data_format', '?')} "
            f"{config.get('ordering', '?')}"
        )

    def result_summary(self, result: dict[str, Any]) -> str:
        """Progress-line fragment for a successful result payload."""
        return (
            f"{result['total_bit_transitions']:>10d} BTs "
            f"({result['total_cycles']} cycles, verified "
            f"{result['tasks_verified']}/{result['tasks_total']})"
        )


class BatchJobKind(JobKind):
    """A batch of images through :func:`run_batch_on_noc`.

    The record's result carries the batch aggregate at the top level
    (so the mesh/model/layer/link pivots work unchanged) plus a
    per-image fan-out under ``"images"``.
    """

    name = "batch"

    def validate_job(self, job: "JobSpec") -> None:
        self._validate_accel_workload(job)
        if job.n_images < 1:
            raise ValueError("batch jobs need n_images >= 1")

    def validate_spec(self, spec: "SweepSpec") -> None:
        if spec.n_images < 1:
            raise ValueError("batch sweeps need n_images >= 1")

    def key_payload(self, job: "JobSpec") -> dict[str, Any]:
        payload = super().key_payload(job)
        payload["n_images"] = job.n_images
        return payload

    def point_kwargs(
        self, spec: "SweepSpec", point: dict[str, Any]
    ) -> dict[str, Any]:
        point = dict(point)
        n_images = point.pop("n_images", spec.n_images)
        # Salt the derived seed with the batch size so an n_images
        # axis yields distinct per-job seeds like any other axis.
        kwargs = super().point_kwargs(
            spec, point, seed_salt=("n_images", n_images)
        )
        kwargs["n_images"] = n_images
        return kwargs

    def execute(self, job: "JobSpec") -> dict[str, Any]:
        model, images = _build_model_images(
            job.model, job.model_seed, job.image_seed, job.n_images
        )
        results = run_batch_on_noc(
            job.config,
            model,
            images,
            max_cycles_per_layer=job.max_cycles_per_layer,
        )
        per_link: dict[str, int] = {}
        fanout = []
        for index, result in enumerate(results):
            for link, bts in result.per_link.items():
                per_link[link] = per_link.get(link, 0) + bts
            image_dict = result.to_dict()
            del image_dict["config"]  # identical for every image
            image_dict["image_index"] = index
            fanout.append(image_dict)
        # Integer totals are summed directly: aggregate_results is the
        # float-summary API, and records/cache keys must carry exact
        # ints (float conversion rounds sums beyond 2**53).
        total_bt = sum(r.total_bit_transitions for r in results)
        metrics: dict[str, Any] = {}
        for r in results:
            merge_metrics(metrics, r.metrics)
        return {
            "total_bit_transitions": total_bt,
            "total_cycles": sum(r.total_cycles for r in results),
            "flit_hops": sum(r.flit_hops for r in results),
            "mean_bt_per_image": total_bt / len(results),
            "tasks_verified": sum(r.tasks_verified for r in results),
            "tasks_total": sum(r.tasks_total for r in results),
            "mean_packet_latency": float(
                np.mean([r.mean_packet_latency for r in results])
            ),
            "ordering_latency_cycles": sum(
                r.ordering_latency_cycles for r in results
            ),
            "n_images": len(results),
            "per_link": per_link,
            "steps_executed": sum(r.steps_executed for r in results),
            "idle_cycles_skipped": sum(
                r.idle_cycles_skipped for r in results
            ),
            "metrics": metrics,
            "images": fanout,
        }

    def job_label(self, job: "JobSpec") -> str:
        return f"{job.model}[x{job.n_images}] {job.config.label()}"

    def record_label(self, record: dict[str, Any]) -> str:
        label = super().record_label(record)
        n = (record.get("result") or {}).get("n_images", "?")
        return f"{label} (batch x{n})"

    def result_summary(self, result: dict[str, Any]) -> str:
        return (
            f"{result['total_bit_transitions']:>10d} BTs over "
            f"{result['n_images']} images (verified "
            f"{result['tasks_verified']}/{result['tasks_total']})"
        )


class SyntheticJobKind(JobKind):
    """Standalone synthetic NoC traffic (no DNN workload)."""

    name = "synthetic"
    report_family = "synthetic"
    # Synthetic traffic has no MCs and no DNN model; only the mesh
    # shape applies, and derived seeds hash the kind name instead.
    mesh_keys = ("width", "height")
    uses_model = False

    def config_from_dict(self, data: dict[str, Any]) -> Any:
        return SyntheticJobConfig.from_dict(data)

    def validate_job(self, job: "JobSpec") -> None:
        if job.model is not None:
            raise ValueError(
                "synthetic jobs carry no DNN model; leave model=None"
            )
        if not isinstance(job.config, SyntheticJobConfig):
            raise ValueError(
                f"kind 'synthetic' needs a SyntheticJobConfig, "
                f"got {type(job.config).__name__}"
            )
        # The DNN-workload fields are meaningless here and excluded
        # from key_payload, so non-default values would silently drop
        # on a to_dict round trip — reject them instead.
        for name in ("model_seed", "image_seed", "n_images"):
            if getattr(job, name) != _spec_default(job, name):
                raise ValueError(
                    "synthetic jobs take no model_seed/image_seed/"
                    "n_images; set the traffic seed in the config instead"
                )

    def validate_spec(self, spec: "SweepSpec") -> None:
        # A DNN-workload field on a synthetic sweep would be silently
        # dropped by point_kwargs — fail loudly instead.
        for name in ("model", "model_seed", "image_seed", "n_images"):
            if getattr(spec, name) != _spec_default(spec, name):
                raise ValueError(
                    f"synthetic sweeps take no {name}; "
                    "set workload fields in base/axes instead"
                )

    def key_payload(self, job: "JobSpec") -> dict[str, Any]:
        return {
            "kind": self.name,
            "max_cycles_per_layer": job.max_cycles_per_layer,
            "config": job.config.to_dict(),
        }

    def _build_point_config(self, kwargs: dict[str, Any]) -> Any:
        return SyntheticJobConfig.from_flat(kwargs)

    def execute(self, job: "JobSpec") -> dict[str, Any]:
        network = drive_synthetic(
            job.config.traffic,
            job.config.noc,
            max_cycles=job.max_cycles_per_layer,
        )
        stats = network.stats
        return {
            "total_bit_transitions": stats.total_bit_transitions,
            "total_cycles": stats.cycles,
            "flit_hops": stats.flit_hops,
            "packets_injected": stats.packets_injected,
            "packets_delivered": stats.packets_delivered,
            "flits_injected": stats.flits_injected,
            "mean_packet_latency": stats.mean_latency,
            "per_link": network.ledger.per_link(),
            "steps_executed": network.steps_executed,
            "idle_cycles_skipped": network.idle_cycles_skipped,
            "metrics": network.metrics_snapshot(),
        }

    def job_label(self, job: "JobSpec") -> str:
        return f"synthetic {job.config.label()}"

    def record_label(self, record: dict[str, Any]) -> str:
        config = record.get("config", {})
        traffic = config.get("traffic", {})
        noc = config.get("noc", {})
        return (
            f"synthetic {noc.get('width', '?')}x{noc.get('height', '?')} "
            f"{traffic.get('pattern', '?')} {traffic.get('payload', '?')} "
            f"p{traffic.get('n_packets', '?')}"
        )

    def result_summary(self, result: dict[str, Any]) -> str:
        return (
            f"{result['total_bit_transitions']:>10d} BTs "
            f"({result['total_cycles']} cycles, "
            f"{result['packets_delivered']} delivered, "
            f"mean latency {result['mean_packet_latency']:.1f})"
        )


class ReplayJobKind(JobKind):
    """Recorded-trace replay (offline re-scoring or network re-run).

    The workload is a trace file, content-addressed into the cache key
    via its digest: re-running a replay sweep over an unchanged trace
    is all cache hits, and editing the trace re-simulates exactly the
    affected points.  ``core="both"`` is the cross-core differential
    mode — both cycle-loop cores replay identical traffic and the job
    errors on any per-link BT divergence, making conformance checks a
    first-class (cached, parallel) campaign workload.
    """

    name = "replay"
    report_family = "replay"
    # No mesh (the trace pins the topology), no DNN model, and no
    # derived per-point seed (replay is deterministic by construction).
    mesh_keys = ()
    uses_model = False
    uses_seed = False
    # Trace files live on (possibly shared/remote) filesystems: a read
    # failure is environmental, not a property of the job — retry it.
    transient_errors = ("OSError", "PermissionError", "FileNotFoundError")

    def config_from_dict(self, data: dict[str, Any]) -> Any:
        return ReplayJobConfig.from_dict(data)

    def validate_job(self, job: "JobSpec") -> None:
        if job.model is not None:
            raise ValueError(
                "replay jobs carry no DNN model; leave model=None"
            )
        if not isinstance(job.config, ReplayJobConfig):
            raise ValueError(
                f"kind 'replay' needs a ReplayJobConfig, "
                f"got {type(job.config).__name__}"
            )
        for name in ("model_seed", "image_seed", "n_images"):
            if getattr(job, name) != _spec_default(job, name):
                raise ValueError(
                    "replay jobs take no model_seed/image_seed/n_images"
                )

    def validate_spec(self, spec: "SweepSpec") -> None:
        for name in ("model", "model_seed", "image_seed", "n_images"):
            if getattr(spec, name) != _spec_default(spec, name):
                raise ValueError(
                    f"replay sweeps take no {name}; "
                    "axes are trace/ordering/coding/core/link_latency"
                )

    def key_payload(self, job: "JobSpec") -> dict[str, Any]:
        config_dict = job.config.to_dict()
        if not config_dict["trace_sha256"]:
            # Programmatic configs may omit the digest, but the cache
            # key must always be content-addressed — an empty digest
            # would serve stale cached results after the trace file is
            # rewritten.  An unreadable file keeps the empty digest and
            # fails at execution with the captured-error machinery.
            try:
                stat = os.stat(config_dict["trace"])
                config_dict["trace_sha256"] = _trace_digest_cached(
                    config_dict["trace"], stat.st_mtime_ns, stat.st_size
                )
            except OSError:
                pass
        return {
            "kind": self.name,
            "max_cycles_per_layer": job.max_cycles_per_layer,
            "config": config_dict,
        }

    def _build_point_config(self, kwargs: dict[str, Any]) -> Any:
        return ReplayJobConfig.from_flat(kwargs)

    def execute(self, job: "JobSpec") -> dict[str, Any]:
        config = job.config
        # One read serves both the content check and the decode.
        raw = pathlib.Path(config.trace).read_bytes()
        digest = trace_digest(raw)
        if config.trace_sha256 and digest != config.trace_sha256:
            raise ValueError(
                f"trace file {config.trace!r} changed since the sweep "
                f"was expanded (digest {digest} != {config.trace_sha256})"
            )
        trace = TrafficTrace.from_bytes(raw, source=config.trace)
        recorded_per_link = trace.per_link_transitions()
        recorded_total = sum(recorded_per_link.values())
        payload: dict[str, Any] = {
            "trace": config.trace,
            "trace_sha256": digest,
            "recorded_bit_transitions": recorded_total,
            "trace_packets": len(trace.packets),
        }
        if config.core == "offline":
            if config.ordering == "none" and config.coding == "none":
                # Identity replay: the recorded pass *is* the answer —
                # don't re-walk every link's flit stream a second time.
                per_link = dict(recorded_per_link)
            else:
                per_link = reencode_per_link(
                    trace.reordered(config.ordering), config.coding
                )
            total = sum(per_link.values())
            payload.update(
                {
                    "total_bit_transitions": total,
                    "flit_hops": trace.total_flit_traversals(),
                    "per_link": per_link,
                    "cores": [],
                    "cores_agree": None,
                    "matches_recorded": per_link == recorded_per_link,
                }
            )
            return payload
        cores = (
            ["event", "stepped"] if config.core == "both" else [config.core]
        )
        overrides = (
            None
            if config.link_latency is None
            else {"link_latency": config.link_latency}
        )
        networks = {
            core: replay_through_network(
                trace,
                core=core,
                ordering=config.ordering,
                overrides=overrides,
                max_cycles=job.max_cycles_per_layer,
            )
            for core in cores
        }
        ledgers = {
            core: net.ledger.per_link() for core, net in networks.items()
        }
        if len(cores) == 2 and ledgers["event"] != ledgers["stepped"]:
            diverged = sorted(
                name
                for name in set(ledgers["event"]) | set(ledgers["stepped"])
                if ledgers["event"].get(name) != ledgers["stepped"].get(name)
            )
            raise RuntimeError(
                f"cross-core replay divergence on {len(diverged)} links "
                f"(first: {diverged[:4]})"
            )
        net = networks[cores[0]]
        per_link = ledgers[cores[0]]
        # Injection-link recorders (NI*.INJECT) exist only in the live
        # ledger, never in the captured trace (record_injection=True
        # configs).  Headline numbers therefore count the transmit-path
        # links the trace actually covers, so network rows stay
        # comparable with offline rows and with recorded_bit_transitions;
        # the unfiltered network-wide sum is kept alongside.
        transmit_links = {
            name: bts
            for name, bts in per_link.items()
            if not name.startswith("NI")
        }
        faithful = config.ordering == "none" and overrides is None
        stats = net.stats
        payload.update(
            {
                "total_bit_transitions": sum(transmit_links.values()),
                "network_bit_transitions": stats.total_bit_transitions,
                "total_cycles": stats.cycles,
                "flit_hops": stats.flit_hops,
                "packets_injected": stats.packets_injected,
                "packets_delivered": stats.packets_delivered,
                "mean_packet_latency": stats.mean_latency,
                "per_link": transmit_links,
                "steps_executed": net.steps_executed,
                "idle_cycles_skipped": net.idle_cycles_skipped,
                "metrics": net.metrics_snapshot(),
                "cores": cores,
                "cores_agree": True if len(cores) == 2 else None,
                "matches_recorded": (
                    transmit_links == recorded_per_link if faithful else None
                ),
            }
        )
        return payload

    def job_label(self, job: "JobSpec") -> str:
        return f"replay {job.config.label()}"

    def record_label(self, record: dict[str, Any]) -> str:
        config = record.get("config", {})
        trace = os.path.basename(str(config.get("trace", "?")))
        label = (
            f"replay {trace} {config.get('ordering', '?')} "
            f"{config.get('core', '?')}"
        )
        if config.get("coding", "none") != "none":
            label += f" {config['coding']}"
        if config.get("link_latency") is not None:
            label += f" lat{config['link_latency']}"
        return label

    def result_summary(self, result: dict[str, Any]) -> str:
        recorded = result.get("recorded_bit_transitions", 0)
        total = result["total_bit_transitions"]
        delta = (
            f", {100.0 * (recorded - total) / recorded:.2f}% vs recorded"
            if recorded
            else ""
        )
        cores = result.get("cores") or []
        agree = " [cores agree]" if result.get("cores_agree") else ""
        mode = "+".join(cores) if cores else "offline"
        return f"{total:>10d} BTs ({mode}{delta}){agree}"


@dataclass(frozen=True)
class ServingJobConfig:
    """Config of one serving-fleet point: the fleet + the shared NoC.

    Attributes:
        serving: tenants, arrival processes, and policies
            (:class:`repro.serving.fleet.ServingConfig`).
        noc: the mesh every tenant shares.
    """

    serving: ServingConfig
    noc: NoCConfig

    def label(self) -> str:
        """Short point label, e.g. "4x4 serving lenet+uniform O0"."""
        mix = "+".join(t.name for t in self.serving.tenants)
        return (
            f"{self.noc.width}x{self.noc.height} serving {mix} "
            f"{self.serving.ordering}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; exact inverse of :meth:`from_dict`."""
        return {"serving": self.serving.to_dict(), "noc": self.noc.to_dict()}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServingJobConfig":
        unknown = set(data) - {"serving", "noc"}
        if unknown:
            raise ValueError(
                f"unknown ServingJobConfig keys: {sorted(unknown)}"
            )
        return cls(
            serving=ServingConfig.from_dict(data["serving"]),
            noc=NoCConfig.from_dict(data["noc"]),
        )

    @classmethod
    def from_flat(cls, kwargs: dict[str, Any]) -> "ServingJobConfig":
        """Build from a flat sweep-point mapping.

        Sweep axes address serving and NoC fields by their plain names
        (disjoint sets).  ``tenants`` accepts the compact mix grammar
        ("lenet+uniform", see
        :func:`repro.serving.fleet.parse_tenant_mix`) or a list of
        tenant dicts.  ``link_width`` defaults to the fleet data
        format's paper link width.
        """
        serving_fields = {f.name for f in fields(ServingConfig)}
        noc_fields = {f.name for f in fields(NoCConfig)}
        serving_kw: dict[str, Any] = {}
        noc_kw: dict[str, Any] = {}
        unknown: list[str] = []
        for key, value in kwargs.items():
            if key in serving_fields:
                serving_kw[key] = value
            elif key in noc_fields:
                noc_kw[key] = value
            else:
                unknown.append(key)
        if unknown:
            raise ValueError(
                f"unknown serving config fields {sorted(unknown)}; "
                f"serving fields: {sorted(serving_fields)}, "
                f"noc fields: {sorted(noc_fields)}"
            )
        tenants = serving_kw.get("tenants")
        if isinstance(tenants, str):
            serving_kw["tenants"] = parse_tenant_mix(tenants)
        elif isinstance(tenants, (list, tuple)):
            serving_kw["tenants"] = tuple(
                t if isinstance(t, TenantSpec) else TenantSpec.from_dict(t)
                for t in tenants
            )
        if "inter_arrivals" in serving_kw:
            serving_kw["inter_arrivals"] = tuple(
                int(g) for g in serving_kw["inter_arrivals"]
            )
        if "link_width" not in noc_kw:
            data_format = serving_kw.get(
                "data_format",
                _spec_default(ServingConfig(), "data_format"),
            )
            noc_kw["link_width"] = link_width_for(data_format)
        return cls(
            serving=ServingConfig(**serving_kw),
            noc=NoCConfig(**noc_kw),
        )


class ServingJobKind(JobKind):
    """Multi-tenant serving fleet (:func:`repro.serving.run_serving`).

    Sweepable along tenant mix, arrival rates, ordering strategy, and
    mesh shape; results carry fleet-wide *and* per-tenant tail-latency
    percentiles next to the per-tenant BT attribution, rendered by the
    report's ``--pivot tenant`` grids.
    """

    name = "serving"
    report_family = "serving"
    # The mesh pseudo-axis maps "4x4:2" onto the shared NoC shape and
    # the per-model-tenant MC count; the derived per-point seed drives
    # arrivals and synthetic payloads.
    mesh_keys = ("width", "height", "n_mcs")
    uses_model = False

    def config_from_dict(self, data: dict[str, Any]) -> Any:
        return ServingJobConfig.from_dict(data)

    def validate_job(self, job: "JobSpec") -> None:
        if job.model is not None:
            raise ValueError(
                "serving jobs carry no top-level DNN model; tenants "
                "name their models in the fleet config"
            )
        if not isinstance(job.config, ServingJobConfig):
            raise ValueError(
                f"kind 'serving' needs a ServingJobConfig, "
                f"got {type(job.config).__name__}"
            )
        for name in ("model_seed", "image_seed", "n_images"):
            if getattr(job, name) != _spec_default(job, name):
                raise ValueError(
                    "serving jobs take no model_seed/image_seed/"
                    "n_images; set workload seeds in the serving config"
                )

    def validate_spec(self, spec: "SweepSpec") -> None:
        for name in ("model", "model_seed", "image_seed", "n_images"):
            if getattr(spec, name) != _spec_default(spec, name):
                raise ValueError(
                    f"serving sweeps take no {name}; "
                    "set workload fields in base/axes instead"
                )

    def key_payload(self, job: "JobSpec") -> dict[str, Any]:
        return {
            "kind": self.name,
            "max_cycles_per_layer": job.max_cycles_per_layer,
            "config": job.config.to_dict(),
        }

    def _build_point_config(self, kwargs: dict[str, Any]) -> Any:
        return ServingJobConfig.from_flat(kwargs)

    def execute(self, job: "JobSpec") -> dict[str, Any]:
        result = run_serving(
            job.config.serving,
            job.config.noc,
            max_cycles=job.max_cycles_per_layer,
        )
        tenants = [t.to_dict() for t in result.tenants]
        return {
            "total_bit_transitions": result.total_bit_transitions,
            "total_cycles": result.total_cycles,
            "flit_hops": result.flit_hops,
            "packets_injected": result.packets_injected,
            "packets_delivered": result.packets_delivered,
            "flits_injected": result.flits_injected,
            "mean_packet_latency": result.mean_packet_latency,
            "p50_packet_latency": result.latency_percentile(50),
            "p95_packet_latency": result.latency_percentile(95),
            "p99_packet_latency": result.latency_percentile(99),
            "requests_arrived": sum(t["requests_arrived"] for t in tenants),
            "requests_admitted": sum(
                t["requests_admitted"] for t in tenants
            ),
            "requests_rejected": sum(
                t["requests_rejected"] for t in tenants
            ),
            "requests_completed": sum(
                t["requests_completed"] for t in tenants
            ),
            "tenants": tenants,
            "per_link": result.per_link,
            "steps_executed": result.steps_executed,
            "idle_cycles_skipped": result.idle_cycles_skipped,
            "metrics": result.metrics,
        }

    def job_label(self, job: "JobSpec") -> str:
        return f"serving {job.config.label()}"

    def record_label(self, record: dict[str, Any]) -> str:
        config = record.get("config", {})
        serving = config.get("serving", {})
        noc = config.get("noc", {})
        mix = "+".join(
            t.get("name", "?") for t in serving.get("tenants", [])
        )
        return (
            f"serving {noc.get('width', '?')}x{noc.get('height', '?')} "
            f"{mix or '?'} {serving.get('ordering', '?')} "
            f"bg{serving.get('background_rate', '?')}"
        )

    def result_summary(self, result: dict[str, Any]) -> str:
        return (
            f"{result['total_bit_transitions']:>10d} BTs "
            f"(p99 latency {result['p99_packet_latency']:.1f}, "
            f"{result['requests_completed']}/{result['requests_arrived']} "
            f"requests)"
        )


JOB_KINDS: dict[str, JobKind] = {}


def register_job_kind(kind: JobKind) -> JobKind:
    """Register (or replace) a job kind under its name.

    Worker processes resolve kinds against *their own* registry, so a
    custom kind must be registered at import time of a module the
    workers also import (spawn-based platforms re-import from scratch;
    fork inherits the parent's registry).  Kinds registered only at
    runtime in the parent are limited to ``workers=1``; their jobs in
    a pool come back as clean ``status="error"`` records, never a
    crash.
    """
    JOB_KINDS[kind.name] = kind
    return kind


register_job_kind(JobKind())
register_job_kind(BatchJobKind())
register_job_kind(SyntheticJobKind())
register_job_kind(ReplayJobKind())
register_job_kind(ServingJobKind())


def job_kind(name: str) -> JobKind:
    """Look up a registered kind; unknown names fail loudly."""
    try:
        return JOB_KINDS[name]
    except KeyError:
        raise ValueError(
            f"unknown job kind {name!r}; registered kinds: "
            f"{sorted(JOB_KINDS)}"
        ) from None
