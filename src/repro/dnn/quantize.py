"""Fixed-point-8 quantisation for the fixed-8 experiment configurations.

The paper transmits either float-32 words or fixed-8 words on the link
(Sec. V).  We use symmetric per-tensor quantisation: a tensor maps to
int8 codes ``round(v / scale)`` with ``scale = max|v| / 127`` — the
standard choice for DNN weight/activation quantisation and the one that
produces the zero-heavy trained-weight byte statistics behind the
paper's 55.71 % fixed-8 result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bits.formats import Fixed8Format

__all__ = ["QuantizedTensor", "quantize_symmetric", "tensor_format"]


@dataclass(frozen=True)
class QuantizedTensor:
    """Int8 codes plus the scale that reconstructs real values.

    Attributes:
        codes: int8 array of quantised values.
        scale: real step size; ``dequantized = codes * scale``.
    """

    codes: np.ndarray
    scale: float

    def __post_init__(self) -> None:
        if self.codes.dtype != np.int8:
            raise ValueError(f"codes must be int8, got {self.codes.dtype}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def dequantize(self) -> np.ndarray:
        """Reconstruct float32 values."""
        return self.codes.astype(np.float32) * np.float32(self.scale)

    def words(self) -> np.ndarray:
        """Two's-complement wire bytes (uint8 view of the codes)."""
        return self.codes.view(np.uint8)


def quantize_symmetric(values: np.ndarray) -> QuantizedTensor:
    """Symmetric per-tensor int8 quantisation.

    ``scale = max|v| / 127`` so the largest magnitude maps to ±127.
    An all-zero tensor gets scale 1.0 (all codes zero).
    """
    arr = np.asarray(values, dtype=np.float64)
    max_abs = float(np.abs(arr).max()) if arr.size else 0.0
    if max_abs > 0:
        # Guard against subnormal inputs whose max/127 underflows to 0.
        scale = max(max_abs / 127.0, float(np.finfo(np.float64).tiny))
    else:
        scale = 1.0
    codes = np.clip(np.rint(arr / scale), -128, 127).astype(np.int8)
    return QuantizedTensor(codes=codes, scale=scale)


def tensor_format(values: np.ndarray) -> Fixed8Format:
    """A :class:`Fixed8Format` whose scale fits ``values`` symmetrically."""
    quant = quantize_symmetric(np.asarray(values))
    return Fixed8Format(scale=quant.scale)
