"""The two evaluation models: LeNet-5 and a DarkNet-like network.

The paper runs LeNet (32x32x1 input, Fig. 2) and "a DarkNet-like model"
whose input it reduces to 64x64x3 "to speed up the simulation"
(Sec. V-B).  :class:`LeNet5` follows the classic 6/16-filter 5x5
topology; :class:`DarkNetSlim` follows DarkNet's conv3x3 + LeakyReLU +
maxpool idiom at the reduced input size.

Both are :class:`~repro.dnn.layers.Sequential` models extended with the
metadata the accelerator needs: a name, the input shape, and a walk of
the weighted layers (:meth:`ModelSpec.weighted_layers`) used by the
task extractor in :mod:`repro.accelerator.tasks`.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.dnn.layers import (
    AvgPool2d,
    Conv2d,
    Flatten,
    Layer,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)

__all__ = ["ModelSpec", "LeNet5", "DarkNetSlim", "build_model"]


class ModelSpec(Sequential):
    """A Sequential model plus the metadata the accelerator consumes.

    Attributes:
        name: model identifier ("lenet" / "darknet").
        input_shape: (C, H, W) of a single sample.
        num_classes: classifier output width.
    """

    def __init__(
        self,
        name: str,
        input_shape: tuple[int, int, int],
        num_classes: int,
        layers: Sequence[Layer],
    ) -> None:
        super().__init__(layers)
        self.name = name
        self.input_shape = input_shape
        self.num_classes = num_classes

    def weighted_layers(self) -> Iterator[tuple[int, Layer]]:
        """Yield (layer_index, layer) for Conv2d/Linear layers in order."""
        for idx, layer in enumerate(self.layers):
            if isinstance(layer, (Conv2d, Linear)):
                yield idx, layer

    def parameter_count(self) -> int:
        """Total trainable scalars."""
        return sum(p.size for p in self.parameters())

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions for a batch (eval mode is not toggled)."""
        return np.argmax(self.forward(x), axis=1)


class LeNet5(ModelSpec):
    """LeNet-5 for 32x32x1 inputs: the paper's Fig. 2 workload.

    conv(6@5x5) -> ReLU -> pool2 -> conv(16@5x5) -> ReLU -> pool2 ->
    flatten -> fc(120) -> ReLU -> fc(84) -> ReLU -> fc(10).
    """

    def __init__(
        self,
        num_classes: int = 10,
        pool: str = "avg",
        rng: np.random.Generator | None = None,
    ) -> None:
        if rng is None:
            rng = np.random.default_rng(0)
        pool_layer = {"avg": AvgPool2d, "max": MaxPool2d}.get(pool)
        if pool_layer is None:
            raise ValueError(f"pool must be 'avg' or 'max', got {pool!r}")
        layers: list[Layer] = [
            Conv2d(1, 6, 5, name="conv1", rng=rng),
            ReLU(),
            pool_layer(2),
            Conv2d(6, 16, 5, name="conv2", rng=rng),
            ReLU(),
            pool_layer(2),
            Flatten(),
            Linear(16 * 5 * 5, 120, name="fc1", rng=rng),
            ReLU(),
            Linear(120, 84, name="fc2", rng=rng),
            ReLU(),
            Linear(84, num_classes, name="fc3", rng=rng),
        ]
        super().__init__("lenet", (1, 32, 32), num_classes, layers)


class DarkNetSlim(ModelSpec):
    """DarkNet-like model at the paper's reduced 64x64x3 input.

    Four conv3x3 stages (16/32/64/128 filters) with LeakyReLU(0.1) and
    2x2 maxpools, a final global average pool and a linear classifier —
    the standard tiny-DarkNet construction scaled to the reduced input.
    """

    def __init__(
        self,
        num_classes: int = 10,
        rng: np.random.Generator | None = None,
    ) -> None:
        if rng is None:
            rng = np.random.default_rng(0)
        layers: list[Layer] = [
            Conv2d(3, 16, 3, padding=1, name="conv1", rng=rng),
            LeakyReLU(0.1),
            MaxPool2d(2),  # 64 -> 32
            Conv2d(16, 32, 3, padding=1, name="conv2", rng=rng),
            LeakyReLU(0.1),
            MaxPool2d(2),  # 32 -> 16
            Conv2d(32, 64, 3, padding=1, name="conv3", rng=rng),
            LeakyReLU(0.1),
            MaxPool2d(2),  # 16 -> 8
            Conv2d(64, 128, 3, padding=1, name="conv4", rng=rng),
            LeakyReLU(0.1),
            AvgPool2d(8),  # 8 -> 1 (global average pool)
            Flatten(),
            Linear(128, num_classes, name="fc", rng=rng),
        ]
        super().__init__("darknet", (3, 64, 64), num_classes, layers)


def build_model(
    name: str, rng: np.random.Generator | None = None
) -> ModelSpec:
    """Construct a model by its paper name ("lenet" / "darknet")."""
    key = name.strip().lower()
    if key == "lenet":
        return LeNet5(rng=rng)
    if key in ("darknet", "darknetslim", "darknet-slim"):
        return DarkNetSlim(rng=rng)
    raise ValueError(f"unknown model {name!r}; use 'lenet' or 'darknet'")
