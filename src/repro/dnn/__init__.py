"""Mini DNN framework: layers, models, datasets, training, quantisation."""

from repro.dnn.datasets import LabeledDataset, synthetic_digits, synthetic_shapes
from repro.dnn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Layer,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
    Tanh,
)
from repro.dnn.models import DarkNetSlim, LeNet5, ModelSpec, build_model
from repro.dnn.quantize import QuantizedTensor, quantize_symmetric, tensor_format
from repro.dnn.tensor import Parameter
from repro.dnn.training import (
    SGD,
    TrainReport,
    evaluate_accuracy,
    train_classifier,
)

__all__ = [
    "LabeledDataset",
    "synthetic_digits",
    "synthetic_shapes",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Flatten",
    "Layer",
    "LeakyReLU",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Sequential",
    "SoftmaxCrossEntropy",
    "Tanh",
    "DarkNetSlim",
    "LeNet5",
    "ModelSpec",
    "build_model",
    "QuantizedTensor",
    "quantize_symmetric",
    "tensor_format",
    "Parameter",
    "SGD",
    "TrainReport",
    "evaluate_accuracy",
    "train_classifier",
]
