"""Layers of the mini DNN framework (numpy, manual backprop).

Implements the layer set needed by LeNet and the DarkNet-like model:
``Conv2d`` (im2col), ``Linear``, ``MaxPool2d``, ``AvgPool2d``,
``ReLU``, ``LeakyReLU``, ``Tanh``, ``BatchNorm2d``, ``Flatten`` and the
``Sequential`` container, plus ``SoftmaxCrossEntropy`` for training.

Every layer follows the same protocol: ``forward(x)`` caches what the
backward pass needs, ``backward(grad_out)`` returns ``grad_in`` and
fills the parameter ``grad`` fields.  Layout is NCHW throughout.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.dnn.tensor import Parameter, kaiming_uniform, xavier_uniform, zeros

__all__ = [
    "Layer",
    "Conv2d",
    "Linear",
    "MaxPool2d",
    "AvgPool2d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "BatchNorm2d",
    "Flatten",
    "Sequential",
    "SoftmaxCrossEntropy",
    "im2col",
    "col2im",
]


class Layer:
    """Base layer protocol."""

    training: bool = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> Iterator[Parameter]:
        """Yield trainable parameters (default: none)."""
        return iter(())

    def train(self) -> None:
        """Switch to training mode (affects BatchNorm)."""
        self.training = True

    def eval(self) -> None:
        """Switch to inference mode."""
        self.training = False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> np.ndarray:
    """Unfold NCHW input into convolution columns.

    Returns:
        shape ``(N, C*kh*kw, out_h*out_w)``.
    """
    n, c, h, w = x.shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kh}x{kw} stride {stride} pad {pad} does not fit "
            f"input {h}x{w}"
        )
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = xp[:, :, i:i_max:stride, j:j_max:stride]
    return cols.reshape(n, c * kh * kw, out_h * out_w)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold convolution columns back onto the (padded) input grid.

    Adjoint of :func:`im2col`; overlapping contributions accumulate.
    """
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    xp = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            xp[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j]
    if pad == 0:
        return xp
    return xp[:, :, pad : pad + h, pad : pad + w]


class Conv2d(Layer):
    """2-D convolution with square stride/padding, im2col based."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        name: str = "conv",
        rng: np.random.Generator | None = None,
    ) -> None:
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            f"{name}.weight",
            kaiming_uniform(
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in,
                rng,
            ),
        )
        self.bias = Parameter(f"{name}.bias", zeros((out_channels,)))
        self._cache: tuple[np.ndarray, tuple[int, int, int, int]] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self.padding
        cols = im2col(x, k, k, s, p)
        w2d = self.weight.value.reshape(self.out_channels, -1)
        out = np.einsum("fk,nkp->nfp", w2d, cols) + self.bias.value[None, :, None]
        n, _, h, w = x.shape
        out_h = (h + 2 * p - k) // s + 1
        out_w = (w + 2 * p - k) // s + 1
        self._cache = (cols, x.shape)
        return out.reshape(n, self.out_channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, x_shape = self._cache
        n = grad_out.shape[0]
        g2d = grad_out.reshape(n, self.out_channels, -1)
        w2d = self.weight.value.reshape(self.out_channels, -1)
        self.weight.grad += np.einsum("nfp,nkp->fk", g2d, cols).reshape(
            self.weight.value.shape
        )
        self.bias.grad += g2d.sum(axis=(0, 2))
        grad_cols = np.einsum("fk,nfp->nkp", w2d, g2d)
        k, s, p = self.kernel_size, self.stride, self.padding
        return col2im(grad_cols, x_shape, k, k, s, p)

    def parameters(self) -> Iterator[Parameter]:
        yield self.weight
        yield self.bias


class Linear(Layer):
    """Fully connected layer over flattened features."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        name: str = "fc",
        rng: np.random.Generator | None = None,
    ) -> None:
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            f"{name}.weight",
            xavier_uniform(
                (out_features, in_features), in_features, out_features, rng
            ),
        )
        self.bias = Parameter(f"{name}.bias", zeros((out_features,)))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected (N, {self.in_features}), got {x.shape}"
            )
        self._x = x
        return x @ self.weight.value.T + self.bias.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += grad_out.T @ self._x
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value

    def parameters(self) -> Iterator[Parameter]:
        yield self.weight
        yield self.bias


class MaxPool2d(Layer):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel_size: int) -> None:
        self.kernel_size = kernel_size
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        n, c, h, w = x.shape
        if h % k or w % k:
            raise ValueError(f"input {h}x{w} not divisible by pool {k}")
        xr = x.reshape(n, c, h // k, k, w // k, k)
        out = xr.max(axis=(3, 5))
        mask = xr == out[:, :, :, None, :, None]
        # Break ties so exactly one element routes the gradient.
        mask_flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(
            n, c, h // k, w // k, k * k
        )
        first = mask_flat & (np.cumsum(mask_flat, axis=-1) == 1)
        self._cache = (first, np.asarray(x.shape))
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        first, x_shape = self._cache
        n, c, h, w = (int(v) for v in x_shape)
        k = self.kernel_size
        grad = (
            first * grad_out[:, :, :, :, None]
        ).reshape(n, c, h // k, w // k, k, k)
        return grad.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)


class AvgPool2d(Layer):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, kernel_size: int) -> None:
        self.kernel_size = kernel_size
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        n, c, h, w = x.shape
        if h % k or w % k:
            raise ValueError(f"input {h}x{w} not divisible by pool {k}")
        self._x_shape = x.shape
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        k = self.kernel_size
        g = grad_out[:, :, :, None, :, None] / (k * k)
        return np.broadcast_to(
            g, (n, c, h // k, k, w // k, k)
        ).reshape(n, c, h, w)


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class LeakyReLU(Layer):
    """Leaky ReLU with DarkNet's default negative slope 0.1."""

    def __init__(self, negative_slope: float = 0.1) -> None:
        self.negative_slope = negative_slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_out, self.negative_slope * grad_out)


class Tanh(Layer):
    """Tanh activation (classic LeNet variants)."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._out**2)


class BatchNorm2d(Layer):
    """Per-channel batch normalisation with running statistics."""

    def __init__(
        self,
        num_features: int,
        eps: float = 1e-5,
        momentum: float = 0.1,
        name: str = "bn",
    ) -> None:
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(f"{name}.gamma", np.ones(num_features))
        self.beta = Parameter(f"{name}.beta", np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected (N, {self.num_features}, H, W), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std, np.asarray(x.shape))
        return (
            self.gamma.value[None, :, None, None] * x_hat
            + self.beta.value[None, :, None, None]
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, x_shape = self._cache
        n, _, h, w = (int(v) for v in x_shape)
        m = n * h * w
        self.gamma.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_out.sum(axis=(0, 2, 3))
        g = grad_out * self.gamma.value[None, :, None, None]
        if not self.training:
            return g * inv_std[None, :, None, None]
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        return (
            inv_std[None, :, None, None] / m * (m * g - sum_g - x_hat * sum_gx)
        )

    def parameters(self) -> Iterator[Parameter]:
        yield self.gamma
        yield self.beta


class Flatten(Layer):
    """Flatten NCHW features into (N, C*H*W)."""

    def __init__(self) -> None:
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._x_shape)


class Sequential(Layer):
    """Ordered layer container; the model type used by this library."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> Iterator[Parameter]:
        for layer in self.layers:
            yield from layer.parameters()

    def train(self) -> None:
        self.training = True
        for layer in self.layers:
            layer.train()

    def eval(self) -> None:
        self.training = False
        for layer in self.layers:
            layer.eval()

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for p in self.parameters():
            p.zero_grad()


class SoftmaxCrossEntropy:
    """Combined softmax + cross-entropy loss with integer labels."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy of ``logits`` (N, K) against ``labels`` (N,)."""
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        self._probs = probs
        self._labels = np.asarray(labels)
        n = logits.shape[0]
        picked = probs[np.arange(n), self._labels]
        return float(-np.log(np.clip(picked, 1e-12, None)).mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._labels] -= 1.0
        return grad / n
