"""SGD training loop for the mini framework.

Produces the *trained* weight configurations of Table I / Fig. 10-13.
Training is plain minibatch SGD with momentum; determinism comes from
seeded datasets and a seeded shuffle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dnn.datasets import LabeledDataset
from repro.dnn.layers import Sequential, SoftmaxCrossEntropy

__all__ = ["SGD", "TrainReport", "train_classifier", "evaluate_accuracy"]


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        model: Sequential,
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in model.parameters()]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for vel, param in zip(self._velocity, self.model.parameters()):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            vel *= self.momentum
            vel -= self.lr * grad
            param.value += vel


@dataclass
class TrainReport:
    """Per-epoch trace of a training run.

    Attributes:
        losses: mean training loss per epoch.
        accuracies: training accuracy per epoch (when evaluated).
    """

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no epochs recorded")
        return self.losses[-1]


def evaluate_accuracy(model: Sequential, dataset: LabeledDataset) -> float:
    """Fraction of correct predictions over a dataset (eval mode)."""
    model.eval()
    correct = 0
    for images, labels in dataset.batches(batch_size=128):
        preds = np.argmax(model.forward(images), axis=1)
        correct += int((preds == labels).sum())
    model.train()
    return correct / len(dataset)


def train_classifier(
    model: Sequential,
    dataset: LabeledDataset,
    epochs: int = 3,
    batch_size: int = 32,
    lr: float = 0.05,
    momentum: float = 0.9,
    weight_decay: float = 0.0,
    seed: int = 13,
    track_accuracy: bool = False,
) -> TrainReport:
    """Train ``model`` on ``dataset`` with SGD; returns the loss trace.

    Args:
        model: a Sequential classifier emitting (N, K) logits.
        dataset: the labelled training split.
        epochs: full passes over the data.
        batch_size: minibatch size.
        lr: SGD learning rate.
        momentum: SGD momentum.
        weight_decay: L2 regularisation strength (spreads trained
            weight magnitudes toward zero — the regime behind the
            paper's trained-weight BT statistics).
        seed: shuffle seed (dataset content is already seeded).
        track_accuracy: also record train accuracy per epoch (slower).
    """
    optimizer = SGD(model, lr=lr, momentum=momentum, weight_decay=weight_decay)
    loss_fn = SoftmaxCrossEntropy()
    rng = np.random.default_rng(seed)
    report = TrainReport()
    model.train()
    for _ in range(epochs):
        epoch_losses: list[float] = []
        for images, labels in dataset.batches(batch_size, rng=rng):
            model.zero_grad()
            logits = model.forward(images)
            loss = loss_fn.forward(logits, labels)
            model.backward(loss_fn.backward())
            optimizer.step()
            epoch_losses.append(loss)
        report.losses.append(float(np.mean(epoch_losses)))
        if track_accuracy:
            report.accuracies.append(evaluate_accuracy(model, dataset))
    return report
