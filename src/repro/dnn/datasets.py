"""Procedurally generated datasets (the MNIST/ImageNet substitute).

The paper trains LeNet on a real dataset to obtain *trained* weights;
offline we synthesise equivalents (see DESIGN.md §5):

* :func:`synthetic_digits` — 32x32x1 ten-class digit images rendered
  from a 5x7 seven-segment-style glyph atlas with random shift, scale
  noise and pixel noise.  Training LeNet on this task drives the weight
  distribution into the small-magnitude, zero-heavy regime whose
  bit-level statistics are what Table I / Fig. 10-11 measure.
* :func:`synthetic_shapes` — 64x64x3 ten-class colour/shape images for
  the DarkNet-like model.

Both return float arrays in [0, 1] (images) and int labels, fully
deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LabeledDataset", "synthetic_digits", "synthetic_shapes"]

# 5x7 glyph rows per digit; '#' pixels are on.  A compact bitmap font is
# enough: LeNet only needs a learnable, linearly non-trivial task.
_DIGIT_GLYPHS = {
    0: ("#####", "#...#", "#...#", "#...#", "#...#", "#...#", "#####"),
    1: ("..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."),
    2: ("#####", "....#", "....#", "#####", "#....", "#....", "#####"),
    3: ("#####", "....#", "....#", "#####", "....#", "....#", "#####"),
    4: ("#...#", "#...#", "#...#", "#####", "....#", "....#", "....#"),
    5: ("#####", "#....", "#....", "#####", "....#", "....#", "#####"),
    6: ("#####", "#....", "#....", "#####", "#...#", "#...#", "#####"),
    7: ("#####", "....#", "...#.", "..#..", "..#..", "..#..", "..#.."),
    8: ("#####", "#...#", "#...#", "#####", "#...#", "#...#", "#####"),
    9: ("#####", "#...#", "#...#", "#####", "....#", "....#", "#####"),
}


@dataclass(frozen=True)
class LabeledDataset:
    """A dataset split: ``images`` (N, C, H, W) in [0, 1], ``labels`` (N,)."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError("images and labels disagree on sample count")

    def __len__(self) -> int:
        return int(self.labels.shape[0])

    def batches(
        self, batch_size: int, rng: np.random.Generator | None = None
    ):
        """Yield (images, labels) minibatches, shuffled when rng given."""
        order = np.arange(len(self))
        if rng is not None:
            rng.shuffle(order)
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.images[idx], self.labels[idx]


def _render_digit(
    digit: int, size: int, scale: int, rng: np.random.Generator
) -> np.ndarray:
    """Render one glyph at integer ``scale`` with a random placement."""
    glyph = _DIGIT_GLYPHS[digit]
    h, w = 7 * scale, 5 * scale
    canvas = np.zeros((size, size), dtype=np.float64)
    max_dy, max_dx = size - h, size - w
    dy = int(rng.integers(0, max_dy + 1))
    dx = int(rng.integers(0, max_dx + 1))
    for r, row in enumerate(glyph):
        for c, ch in enumerate(row):
            if ch == "#":
                y0, x0 = dy + r * scale, dx + c * scale
                canvas[y0 : y0 + scale, x0 : x0 + scale] = 1.0
    return canvas


def synthetic_digits(
    n_samples: int,
    size: int = 32,
    noise: float = 0.15,
    seed: int = 7,
) -> LabeledDataset:
    """Ten-class digit images for LeNet training.

    Args:
        n_samples: total images (classes are drawn uniformly).
        size: square image side (LeNet uses 32).
        noise: std of additive Gaussian pixel noise.
        seed: RNG seed; identical seeds give identical datasets.
    """
    if size < 21:
        raise ValueError("size must be at least 21 to fit the glyphs")
    rng = np.random.default_rng(seed)
    images = np.empty((n_samples, 1, size, size), dtype=np.float64)
    labels = rng.integers(0, 10, size=n_samples)
    for i in range(n_samples):
        scale = int(rng.integers(2, 4))  # glyphs at 10x14 or 15x21
        canvas = _render_digit(int(labels[i]), size, scale, rng)
        canvas += rng.normal(0.0, noise, size=canvas.shape)
        images[i, 0] = np.clip(canvas, 0.0, 1.0)
    return LabeledDataset(images=images, labels=labels.astype(np.int64))


def _draw_shape(
    kind: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Rasterise one of five shape masks with random geometry."""
    yy, xx = np.mgrid[0:size, 0:size]
    cy = float(rng.uniform(size * 0.3, size * 0.7))
    cx = float(rng.uniform(size * 0.3, size * 0.7))
    r = float(rng.uniform(size * 0.15, size * 0.3))
    if kind == 0:  # disc
        return ((yy - cy) ** 2 + (xx - cx) ** 2 <= r * r).astype(np.float64)
    if kind == 1:  # square
        return (
            (np.abs(yy - cy) <= r) & (np.abs(xx - cx) <= r)
        ).astype(np.float64)
    if kind == 2:  # diamond
        return (np.abs(yy - cy) + np.abs(xx - cx) <= r).astype(np.float64)
    if kind == 3:  # horizontal bar
        return (
            (np.abs(yy - cy) <= r * 0.4) & (np.abs(xx - cx) <= r * 1.4)
        ).astype(np.float64)
    # vertical bar
    return (
        (np.abs(yy - cy) <= r * 1.4) & (np.abs(xx - cx) <= r * 0.4)
    ).astype(np.float64)


def synthetic_shapes(
    n_samples: int,
    size: int = 64,
    noise: float = 0.1,
    seed: int = 11,
) -> LabeledDataset:
    """Ten-class colour/shape images for the DarkNet-like model.

    Classes combine 5 shapes x 2 colour schemes; each image is RGB with
    background clutter so the conv stack has something to learn.
    """
    rng = np.random.default_rng(seed)
    images = np.empty((n_samples, 3, size, size), dtype=np.float64)
    labels = rng.integers(0, 10, size=n_samples)
    for i in range(n_samples):
        label = int(labels[i])
        shape_kind, scheme = label % 5, label // 5
        mask = _draw_shape(shape_kind, size, rng)
        img = rng.uniform(0.0, 0.25, size=(3, size, size))
        if scheme == 0:
            color = np.array([0.9, 0.2, 0.15])
        else:
            color = np.array([0.15, 0.35, 0.9])
        img += mask[None] * color[:, None, None]
        img += rng.normal(0.0, noise, size=img.shape)
        images[i] = np.clip(img, 0.0, 1.0)
    return LabeledDataset(images=images, labels=labels.astype(np.int64))
