"""Parameters and initialisers for the mini DNN framework.

The accelerator experiments need real DNN models whose weights can be
either randomly initialised or trained (Table I distinguishes the two).
This module holds the :class:`Parameter` container and the seeded
initialisers used by :mod:`repro.dnn.layers`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Parameter", "kaiming_uniform", "xavier_uniform", "zeros"]


@dataclass
class Parameter:
    """A trainable array with its accumulated gradient.

    Attributes:
        name: qualified name for reporting ("conv1.weight").
        value: the parameter tensor (float64 during training for
            gradient-check stability; cast on export).
        grad: gradient of the current backward pass, same shape.
    """

    name: str
    value: np.ndarray
    grad: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.value = np.asarray(self.value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad[...] = 0.0

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.value.size)


def kaiming_uniform(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming uniform init, the default for conv/linear weights."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform init (used for the classifier head)."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """Zero init (biases)."""
    return np.zeros(shape, dtype=np.float64)
