"""Perf-benchmark harness: tracked wall-clock numbers for the simulator.

``repro bench`` times a set of representative workloads and writes a
``BENCH_<tag>.json`` snapshot so every PR has a perf trajectory to
answer to.  The workloads cover the regimes the event-driven core
targets:

* ``fig12_paper_grid`` — the paper's exact Fig. 12 campaign (three
  mesh/MC points x two data formats x three orderings, trained LeNet).
* ``fig12_mesh_sweep`` — the Fig. 12 mesh-size axis extended to
  campaign scale (16x16 .. 80x80 meshes, two MCs), the regime where
  the stepped core's per-cycle full-mesh scans dominate.
* ``fig13_model_sweep`` — the Fig. 13 model axis (LeNet and DarkNet)
  over the paper's mesh points.
* ``synthetic_rates`` — uniform-random synthetic traffic at several
  injection rates; the sparse windows are idle-heavy, exercising the
  event core's fast-forward.
* ``trace_replay`` — a pre-recorded wire-image trace re-injected
  through the network (verbatim and reordered), the hot path of
  ``repro sweep --kind replay``; capture happens in the factory,
  outside the timed window.
* ``encode_throughput`` — the task codec alone: real LeNet/DarkNet
  task shapes ordered, flitised, and BT-scored offline with no
  network in the loop.  The regime the batch data plane targets; run
  with ``--codec batch`` vs ``--codec scalar`` to compare the two
  codec implementations (their BT totals must be identical — the
  codecs are pinned bit-equal).
* ``decode_throughput`` — the arrival plane alone: the same real task
  shapes pre-encoded once (untimed), then decoded back to
  original-order words — grouped ``decode_batch_words`` passes under
  ``--codec batch``, per-packet ``decode`` + ``original_pairs`` under
  ``--codec scalar``.  The reported ``bit_transitions`` is a popcount
  checksum of the recovered words, identical across codecs by the
  bit-equality contract (the CI gate asserts it).

Each workload runs to completion under the selected network core
(``event`` or ``stepped`` — see :mod:`repro.noc.network`) and task
codec (``batch`` or ``scalar`` — see
:mod:`repro.accelerator.flitize`), and reports wall seconds, simulated
cycles, *stepped* cycles (cycles the core actually executed; the
difference is fast-forwarded idle time), flit hops, bit transitions,
and derived throughput rates.

BENCH JSON schema (``schema`` = 1)::

    {
      "schema": 1,
      "tag": "eventcore",             # free-form label
      "core": "event",                # network core measured
      "codec": "batch",               # task codec measured
      "smoke": false,                 # reduced grids for CI
      "python": "3.11.7",
      "platform": "Linux-...",
      "meta": {                       # provenance (audit trail)
        "git_commit": "abc123...",    # null outside a git checkout
        "python": "3.11.7",
        "numpy": "1.26.4",
        "platform": "Linux-...",
        "machine": "x86_64"
      },
      "workloads": [
        {
          "name": "fig12_mesh_sweep",
          "wall_seconds": 1.23,
          "simulated_cycles": 5678,   # sum of stats.cycles
          "steps_executed": 5600,     # cycles actually stepped
          "flit_hops": 91011,
          "bit_transitions": 121314,
          "cycles_per_second": 4616.2,
          "flit_hops_per_second": 73992.6
        }, ...
      ],
      "totals": { same fields summed / recomputed },
      "peak_rss_bytes": 123456789
    }

Machine-independent invariant (asserted by ``--check-invariant`` and
the CI ``bench-smoke`` job): ``steps_executed <= simulated_cycles``
everywhere, with strict inequality somewhere on the event core —
i.e. fast-forward actually skipped idle cycles.  Wall-clock numbers
are recorded but never asserted; they are machine-dependent.
"""

from __future__ import annotations

import json
import pathlib
import platform
import resource
import subprocess
import sys
import time
from typing import Any, Callable

import numpy as np

from repro.accelerator.config import TASK_CODECS, AcceleratorConfig
from repro.ioutil import atomic_write_text
from repro.accelerator.simulator import AcceleratorSimulator
from repro.dnn.models import ModelSpec
from repro.noc.network import CORES, NoCConfig, network_core
from repro.noc.traffic import (
    SyntheticTrafficConfig,
    TrafficPattern,
    drive_synthetic,
)
from repro.ordering.strategies import OrderingMethod

__all__ = [
    "BENCH_SCHEMA",
    "WORKLOADS",
    "bench_meta",
    "run_bench",
    "check_invariants",
    "compare_bench",
    "default_bench_path",
]

BENCH_SCHEMA = 1

# (width, height, n_mcs) grids per workload; full vs --smoke.
_FIG12_PAPER_MESHES = [(4, 4, 2), (8, 8, 4), (8, 8, 8)]
_FIG12_SWEEP_MESHES = [
    (16, 16, 2),
    (24, 24, 2),
    (32, 32, 2),
    (48, 48, 2),
    (64, 64, 2),
    (80, 80, 2),
]
_FIG12_SWEEP_MESHES_SMOKE = [(8, 8, 2), (12, 12, 2)]
_FIG13_MESHES = [(4, 4, 2), (8, 8, 4)]


def _zero_metrics() -> dict[str, int]:
    return {
        "simulated_cycles": 0,
        "steps_executed": 0,
        "flit_hops": 0,
        "bit_transitions": 0,
    }


def _run_model_points(
    sims: list[AcceleratorSimulator],
) -> dict[str, int]:
    """Run prebuilt accelerator simulations; accumulate their metrics.

    Simulator construction (task extraction, wire formats) is workload
    *preparation* shared verbatim by both cores — it happens in the
    factories, outside the timed window, so the bench measures the
    cycle core itself.
    """
    metrics = _zero_metrics()
    for sim in sims:
        result = sim.run()
        network = sim.last_network
        metrics["simulated_cycles"] += result.total_cycles
        metrics["steps_executed"] += network.steps_executed
        metrics["flit_hops"] += result.flit_hops
        metrics["bit_transitions"] += result.total_bit_transitions
    return metrics


def _fig12_paper_grid(smoke: bool, codec: str) -> Callable[[], dict[str, int]]:
    from repro.workloads.figures import (
        figure_lenet_image,
        figure_trained_lenet,
    )

    model = figure_trained_lenet()
    image = figure_lenet_image()
    meshes = _FIG12_PAPER_MESHES[:1] if smoke else _FIG12_PAPER_MESHES
    formats = ("fixed8",) if smoke else ("float32", "fixed8")
    orderings = ("O0", "O2") if smoke else ("O0", "O1", "O2")
    tasks = 4 if smoke else 32
    sims = [
        AcceleratorSimulator(
            AcceleratorConfig(
                width=width,
                height=height,
                n_mcs=n_mcs,
                data_format=data_format,
                ordering=OrderingMethod.from_name(ordering),
                max_tasks_per_layer=tasks,
                seed=2025,
                codec=codec,
            ),
            model,
            image,
        )
        for data_format in formats
        for width, height, n_mcs in meshes
        for ordering in orderings
    ]
    return lambda: _run_model_points(sims)


def _fig12_mesh_sweep(smoke: bool, codec: str) -> Callable[[], dict[str, int]]:
    from repro.workloads.figures import (
        figure_lenet_image,
        figure_trained_lenet,
    )

    model = figure_trained_lenet()
    image = figure_lenet_image()
    meshes = _FIG12_SWEEP_MESHES_SMOKE if smoke else _FIG12_SWEEP_MESHES
    tasks = 2 if smoke else 8
    sims = [
        AcceleratorSimulator(
            AcceleratorConfig(
                width=width,
                height=height,
                n_mcs=n_mcs,
                data_format="fixed8",
                ordering=OrderingMethod.SEPARATED,
                max_tasks_per_layer=tasks,
                seed=2025,
                codec=codec,
            ),
            model,
            image,
        )
        for width, height, n_mcs in meshes
    ]
    return lambda: _run_model_points(sims)


def _fig13_model_sweep(smoke: bool, codec: str) -> Callable[[], dict[str, int]]:
    from repro.workloads.figures import (
        figure_darknet_image,
        figure_darknet_model,
        figure_lenet_image,
        figure_trained_lenet,
    )

    points = [("lenet", figure_trained_lenet(), figure_lenet_image())]
    if not smoke:
        points.append(
            ("darknet", figure_darknet_model(), figure_darknet_image())
        )
    meshes = _FIG13_MESHES[:1] if smoke else _FIG13_MESHES
    orderings = ("O2",) if smoke else ("O0", "O2")
    tasks = 2 if smoke else 16
    sims = [
        AcceleratorSimulator(
            AcceleratorConfig(
                width=width,
                height=height,
                n_mcs=n_mcs,
                data_format="fixed8",
                ordering=OrderingMethod.from_name(ordering),
                max_tasks_per_layer=tasks,
                seed=2025,
                codec=codec,
            ),
            model,
            image,
        )
        for _, model, image in points
        for width, height, n_mcs in meshes
        for ordering in orderings
    ]
    return lambda: _run_model_points(sims)


def _encode_throughput(smoke: bool, codec: str) -> Callable[[], dict[str, int]]:
    from repro.accelerator.tasks import split_task
    from repro.bits.lanes import unpack_lane_matrix
    from repro.bits.popcount import POPCOUNT_LUT
    from repro.workloads.figures import (
        figure_darknet_image,
        figure_darknet_model,
        figure_lenet_image,
        figure_trained_lenet,
    )

    # Preparation (untimed): real LeNet/DarkNet task shapes converted
    # to wire words and grouped by pair count — the batch codec's
    # contract.  The simulator's own task extraction and per-layer
    # quantisation build the groups so the bench encodes exactly what
    # NoC runs would ship.
    points = [("fixed8", figure_trained_lenet(), figure_lenet_image())]
    if not smoke:
        points.append(
            ("float32", figure_trained_lenet(), figure_lenet_image())
        )
        points.append(
            ("fixed8", figure_darknet_model(), figure_darknet_image())
        )
    tasks = 8 if smoke else 48
    repeat = 1 if smoke else 4
    groups: list[tuple] = []
    for data_format, model, image in points:
        sim = AcceleratorSimulator(
            AcceleratorConfig(
                data_format=data_format,
                max_tasks_per_layer=tasks,
                seed=2025,
                codec=codec,
            ),
            model,
            image,
        )
        for lt in sim.layer_tasks:
            in_fmt, w_fmt = sim._formats[lt.layer_index]
            by_pairs: dict[int, list] = {}
            for task in lt.tasks:
                for chunk in split_task(task, sim.config.chunk_pairs):
                    by_pairs.setdefault(chunk.n_pairs, []).append(
                        (
                            in_fmt.encode(chunk.inputs),
                            w_fmt.encode(chunk.weights),
                            int(w_fmt.encode(np.array([chunk.bias]))[0]),
                        )
                    )
            for items in by_pairs.values():
                in_m = np.tile(np.stack([i for i, _, _ in items]), (repeat, 1))
                w_m = np.tile(np.stack([w for _, w, _ in items]), (repeat, 1))
                biases = [b for _, _, b in items] * repeat
                groups.append((sim.codec, in_m, w_m, biases))
    methods = tuple(OrderingMethod)

    def run() -> dict[str, int]:
        metrics = _zero_metrics()
        for task_codec, in_m, w_m, biases in groups:
            n_tasks = len(biases)
            for method in methods:
                if codec == "batch":
                    encoded = task_codec.encode_batch(
                        in_m, w_m, biases, method
                    )
                else:
                    encoded = [
                        task_codec.encode(
                            in_m[t].tolist(),
                            w_m[t].tolist(),
                            biases[t],
                            method,
                        )
                        for t in range(n_tasks)
                    ]
                # Offline BT scoring: transitions between consecutive
                # flits of each task's packet, vectorised over the
                # whole group.  Identical totals across codecs — the
                # CI gate asserts batch == scalar here.
                n_flits = encoded[0].n_data_flits
                payloads = [p for e in encoded for p in e.payloads]
                lanes = unpack_lane_matrix(
                    payloads,
                    task_codec.word_width,
                    task_codec.values_per_flit,
                ).reshape(n_tasks, n_flits, task_codec.values_per_flit)
                xored = lanes[:, :-1] ^ lanes[:, 1:]
                metrics["bit_transitions"] += int(
                    POPCOUNT_LUT[xored.view(np.uint8)].sum(dtype=np.int64)
                )
                metrics["flit_hops"] += len(payloads)
        return metrics

    return run


def _decode_throughput(smoke: bool, codec: str) -> Callable[[], dict[str, int]]:
    from repro.accelerator.tasks import split_task
    from repro.bits.popcount import POPCOUNT_LUT
    from repro.workloads.figures import (
        figure_darknet_image,
        figure_darknet_model,
        figure_lenet_image,
        figure_trained_lenet,
    )

    # Preparation (untimed): the same real task shapes as
    # encode_throughput, encoded once up front.  encode_batch is
    # pinned bit-identical to the scalar encoder, so both codecs
    # decode exactly the same payload bits — only the decode
    # implementation under test differs.
    points = [("fixed8", figure_trained_lenet(), figure_lenet_image())]
    if not smoke:
        points.append(
            ("float32", figure_trained_lenet(), figure_lenet_image())
        )
        points.append(
            ("fixed8", figure_darknet_model(), figure_darknet_image())
        )
    tasks = 8 if smoke else 48
    repeat = 1 if smoke else 4
    groups: list[tuple] = []
    for data_format, model, image in points:
        sim = AcceleratorSimulator(
            AcceleratorConfig(
                data_format=data_format,
                max_tasks_per_layer=tasks,
                seed=2025,
                codec=codec,
            ),
            model,
            image,
        )
        for lt in sim.layer_tasks:
            in_fmt, w_fmt = sim._formats[lt.layer_index]
            by_pairs: dict[int, list] = {}
            for task in lt.tasks:
                for chunk in split_task(task, sim.config.chunk_pairs):
                    by_pairs.setdefault(chunk.n_pairs, []).append(
                        (
                            in_fmt.encode(chunk.inputs),
                            w_fmt.encode(chunk.weights),
                            int(w_fmt.encode(np.array([chunk.bias]))[0]),
                        )
                    )
            for items in by_pairs.values():
                in_m = np.tile(np.stack([i for i, _, _ in items]), (repeat, 1))
                w_m = np.tile(np.stack([w for _, w, _ in items]), (repeat, 1))
                biases = [b for _, _, b in items] * repeat
                for method in OrderingMethod:
                    groups.append(
                        (
                            sim.codec,
                            sim.codec.encode_batch(
                                in_m, w_m, biases, method
                            ),
                        )
                    )

    def run() -> dict[str, int]:
        metrics = _zero_metrics()
        for task_codec, encoded in groups:
            # The popcount checksum of the recovered original-order
            # words stands in for BTs: identical across codecs, so the
            # CI equality gate pins decode correctness, not just speed.
            if codec == "batch":
                rows = task_codec.decode_batch_words(encoded)
                in_m = np.stack([row[0] for row in rows])
                w_m = np.stack([row[1] for row in rows])
                checksum = int(
                    POPCOUNT_LUT[
                        np.ascontiguousarray(in_m).view(np.uint8)
                    ].sum(dtype=np.int64)
                ) + int(
                    POPCOUNT_LUT[
                        np.ascontiguousarray(w_m).view(np.uint8)
                    ].sum(dtype=np.int64)
                )
                checksum += sum(
                    int(row[2]).bit_count() for row in rows
                )
            else:
                checksum = 0
                for e in encoded:
                    decoded = task_codec.decode(e)
                    for a, w in decoded.original_pairs():
                        checksum += int(a).bit_count()
                        checksum += int(w).bit_count()
                    checksum += int(decoded.bias).bit_count()
            metrics["bit_transitions"] += checksum
            metrics["flit_hops"] += sum(
                len(e.payloads) for e in encoded
            )
        return metrics

    return run


def _synthetic_rates(smoke: bool, codec: str) -> Callable[[], dict[str, int]]:
    # Fixed packet count across widening injection windows: the wide
    # windows are idle-dominated, which is where fast-forward pays.
    n_packets = 30 if smoke else 150
    windows = (100, 2_000) if smoke else (200, 2_000, 20_000)
    noc = NoCConfig(width=8, height=8, link_width=128)

    def run() -> dict[str, int]:
        metrics = _zero_metrics()
        for window in windows:
            network = drive_synthetic(
                SyntheticTrafficConfig(
                    pattern=TrafficPattern.UNIFORM_RANDOM,
                    n_packets=n_packets,
                    injection_window=window,
                    seed=7,
                ),
                noc,
            )
            stats = network.stats
            metrics["simulated_cycles"] += stats.cycles
            metrics["steps_executed"] += network.steps_executed
            metrics["flit_hops"] += stats.flit_hops
            metrics["bit_transitions"] += stats.total_bit_transitions
        return metrics

    return run


def _trace_replay(smoke: bool, codec: str) -> Callable[[], dict[str, int]]:
    from repro.noc.recorder import TraceRecorder
    from repro.workloads.traces import replay_through_network

    # Workload preparation: record one synthetic run into a trace —
    # untimed, shared verbatim by both cores (the capture itself runs
    # on the process-default core but only the *trace* survives).
    noc = NoCConfig(width=8, height=8, link_width=128)
    recorder = TraceRecorder()
    network = drive_synthetic(
        SyntheticTrafficConfig(
            pattern=TrafficPattern.UNIFORM_RANDOM,
            n_packets=40 if smoke else 300,
            injection_window=60 if smoke else 400,
            seed=13,
        ),
        noc,
        trace_collector=recorder,
    )
    trace = recorder.finish(network.config)

    def run() -> dict[str, int]:
        metrics = _zero_metrics()
        for ordering in ("none", "popcount_desc"):
            replayed = replay_through_network(trace, ordering=ordering)
            stats = replayed.stats
            metrics["simulated_cycles"] += stats.cycles
            metrics["steps_executed"] += replayed.steps_executed
            metrics["flit_hops"] += stats.flit_hops
            metrics["bit_transitions"] += stats.total_bit_transitions
        return metrics

    return run


# Each factory takes (`smoke`, `codec`) and returns the timed runner;
# model and image construction (including LeNet training) happens in
# the factory, outside the timed window.  Network-only workloads
# accept the codec for signature uniformity and ignore it.
WORKLOADS: dict[str, Callable[[bool, str], Callable[[], dict[str, int]]]] = {
    "fig12_paper_grid": _fig12_paper_grid,
    "fig12_mesh_sweep": _fig12_mesh_sweep,
    "fig13_model_sweep": _fig13_model_sweep,
    "encode_throughput": _encode_throughput,
    "decode_throughput": _decode_throughput,
    "synthetic_rates": _synthetic_rates,
    "trace_replay": _trace_replay,
}


def default_bench_path(tag: str) -> pathlib.Path:
    """Repository-convention output path for a bench tag."""
    return pathlib.Path(f"BENCH_{tag}.json")


def _rates(entry: dict[str, Any]) -> None:
    wall = entry["wall_seconds"]
    entry["cycles_per_second"] = (
        entry["simulated_cycles"] / wall if wall > 0 else 0.0
    )
    entry["flit_hops_per_second"] = (
        entry["flit_hops"] / wall if wall > 0 else 0.0
    )


def bench_meta() -> dict[str, Any]:
    """Run metadata stamped into BENCH payloads.

    Makes the checked-in perf trajectory auditable: which commit,
    interpreter, numpy and machine produced a snapshot.  Best-effort —
    outside a git checkout ``git_commit`` is None, never an error.
    Identity comparisons in :func:`compare_bench` ignore the ``meta``
    key entirely, so pre-meta baselines stay comparable.
    """
    git_commit: str | None = None
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
        if proc.returncode == 0:
            git_commit = proc.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        pass
    return {
        "git_commit": git_commit,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def run_bench(
    tag: str,
    core: str = "event",
    workloads: list[str] | None = None,
    smoke: bool = False,
    out_path: str | pathlib.Path | None = None,
    progress: Callable[[str], None] | None = None,
    codec: str = "batch",
) -> dict[str, Any]:
    """Time the selected workloads and write ``BENCH_<tag>.json``.

    Args:
        tag: label baked into the file name and payload.
        core: network core to measure ("event" or "stepped").
        workloads: workload names (default: all, in registry order).
        smoke: run the reduced CI grids.
        out_path: output file (None = ``BENCH_<tag>.json`` in the cwd).
        progress: optional per-workload status callback.
        codec: task codec to measure ("batch" or "scalar"); the two
            produce identical cycle/hop/BT numbers, only wall time
            moves.

    Returns:
        The payload that was written.
    """
    if core not in CORES:
        raise ValueError(f"unknown network core {core!r}; use one of {CORES}")
    if codec not in TASK_CODECS:
        raise ValueError(
            f"unknown task codec {codec!r}; use one of {TASK_CODECS}"
        )
    names = list(WORKLOADS) if workloads is None else list(workloads)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        raise ValueError(
            f"unknown bench workloads {unknown}; "
            f"available: {sorted(WORKLOADS)}"
        )
    entries: list[dict[str, Any]] = []
    with network_core(core):
        for name in names:
            runner = WORKLOADS[name](smoke, codec)
            start = time.perf_counter()
            metrics = runner()
            wall = time.perf_counter() - start
            entry: dict[str, Any] = {"name": name, "wall_seconds": wall}
            entry.update(metrics)
            _rates(entry)
            entries.append(entry)
            if progress is not None:
                progress(
                    f"{name}: {wall:.2f}s, "
                    f"{entry['simulated_cycles']} cycles "
                    f"({entry['steps_executed']} stepped), "
                    f"{entry['flit_hops']} hops"
                )
    totals: dict[str, Any] = {
        "wall_seconds": sum(e["wall_seconds"] for e in entries),
    }
    for key in _zero_metrics():
        totals[key] = sum(e[key] for e in entries)
    _rates(totals)
    # ru_maxrss is KiB on Linux, bytes on macOS.
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_rss = maxrss if sys.platform == "darwin" else maxrss * 1024
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "tag": tag,
        "core": core,
        "codec": codec,
        "smoke": smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "meta": bench_meta(),
        "workloads": entries,
        "totals": totals,
        "peak_rss_bytes": peak_rss,
    }
    path = pathlib.Path(out_path) if out_path else default_bench_path(tag)
    # Atomic temp-then-rename: a crash mid-write must not clobber the
    # previous snapshot a later --compare would gate against.
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
    return payload


def compare_bench(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    max_regression_pct: float = 25.0,
    min_delta_seconds: float = 0.05,
) -> list[str]:
    """Wall-time regression gate between two BENCH payloads.

    Compares per-workload and total wall seconds of ``fresh`` against
    ``baseline`` and reports every workload that got more than
    ``max_regression_pct`` percent slower.  The two payloads must
    cover the same grids (same core, same codec, same smoke flag,
    same workload set) — comparing apples to oranges is itself a
    failure, not a silent pass.  Speedups and sub-threshold noise report nothing;
    ``min_delta_seconds`` is the absolute noise floor below which a
    percentage blip on a millisecond-scale workload is ignored (a
    10ms grid jittering to 13ms is timer noise, not a regression).

    Returns a list of violation descriptions (empty = within budget).
    """
    failures: list[str] = []
    for key in ("schema", "core", "codec", "smoke"):
        if baseline.get(key) != fresh.get(key):
            failures.append(
                f"payloads disagree on {key!r}: baseline "
                f"{baseline.get(key)!r} vs fresh {fresh.get(key)!r}"
            )

    def by_name(payload: dict[str, Any], label: str) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for entry in payload.get("workloads", []):
            if (
                not isinstance(entry, dict)
                or "name" not in entry
                or not isinstance(entry.get("wall_seconds"), (int, float))
            ):
                # A malformed entry (hand-edited or foreign-schema
                # snapshot) is a comparison failure, never a crash.
                failures.append(
                    f"{label} payload has a malformed workload entry: "
                    f"{entry!r}"
                )
                continue
            out[entry["name"]] = entry
        return out

    base_by = by_name(baseline, "baseline")
    fresh_by = by_name(fresh, "fresh")
    if set(base_by) != set(fresh_by):
        failures.append(
            f"workload sets differ: baseline {sorted(base_by)} vs "
            f"fresh {sorted(fresh_by)}"
        )
    limit = 1.0 + max_regression_pct / 100.0
    entries = [
        (name, base_by[name], fresh_by[name])
        for name in sorted(set(base_by) & set(fresh_by))
    ]
    if "totals" in baseline and "totals" in fresh:
        entries.append(("totals", baseline["totals"], fresh["totals"]))
    for name, old, new in entries:
        old_wall = old.get("wall_seconds")
        new_wall = new.get("wall_seconds")
        if not isinstance(old_wall, (int, float)) or not isinstance(
            new_wall, (int, float)
        ):
            failures.append(
                f"{name}: wall_seconds missing or non-numeric "
                f"(baseline {old_wall!r}, fresh {new_wall!r})"
            )
            continue
        if new_wall - old_wall < min_delta_seconds:
            continue
        if old_wall > 0 and new_wall > old_wall * limit:
            failures.append(
                f"{name}: wall time {new_wall:.2f}s vs baseline "
                f"{old_wall:.2f}s (+{100.0 * (new_wall / old_wall - 1):.0f}%"
                f", limit +{max_regression_pct:.0f}%)"
            )
    if failures:
        # On regression, surface each payload's provenance so "which
        # commit / machine produced the baseline?" never needs a dig
        # through git history.  Meta-less (pre-meta) payloads add
        # nothing.
        for label, payload in (("baseline", baseline), ("fresh", fresh)):
            meta = payload.get("meta")
            if isinstance(meta, dict) and meta:
                described = ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(meta.items())
                    if value is not None
                )
                failures.append(f"note: {label} meta: {described}")
    return failures


def check_invariants(payload: dict[str, Any]) -> list[str]:
    """Machine-independent consistency checks on a bench payload.

    Returns a list of violation descriptions (empty = all good):

    * every workload: ``steps_executed <= simulated_cycles``;
    * stepped core: ``steps_executed == simulated_cycles`` (the
      reference core cannot skip cycles);
    * event core: some workload with strictly fewer steps than cycles
      when the idle-heavy ``synthetic_rates`` workload ran (i.e.
      fast-forward actually skipped idle cycles).
    """
    failures: list[str] = []
    skipped_somewhere = False
    ran_synthetic = False
    for entry in payload["workloads"]:
        steps = entry["steps_executed"]
        cycles = entry["simulated_cycles"]
        if steps > cycles:
            failures.append(
                f"{entry['name']}: steps_executed {steps} exceeds "
                f"simulated_cycles {cycles}"
            )
        if steps < cycles:
            skipped_somewhere = True
            if payload["core"] == "stepped":
                failures.append(
                    f"{entry['name']}: the stepped core skipped cycles "
                    f"({steps} < {cycles})"
                )
        if entry["name"] == "synthetic_rates":
            ran_synthetic = True
    if payload["core"] == "event" and ran_synthetic and not skipped_somewhere:
        failures.append(
            "event core fast-forward skipped no idle cycles anywhere "
            "(steps_executed == simulated_cycles for every workload)"
        )
    return failures
