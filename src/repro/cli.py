"""Command-line interface for the reproduction experiments.

Subcommands::

    repro run-noc    — run a DNN through the NoC and report BTs
    repro no-noc     — the Table I flit-stream experiment
    repro link-power — Sec. V-C link power arithmetic
    repro table2     — Table II synthesis comparison
    repro traffic    — synthetic traffic patterns through the NoC

Installed as the ``repro`` console script, or run with
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import run_model_on_noc
from repro.analysis.summary import reduction_rate
from repro.dnn.datasets import synthetic_digits, synthetic_shapes
from repro.dnn.models import build_model
from repro.hardware.linkpower import (
    BANERJEE_ENERGY_PJ,
    PAPER_ENERGY_PJ,
    LinkPowerModel,
)
from repro.hardware.synthesis import format_table2, model_table2, paper_table2
from repro.noc.network import NoCConfig
from repro.noc.traffic import (
    SyntheticTrafficConfig,
    TrafficPattern,
    run_synthetic,
)
from repro.ordering.strategies import OrderingMethod
from repro.workloads.packets import build_packets, measure_stream
from repro.workloads.streams import (
    random_weights,
    trained_lenet_weights,
    words_for_format,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The full CLI argument tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bit-transition-reduction reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_noc = sub.add_parser("run-noc", help="run a DNN through the NoC")
    run_noc.add_argument("--model", default="lenet",
                         choices=("lenet", "darknet"))
    run_noc.add_argument("--format", default="fixed8",
                         choices=("float32", "fixed8"))
    run_noc.add_argument("--ordering", default="O2",
                         choices=("O0", "O1", "O2"))
    run_noc.add_argument("--mesh", default="4x4",
                         help="mesh as WxH, e.g. 8x8")
    run_noc.add_argument("--mcs", type=int, default=2)
    run_noc.add_argument("--tasks", type=int, default=16,
                         help="sampled tasks per layer")
    run_noc.add_argument("--compare", action="store_true",
                         help="also run O0 and report the reduction")

    no_noc = sub.add_parser("no-noc", help="Table I flit-stream experiment")
    no_noc.add_argument("--format", default="fixed8",
                        choices=("float32", "fixed8"))
    no_noc.add_argument("--weights", default="random",
                        choices=("random", "trained"))
    no_noc.add_argument("--packets", type=int, default=10_000)
    no_noc.add_argument("--kernel", type=int, default=25)

    power = sub.add_parser("link-power", help="Sec. V-C link power")
    power.add_argument("--mesh", default="8x8")
    power.add_argument("--reduction", type=float, default=40.85,
                       help="BT reduction rate in percent")

    sub.add_parser("table2", help="Table II synthesis comparison")

    traffic = sub.add_parser("traffic", help="synthetic NoC traffic")
    traffic.add_argument("--pattern", default="uniform",
                         choices=[p.value for p in TrafficPattern])
    traffic.add_argument("--mesh", default="4x4")
    traffic.add_argument("--packets", type=int, default=200)
    return parser


def _parse_mesh(text: str) -> tuple[int, int]:
    try:
        w, h = text.lower().split("x")
        return int(w), int(h)
    except ValueError as exc:
        raise SystemExit(f"bad mesh {text!r}; use WxH like 4x4") from exc


def _cmd_run_noc(args: argparse.Namespace) -> int:
    width, height = _parse_mesh(args.mesh)
    model = build_model(args.model, rng=np.random.default_rng(1))
    if args.model == "lenet":
        image = synthetic_digits(1, seed=5).images[0]
    else:
        image = synthetic_shapes(1, seed=5).images[0]
    methods = [OrderingMethod.from_name(args.ordering)]
    if args.compare and methods[0] is not OrderingMethod.BASELINE:
        methods.insert(0, OrderingMethod.BASELINE)
    baseline_bt = None
    for method in methods:
        config = AcceleratorConfig(
            width=width,
            height=height,
            n_mcs=args.mcs,
            data_format=args.format,
            ordering=method,
            max_tasks_per_layer=args.tasks,
        )
        result = run_model_on_noc(config, model, image)
        line = (
            f"{config.label()}: {result.total_bit_transitions} BTs, "
            f"{result.total_cycles} cycles, verified "
            f"{result.tasks_verified}/{result.tasks_total}"
        )
        if baseline_bt is None:
            baseline_bt = result.total_bit_transitions
        else:
            line += (
                f", reduction "
                f"{reduction_rate(baseline_bt, result.total_bit_transitions):.2f}%"
            )
        print(line)
        if not result.all_verified:
            return 1
    return 0


def _cmd_no_noc(args: argparse.Namespace) -> int:
    if args.weights == "random":
        values = random_weights(40_000, seed=3)
    else:
        values = trained_lenet_weights()
    words, fmt = words_for_format(values, args.format)
    base = build_packets(
        words, args.packets, 8, fmt.width, kernel_size=args.kernel
    )
    ordered = build_packets(
        words, args.packets, 8, fmt.width, kernel_size=args.kernel,
        ordered=True,
    )
    bt_base = measure_stream(base).bt_per_flit
    bt_ord = measure_stream(ordered).bt_per_flit
    print(
        f"{args.format} {args.weights} ({base.flit_bits}-bit flits, "
        f"{args.packets} packets): {bt_base:.2f} -> {bt_ord:.2f} BT/flit "
        f"({reduction_rate(bt_base, bt_ord):.2f}% reduction)"
    )
    return 0


def _cmd_link_power(args: argparse.Namespace) -> int:
    width, height = _parse_mesh(args.mesh)
    for name, pj in (("ours", PAPER_ENERGY_PJ), ("banerjee", BANERJEE_ENERGY_PJ)):
        model = LinkPowerModel.for_mesh(
            width, height, energy_per_transition_pj=pj
        )
        print(
            f"{name} ({pj} pJ/bit, {model.n_links} links): "
            f"{model.power_mw():.3f} mW -> "
            f"{model.reduced_power_mw(args.reduction):.3f} mW "
            f"at {args.reduction}% BT reduction"
        )
    return 0


def _cmd_table2(_: argparse.Namespace) -> int:
    print(format_table2(paper_table2(), model_table2()))
    return 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    width, height = _parse_mesh(args.mesh)
    noc = NoCConfig(width=width, height=height, link_width=128)
    config = SyntheticTrafficConfig(
        pattern=TrafficPattern(args.pattern), n_packets=args.packets
    )
    stats = run_synthetic(config, noc)
    print(
        f"{args.pattern} on {args.mesh}: {stats.packets_delivered} packets, "
        f"{stats.cycles} cycles, {stats.total_bit_transitions} BTs, "
        f"mean latency {stats.mean_latency:.1f}"
    )
    return 0


_COMMANDS = {
    "run-noc": _cmd_run_noc,
    "no-noc": _cmd_no_noc,
    "link-power": _cmd_link_power,
    "table2": _cmd_table2,
    "traffic": _cmd_traffic,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
