"""Command-line interface for the reproduction experiments.

Subcommands::

    repro run-noc    — run a DNN through the NoC and report BTs
                       (--trace records a replayable wire-image trace)
    repro no-noc     — the Table I flit-stream experiment
    repro link-power — Sec. V-C link power arithmetic
    repro table2     — Table II synthesis comparison
    repro traffic    — synthetic traffic patterns through the NoC
                       (--trace records a replayable wire-image trace)
    repro sweep      — run a declarative campaign grid (cached, parallel;
                       --kind model|batch|synthetic|replay picks the
                       workload, --cores adds a network-core axis;
                       --job-timeout/--max-retries harden execution,
                       Ctrl-C checkpoints the campaign journal and
                       --resume <campaign-id> picks it back up;
                       --server HOST:PORT works a served queue instead)
    repro serve      — own a campaign as a job server: workers claim
                       jobs under time-bounded leases with heartbeats,
                       dead workers are stolen from, SIGINT/SIGTERM
                       drains and checkpoints for --resume
    repro work       — attach a worker to a running `repro serve`
                       (--cache-dir shares a verified cache root with
                       co-located workers; exit 3 when the server dies)
    repro cache      — operate on a cache root: `verify` re-checks
                       every digest envelope and quarantines corruption
    repro report     — re-render campaign tables from a result store
                       (--pivot mesh|model|layer|link; failed jobs are
                       skipped with a warning; --failures lists them
                       with error class / attempts / quarantine)
    repro bench      — time the perf-benchmark workloads and write a
                       BENCH_<tag>.json snapshot (--core event|stepped;
                       --compare gates wall-time regressions against a
                       previous snapshot)
    repro trace      — analyse recorded wire-image traces:
                       `stats` (one-screen summary), `heat` (per-link
                       BT heat by cycle window), `diff` (where two
                       traces disagree; exit 1 on divergence), and
                       `bisect` (log2 window bisection down to the
                       first diverging cycle window and link)

Every subcommand accepts ``--seed``: when given, all randomness (model
init, sample images, task sampling, traffic schedules) derives from it
via :func:`repro.experiments.spec.derive_seed`; when omitted, the
historical per-command defaults apply so existing outputs stay stable.
Purely arithmetic commands (``link-power``, ``table2``) accept the flag
for uniformity and ignore it.

Installed as the ``repro`` console script, or run with
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import run_model_on_noc
from repro.analysis.summary import reduction_rate
from repro.dnn.datasets import synthetic_digits, synthetic_shapes
from repro.dnn.models import build_model
from repro.experiments.cache import ResultCache
from repro.experiments.faults import FaultPlan
from repro.experiments.kinds import JOB_KINDS
from repro.experiments.report import (
    REPORT_PIVOTS,
    campaign_report,
    failures_report,
    skipped_records,
)
from repro.experiments.runner import (
    CampaignRunner,
    SpecDriftError,
    sigterm_as_interrupt,
)
from repro.experiments.spec import SweepSpec, campaign_id, derive_seed
from repro.experiments.store import CampaignJournal, ResultStore
from repro.hardware.linkpower import (
    BANERJEE_ENERGY_PJ,
    PAPER_ENERGY_PJ,
    LinkPowerModel,
)
from repro.hardware.synthesis import format_table2, model_table2, paper_table2
from repro.noc.network import NoCConfig
from repro.noc.recorder import TraceRecorder
from repro.obs import (
    DEFAULT_WINDOW,
    bisect_divergence,
    bt_by_owner,
    link_heat,
    trace_diff,
    trace_stats,
)
from repro.noc.traffic import (
    SyntheticTrafficConfig,
    TrafficPattern,
    drive_synthetic,
)
from repro.ordering.strategies import OrderingMethod
from repro.workloads.packets import build_packets, measure_stream
from repro.workloads.traces import TrafficTrace
from repro.workloads.streams import (
    random_weights,
    trained_lenet_weights,
    words_for_format,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The full CLI argument tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bit-transition-reduction reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    seeded = argparse.ArgumentParser(add_help=False)
    seeded.add_argument(
        "--seed", type=int, default=None,
        help="derive all randomness from this seed "
             "(default: historical per-command seeds)",
    )

    run_noc = sub.add_parser("run-noc", parents=[seeded],
                             help="run a DNN through the NoC")
    run_noc.add_argument("--model", default="lenet",
                         choices=("lenet", "darknet"))
    run_noc.add_argument("--format", default="fixed8",
                         choices=("float32", "fixed8"))
    run_noc.add_argument("--ordering", default="O2",
                         choices=("O0", "O1", "O2"))
    run_noc.add_argument("--mesh", default="4x4",
                         help="mesh as WxH, e.g. 8x8")
    run_noc.add_argument("--mcs", type=int, default=2)
    run_noc.add_argument("--tasks", type=int, default=16,
                         help="sampled tasks per layer")
    run_noc.add_argument("--compare", action="store_true",
                         help="also run O0 and report the reduction")
    run_noc.add_argument("--trace", default=None,
                         help="record the requested ordering's run to "
                              "this trace file (replayable via "
                              "`repro sweep --kind replay`)")

    no_noc = sub.add_parser("no-noc", parents=[seeded],
                            help="Table I flit-stream experiment")
    no_noc.add_argument("--format", default="fixed8",
                        choices=("float32", "fixed8"))
    no_noc.add_argument("--weights", default="random",
                        choices=("random", "trained"))
    no_noc.add_argument("--packets", type=int, default=10_000)
    no_noc.add_argument("--kernel", type=int, default=25)

    power = sub.add_parser("link-power", parents=[seeded],
                           help="Sec. V-C link power")
    power.add_argument("--mesh", default="8x8")
    power.add_argument("--reduction", type=float, default=40.85,
                       help="BT reduction rate in percent")

    sub.add_parser("table2", parents=[seeded],
                   help="Table II synthesis comparison")

    traffic = sub.add_parser("traffic", parents=[seeded],
                             help="synthetic NoC traffic")
    traffic.add_argument("--pattern", default="uniform",
                         choices=[p.value for p in TrafficPattern])
    traffic.add_argument("--mesh", default="4x4")
    traffic.add_argument("--packets", type=int, default=200)
    traffic.add_argument("--trace", default=None,
                         help="record the run to this trace file "
                              "(replayable via `repro sweep --kind "
                              "replay`)")

    # Grid flags shared by `sweep` and `serve` — both build the same
    # SweepSpec from the same argument surface.
    grid = argparse.ArgumentParser(add_help=False)
    grid.add_argument("--name", default="sweep", help="campaign name")
    grid.add_argument("--kind", default=None,
                      choices=sorted(JOB_KINDS),
                      help="job kind every grid point runs as "
                           "(default model)")
    grid.add_argument("--spec", default=None,
                      help="JSON SweepSpec file (overrides grid flags; "
                           "--seed still overrides its campaign seed)")
    # Kind-specific grid flags default to None so an explicitly-given
    # flag that doesn't apply to the chosen --kind can be rejected
    # instead of silently ignored (_check_kind_flags below).
    grid.add_argument("--model", default=None,
                       choices=("lenet", "darknet", "trained-lenet"),
                       help="[model/batch] workload model "
                            "(default lenet)")
    grid.add_argument("--meshes", default=None,
                       help="comma list of WxH:MCS mesh points "
                            "(default 4x4:2,8x8:4,8x8:8; synthetic "
                            "ignores the MCS part, default 4x4,8x8)")
    grid.add_argument("--formats", default=None,
                       help="[model/batch] comma list of data formats "
                            "(default fixed8)")
    grid.add_argument("--orderings", default=None,
                       help="[model/batch] comma list of ordering "
                            "methods (default O0,O1,O2)")
    grid.add_argument("--tasks", type=int, default=None,
                       help="[model/batch/serving] sampled tasks per "
                            "layer (default 16; serving default 4)")
    grid.add_argument("--images", type=int, default=None,
                       help="[batch] images per job (default 4)")
    grid.add_argument("--patterns", default=None,
                       help="[synthetic] comma list of traffic patterns "
                            "(default all four)")
    grid.add_argument("--payloads", default=None,
                       help="[synthetic] comma list of payload kinds "
                            "(random, zero, counter; default random)")
    grid.add_argument("--packets", type=int, default=None,
                       help="[synthetic] packets injected per job "
                            "(default 150); [serving] packets per "
                            "synthetic request (default 8)")
    grid.add_argument("--window", type=int, default=None,
                       help="[synthetic] injection window in cycles "
                            "(default 200)")
    grid.add_argument("--link-width", type=int, default=None,
                       help="[synthetic/serving] link width in bits "
                            "(default 128 / the fleet data format's "
                            "paper width)")
    grid.add_argument("--tenants", default=None,
                       help="[serving] comma list of tenant mixes in "
                            "the compact grammar, e.g. "
                            "'lenet+uniform@0.05,lenet+lenet' "
                            "(default lenet+uniform)")
    grid.add_argument("--rates", default=None,
                       help="[serving] comma list of background "
                            "arrival rates in requests/cycle for "
                            "synthetic tenants without an explicit "
                            "@rate (default 0.01)")
    grid.add_argument("--requests", type=int, default=None,
                       help="[serving] requests per tenant "
                            "(default 2)")
    grid.add_argument("--traces", default=None,
                       help="[replay] comma list of recorded trace "
                            "files (the 'trace' axis)")
    grid.add_argument("--codings", default=None,
                       help="[replay] comma list of link codings "
                            "(none, bus_invert, delta; default none)")
    grid.add_argument("--cores", default=None,
                       help="network-core axis: comma list of cores "
                            "(event, stepped; replay also takes "
                            "offline and the differential 'both')")
    # Campaign persistence/hardening flags shared by `sweep`/`serve`.
    campaign = argparse.ArgumentParser(add_help=False)
    campaign.add_argument("--max-retries", type=int, default=2,
                          help="retries per job for transient-class "
                               "failures (timeouts, worker crashes, "
                               "I/O blips); deterministic errors never "
                               "retry (default 2)")
    campaign.add_argument("--resume", default=None,
                          metavar="CAMPAIGN_ID",
                          help="resume an interrupted campaign from "
                               "its journal: journaled-complete jobs "
                               "are served back, only the rest execute "
                               "(the id is printed by the original run "
                               "and by the checkpoint message)")
    campaign.add_argument("--fault-plan", default=None,
                          help="JSON fault-injection plan for chaos "
                               "testing (see repro.experiments.faults."
                               "FaultPlan; in-process faults fire "
                               "inside the workers, network faults "
                               "through the service socket)")
    campaign.add_argument("--cache-dir", default=".repro-cache",
                          help="content-addressed result cache "
                               "directory")
    campaign.add_argument("--no-cache", action="store_true",
                          help="always simulate, never read or write "
                               "cache")
    campaign.add_argument("--store", default=None,
                          help="JSONL result store "
                               "(default campaigns/<name>.jsonl)")
    campaign.add_argument("--csv", default=None,
                          help="also export the store as CSV")
    campaign.add_argument("--metrics", action="store_true",
                          help="print the campaign-wide metrics "
                               "aggregate (event/router/codec/cache/"
                               "runner/service counter families) after "
                               "the report")

    sweep = sub.add_parser(
        "sweep", parents=[seeded, grid, campaign],
        help="run a campaign grid through the cached parallel engine",
    )
    sweep.add_argument("--workers", type=int, default=2,
                       help="worker processes (1 = inline)")
    sweep.add_argument("--job-timeout", type=float, default=None,
                       help="per-attempt wall-clock budget in seconds; "
                            "a job past it is killed and recorded as a "
                            "JobTimeout failure (default: no limit)")
    sweep.add_argument("--progress", action="store_true",
                       help="print a live telemetry line per completed "
                            "job (done/failed/cached counts and ETA) "
                            "as results stream back from the pool")
    sweep.add_argument("--server", default=None, metavar="HOST:PORT",
                       help="run this sweep against a running `repro "
                            "serve` instead of the local engine: work "
                            "the served queue as one worker, then "
                            "print the campaign report from the "
                            "server's drain (the spec must derive the "
                            "served campaign id; --workers/"
                            "--job-timeout are the server's business "
                            "and ignored here)")

    serve = sub.add_parser(
        "serve", parents=[seeded, grid, campaign],
        help="own a campaign as a job server: `repro work` processes "
             "claim jobs under time-bounded leases and stream results "
             "back; SIGINT/SIGTERM drains and checkpoints for --resume",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default loopback)")
    serve.add_argument("--port", type=int, default=0,
                       help="port to bind (default 0 = ephemeral; the "
                            "bound port is printed)")
    serve.add_argument("--lease", type=float, default=30.0,
                       help="lease seconds per claimed job: a worker "
                            "silent past this returns the job to the "
                            "queue (default 30)")
    serve.add_argument("--heartbeat", type=float, default=None,
                       help="heartbeat interval advertised to workers "
                            "(default lease/3)")

    work = sub.add_parser(
        "work",
        help="attach a worker to a running `repro serve`: claim jobs, "
             "heartbeat the lease, stream results back until the "
             "server drains (exit 0) or is lost (exit 3)",
    )
    work.add_argument("--connect", required=True, metavar="HOST:PORT",
                      help="server address printed by `repro serve`")
    work.add_argument("--name", default=None,
                      help="worker identity (default worker-<pid>)")
    work.add_argument("--cache-dir", default=None,
                      help="shared cache root: serve repeat keys from "
                           "disk and claim keys before computing so "
                           "co-located workers don't duplicate work "
                           "(default: no cache)")
    work.add_argument("--expect-campaign", default=None,
                      metavar="CAMPAIGN_ID",
                      help="refuse to work for any other campaign "
                           "(spec-drift guard over the wire)")
    work.add_argument("--reconnect-attempts", type=int, default=10,
                      help="redials before declaring the server dead "
                           "(default 10, exponential backoff)")
    work.add_argument("--reconnect-backoff", type=float, default=0.25,
                      help="base reconnect backoff seconds (default "
                           "0.25, doubling per attempt, capped at 5)")

    cache_cmd = sub.add_parser(
        "cache",
        help="operate on a result cache root",
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_command",
                                         required=True)
    c_verify = cache_sub.add_parser(
        "verify",
        help="re-check every entry's digest envelope; corrupt entries "
             "are quarantined and listed (exit 1 when any are found)",
    )
    c_verify.add_argument("--cache-dir", default=".repro-cache",
                          help="cache root to sweep")
    c_verify.add_argument("--no-quarantine", action="store_true",
                          help="report corrupt entries but leave them "
                               "in place")

    bench = sub.add_parser(
        "bench", parents=[seeded],
        help="time the perf workloads and write BENCH_<tag>.json",
    )
    bench.add_argument("--tag", default=None,
                       help="snapshot label (default: the core name)")
    bench.add_argument("--core", default="event",
                       choices=("event", "stepped"),
                       help="network core to measure")
    bench.add_argument("--codec", default="batch",
                       choices=("batch", "scalar"),
                       help="task codec to measure (bit-identical "
                            "results; only wall time moves)")
    bench.add_argument("--workloads", default=None,
                       help="comma list of workloads (default: all)")
    bench.add_argument("--smoke", action="store_true",
                       help="reduced CI grids")
    bench.add_argument("--out", default=None,
                       help="output path (default BENCH_<tag>.json)")
    bench.add_argument("--check-invariant", action="store_true",
                       help="fail unless steps_executed <= simulated_cycles "
                            "everywhere and the event core fast-forwarded "
                            "somewhere (machine-independent)")
    bench.add_argument("--compare", default=None,
                       help="previous BENCH_<tag>.json to diff against; "
                            "fails on wall-time regressions beyond "
                            "--max-regression-pct")
    bench.add_argument("--max-regression-pct", type=float, default=25.0,
                       help="allowed per-workload wall-time regression "
                            "vs --compare, in percent (default 25)")
    bench.add_argument("--min-delta-seconds", type=float, default=0.05,
                       help="absolute wall-time noise floor for "
                            "--compare: smaller regressions never fail "
                            "(default 0.05; raise when comparing across "
                            "machines)")

    report = sub.add_parser(
        "report", parents=[seeded],
        help="re-render campaign tables from a result store",
    )
    report.add_argument("--store", required=True,
                        help="JSONL store written by `repro sweep`")
    report.add_argument("--pivot", "--by", dest="pivot", default="mesh",
                        choices=REPORT_PIVOTS,
                        help="aggregation: mesh/model grids, or "
                             "per-layer / per-link BT tables")
    report.add_argument("--csv", default=None,
                        help="also export the store as CSV")
    report.add_argument("--failures", action="store_true",
                        help="list failed jobs instead of the tables: "
                             "error class, attempts, quarantine flag, "
                             "and per-class totals")

    trace = sub.add_parser(
        "trace", parents=[seeded],
        help="analyse recorded wire-image traces",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    t_stats = trace_sub.add_parser(
        "stats", help="one-screen trace summary"
    )
    t_stats.add_argument("trace", help="trace file (*.trace.gz)")
    t_stats.add_argument("--per-link", action="store_true",
                         help="also print the per-link BT table")

    t_heat = trace_sub.add_parser(
        "heat", help="per-link BT heat bucketed by cycle window"
    )
    t_heat.add_argument("trace", help="trace file (*.trace.gz)")
    t_heat.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        help=f"cycle-window width "
                             f"(default {DEFAULT_WINDOW})")
    t_heat.add_argument("--top", type=int, default=10,
                        help="hottest (link, window) cells to show "
                             "(default 10)")
    t_heat.add_argument("--owners", action="store_true",
                        help="also attribute BTs to owning packets "
                             "(needs a TraceRecorder capture)")

    t_diff = trace_sub.add_parser(
        "diff", help="where two traces' per-window BT heat disagrees "
                     "(exit 1 on divergence)"
    )
    t_diff.add_argument("trace_a", help="baseline trace file")
    t_diff.add_argument("trace_b", help="candidate trace file")
    t_diff.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        help=f"cycle-window width "
                             f"(default {DEFAULT_WINDOW})")
    t_diff.add_argument("--top", type=int, default=10,
                        help="diverging links to list (default 10)")

    t_bisect = trace_sub.add_parser(
        "bisect", help="log2-bisect the first diverging cycle window "
                       "(exit 1 on divergence)"
    )
    t_bisect.add_argument("trace_a", help="baseline trace file")
    t_bisect.add_argument("trace_b", help="candidate trace file")
    t_bisect.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                          help=f"cycle-window width "
                               f"(default {DEFAULT_WINDOW})")
    t_bisect.add_argument("--probe", default="offline",
                          choices=("offline", "replay"),
                          help="prefix probe: offline slice+rescore "
                               "(works on any timed capture) or "
                               "windowed replay through a fresh "
                               "network (needs replayable traces)")
    t_bisect.add_argument("--core", default=None,
                          choices=("event", "stepped"),
                          help="[replay probe] network core to replay "
                               "through")
    return parser


def _parse_mesh(text: str) -> tuple[int, int]:
    try:
        w, h = text.lower().split("x")
        return int(w), int(h)
    except ValueError as exc:
        raise SystemExit(f"bad mesh {text!r}; use WxH like 4x4") from exc


def _seed_or(args: argparse.Namespace, label: str, default: int) -> int:
    """Per-purpose seed: derived from --seed when given, else legacy."""
    if getattr(args, "seed", None) is None:
        return default
    return derive_seed(args.seed, label)


def _write_trace(recorder: TraceRecorder, noc_config, path: str) -> None:
    """Persist a finished capture and print its summary line."""
    trace = recorder.finish(noc_config)
    trace.save(path)
    print(
        f"wrote trace {path} "
        f"({trace.total_flit_traversals()} flit hops, "
        f"{len(trace.packets)} packets)"
    )


def _cmd_run_noc(args: argparse.Namespace) -> int:
    width, height = _parse_mesh(args.mesh)
    model = build_model(
        args.model, rng=np.random.default_rng(_seed_or(args, "model", 1))
    )
    image_seed = _seed_or(args, "image", 5)
    if args.model == "lenet":
        image = synthetic_digits(1, seed=image_seed).images[0]
    else:
        image = synthetic_shapes(1, seed=image_seed).images[0]
    methods = [OrderingMethod.from_name(args.ordering)]
    if args.compare and methods[0] is not OrderingMethod.BASELINE:
        methods.insert(0, OrderingMethod.BASELINE)
    baseline_bt = None
    for method in methods:
        config = AcceleratorConfig(
            width=width,
            height=height,
            n_mcs=args.mcs,
            data_format=args.format,
            ordering=method,
            max_tasks_per_layer=args.tasks,
            seed=_seed_or(args, "tasks", 2025),
        )
        # With --compare the trace captures the *requested* ordering's
        # run (the last method), not the O0 baseline.
        recorder = (
            TraceRecorder() if args.trace and method is methods[-1] else None
        )
        result = run_model_on_noc(
            config, model, image, trace_collector=recorder
        )
        if recorder is not None:
            _write_trace(recorder, config.noc_config(), args.trace)
        line = (
            f"{config.label()}: {result.total_bit_transitions} BTs, "
            f"{result.total_cycles} cycles, verified "
            f"{result.tasks_verified}/{result.tasks_total}"
        )
        if baseline_bt is None:
            baseline_bt = result.total_bit_transitions
        else:
            line += (
                f", reduction "
                f"{reduction_rate(baseline_bt, result.total_bit_transitions):.2f}%"
            )
        print(line)
        if not result.all_verified:
            return 1
    return 0


def _cmd_no_noc(args: argparse.Namespace) -> int:
    weight_seed = _seed_or(args, "weights", 3)
    if args.weights == "random":
        values = random_weights(40_000, seed=weight_seed)
    else:
        values = trained_lenet_weights(seed=weight_seed)
    words, fmt = words_for_format(values, args.format)
    base = build_packets(
        words, args.packets, 8, fmt.width, kernel_size=args.kernel
    )
    ordered = build_packets(
        words, args.packets, 8, fmt.width, kernel_size=args.kernel,
        ordered=True,
    )
    bt_base = measure_stream(base).bt_per_flit
    bt_ord = measure_stream(ordered).bt_per_flit
    print(
        f"{args.format} {args.weights} ({base.flit_bits}-bit flits, "
        f"{args.packets} packets): {bt_base:.2f} -> {bt_ord:.2f} BT/flit "
        f"({reduction_rate(bt_base, bt_ord):.2f}% reduction)"
    )
    return 0


def _cmd_link_power(args: argparse.Namespace) -> int:
    width, height = _parse_mesh(args.mesh)
    for name, pj in (("ours", PAPER_ENERGY_PJ), ("banerjee", BANERJEE_ENERGY_PJ)):
        model = LinkPowerModel.for_mesh(
            width, height, energy_per_transition_pj=pj
        )
        print(
            f"{name} ({pj} pJ/bit, {model.n_links} links): "
            f"{model.power_mw():.3f} mW -> "
            f"{model.reduced_power_mw(args.reduction):.3f} mW "
            f"at {args.reduction}% BT reduction"
        )
    return 0


def _cmd_table2(_: argparse.Namespace) -> int:
    print(format_table2(paper_table2(), model_table2()))
    return 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    width, height = _parse_mesh(args.mesh)
    noc = NoCConfig(width=width, height=height, link_width=128)
    config = SyntheticTrafficConfig(
        pattern=TrafficPattern(args.pattern),
        n_packets=args.packets,
        seed=_seed_or(args, "traffic", 0),
    )
    recorder = TraceRecorder() if args.trace else None
    network = drive_synthetic(config, noc, trace_collector=recorder)
    stats = network.stats
    if recorder is not None:
        _write_trace(recorder, network.config, args.trace)
    print(
        f"{args.pattern} on {args.mesh}: {stats.packets_delivered} packets, "
        f"{stats.cycles} cycles, {stats.total_bit_transitions} BTs, "
        f"mean latency {stats.mean_latency:.1f}"
    )
    return 0


def _split_csv(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


# Sweep grid flags that only make sense for some job kinds.  --cores
# applies everywhere: the network core is a config field of every kind
# (--orderings is shared too: O0/O1/O2 for the accelerator and serving
# kinds, none/popcount_desc for replay).
_KIND_FLAGS = {
    "model": ("model", "formats", "orderings", "tasks", "cores"),
    "batch": ("model", "formats", "orderings", "tasks", "images",
              "cores"),
    "synthetic": ("patterns", "payloads", "packets", "window",
                  "link_width", "cores"),
    "replay": ("traces", "orderings", "codings", "cores"),
    "serving": ("tenants", "rates", "requests", "orderings", "packets",
                "tasks", "link_width", "cores"),
}


def _check_kind_flags(args: argparse.Namespace, kind: str) -> None:
    """Reject explicitly-given flags the chosen kind would ignore."""
    applicable = _KIND_FLAGS[kind]
    for flags in _KIND_FLAGS.values():
        for flag in flags:
            if flag in applicable:
                continue
            if getattr(args, flag) is not None:
                raise SystemExit(
                    f"--{flag.replace('_', '-')} does not apply to "
                    f"--kind {kind}"
                )


def _sweep_spec_from_args(args: argparse.Namespace) -> SweepSpec:
    if args.spec:
        # The spec file is the whole grid: explicitly-given grid flags
        # would be silently ignored, so reject them instead.
        ignored = ["kind"] if args.kind is not None else []
        ignored += [
            flag
            for flags in _KIND_FLAGS.values()
            for flag in flags
            if getattr(args, flag) is not None
        ]
        if args.meshes is not None:
            ignored.append("meshes")
        if ignored:
            raise SystemExit(
                f"--{ignored[0].replace('_', '-')} is ignored with "
                f"--spec; edit the spec file instead"
            )
        import dataclasses
        import json

        try:
            data = json.loads(pathlib.Path(args.spec).read_text())
            spec = SweepSpec.from_dict(data)
        except (OSError, ValueError, TypeError) as exc:
            raise SystemExit(
                f"bad sweep spec file {args.spec!r}: {exc}"
            ) from exc
        if args.seed is not None:
            # --seed overrides the file's campaign seed; the file's
            # explicit model_seed/image_seed fields stay authoritative.
            spec = dataclasses.replace(spec, seed=args.seed)
        return spec
    # As with the other subcommands: omitting --seed keeps the
    # historical defaults, giving it derives every workload seed.
    kind = args.kind or "model"
    _check_kind_flags(args, kind)
    seed = args.seed if args.seed is not None else 0
    meshes = _split_csv(args.meshes) if args.meshes else None
    cores = _split_csv(args.cores) if args.cores else None
    if kind == "replay":
        if not args.traces:
            raise SystemExit(
                "--kind replay needs --traces (comma list of trace "
                "files recorded with --trace or TraceRecorder)"
            )
        if meshes is not None:
            raise SystemExit(
                "--meshes does not apply to --kind replay "
                "(the trace pins the topology)"
            )
        axes = {
            "trace": _split_csv(args.traces),
            "ordering": _split_csv(
                args.orderings or "none,popcount_desc"
            ),
            "core": cores or ["offline"],
        }
        base: dict = {}
        codings = _split_csv(args.codings or "none")
        # Link codings re-apply offline only: a cartesian grid crossing
        # a non-none coding with a network core would abort the whole
        # sweep at expansion — reject the combination up front instead.
        if any(c != "none" for c in codings) and any(
            c != "offline" for c in axes["core"]
        ):
            raise SystemExit(
                "--codings other than 'none' re-apply offline only; "
                "run the network-core sweep (--cores) and the coding "
                "sweep separately"
            )
        if len(codings) == 1:
            base["coding"] = codings[0]
        else:
            axes["coding"] = codings
        return SweepSpec(
            name=args.name, kind="replay", base=base, axes=axes,
            seed=seed,
        )
    if kind == "serving":
        axes = {
            "mesh": meshes or ["4x4:2"],
            "tenants": _split_csv(args.tenants or "lenet+uniform"),
            "ordering": _split_csv(args.orderings or "O0,O1,O2"),
        }
        if cores:
            axes["core"] = cores
        base: dict = {}
        try:
            rates = [float(r) for r in _split_csv(args.rates or "0.01")]
        except ValueError as exc:
            raise SystemExit(f"bad --rates value: {exc}") from exc
        if len(rates) == 1:
            base["background_rate"] = rates[0]
        else:
            axes["background_rate"] = rates
        if args.requests is not None:
            base["n_requests"] = args.requests
        if args.packets is not None:
            base["packets_per_request"] = args.packets
        if args.tasks is not None:
            base["max_tasks_per_layer"] = args.tasks
        if args.link_width is not None:
            base["link_width"] = args.link_width
        return SweepSpec(
            name=args.name, kind="serving", base=base, axes=axes,
            seed=seed,
        )
    if kind == "synthetic":
        axes = {
            "mesh": meshes or ["4x4", "8x8"],
            "pattern": _split_csv(
                args.patterns or "uniform,transpose,complement,hotspot"
            ),
        }
        if cores:
            axes["core"] = cores
        base = {
            "n_packets": args.packets if args.packets is not None else 150,
            "injection_window": args.window if args.window is not None
            else 200,
            "link_width": args.link_width if args.link_width is not None
            else 128,
        }
        payloads = _split_csv(args.payloads or "random")
        if len(payloads) == 1:
            base["payload"] = payloads[0]
        else:
            axes["payload"] = payloads
        return SweepSpec(
            name=args.name, kind="synthetic", base=base, axes=axes,
            seed=seed,
        )
    axes = {
        "mesh": meshes or ["4x4:2", "8x8:4", "8x8:8"],
        "data_format": _split_csv(args.formats or "fixed8"),
        "ordering": _split_csv(args.orderings or "O0,O1,O2"),
    }
    if cores:
        axes["core"] = cores
    return SweepSpec(
        name=args.name,
        kind=kind,
        model=(args.model or "lenet").replace("-", "_"),
        base={
            "max_tasks_per_layer": args.tasks
            if args.tasks is not None else 16,
        },
        axes=axes,
        seed=seed,
        model_seed=_seed_or(args, "model", 1),
        image_seed=_seed_or(args, "image", 5),
        # n_images is a batch-only field; model sweeps keep the
        # JobSpec default so the spec doesn't record a dropped value.
        n_images=(args.images if args.images is not None else 4)
        if kind == "batch" else 1,
    )


def _telemetry_line(sample: dict) -> str:
    """Render one live `repro sweep --progress` sample."""
    eta = sample.get("eta_seconds")
    eta_text = f", eta {eta:.1f}s" if eta is not None else ""
    status = "" if sample.get("status") == "ok" else " ERROR"
    return (
        f"  [{sample['done']}/{sample['total']}] "
        f"{sample.get('job_id', '?')}{status} "
        f"({sample['running']} running, {sample['cached']} cached, "
        f"{sample['failed']} failed{eta_text})"
    )


def _load_fault_plan(path: str) -> FaultPlan:
    import json

    try:
        data = json.loads(pathlib.Path(path).read_text())
        return FaultPlan.from_dict(data)
    except (OSError, ValueError, TypeError, KeyError) as exc:
        raise SystemExit(f"bad fault plan {path!r}: {exc}") from exc


def _campaign_setup(
    args: argparse.Namespace, spec: SweepSpec
) -> tuple[ResultCache | None, ResultStore, str, str, CampaignJournal]:
    """The cache/store/journal plumbing `sweep` and `serve` share."""
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    store_path = args.store or f"campaigns/{spec.name}.jsonl"
    store = ResultStore(store_path)
    cid = campaign_id(spec)
    journal = CampaignJournal(
        pathlib.Path(store_path).parent / f"{cid}.journal"
    )
    if args.resume is not None:
        # The id pins the exact grid: resuming under an edited spec
        # would silently skip points, so a mismatch aborts instead.
        if args.resume != cid:
            raise SystemExit(
                f"--resume {args.resume} does not match this sweep's "
                f"campaign id {cid}; re-run the original command (the "
                f"grid, seed, and name must be identical)"
            )
        if not journal.exists():
            raise SystemExit(
                f"nothing to resume: no journal at {journal.path}"
            )
    elif journal.path.exists():
        # A fresh (non-resume) run of the same grid starts a fresh
        # journal; stale progress must not leak in uninvited.
        journal.path.unlink()
    return cache, store, store_path, cid, journal


def _print_campaign_outcome(
    result, args: argparse.Namespace, store: ResultStore, resume_hint: str
) -> int:
    """Shared `sweep`/`serve` result rendering; returns the exit code."""
    print(result.summary())
    if result.failures or result.interrupted:
        report = result.failure_report()
        print(
            f"failures: {report['failed']} job(s) "
            f"({', '.join(f'{n} {cls}' for cls, n in sorted(report['by_class'].items())) or 'none'})"
            + (
                f", {len(report['quarantined'])} quarantined"
                if report["quarantined"] else ""
            )
        )
    print()
    print(campaign_report(result.records))
    if args.metrics:
        print()
        print("campaign metrics:")
        for name in sorted(result.metrics):
            print(f"  {name} = {result.metrics[name]}")
    if args.csv:
        rows = store.to_csv(args.csv)
        print(f"\nwrote {rows} rows to {args.csv}")
    if result.interrupted:
        print(
            f"\ninterrupted: {len(result.ok_records())} of "
            f"{result.n_jobs + len(result.remaining)} job(s) done, "
            f"{len(result.remaining)} remaining — resume with: "
            f"{resume_hint}"
        )
        return 130
    return 1 if result.errors else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _sweep_spec_from_args(args)
    try:
        spec.expand()  # surface grid mistakes before any simulation
    except ValueError as exc:
        raise SystemExit(f"bad sweep grid: {exc}") from exc
    if args.server:
        return _sweep_via_server(args, spec)
    cache, store, store_path, cid, journal = _campaign_setup(args, spec)
    fault_plan = (
        _load_fault_plan(args.fault_plan) if args.fault_plan else None
    )
    runner = CampaignRunner(
        cache=cache,
        store=store,
        workers=args.workers,
        job_timeout=args.job_timeout,
        max_retries=args.max_retries,
        backoff_seed=spec.seed,
        fault_plan=fault_plan,
        journal=journal,
    )
    print(f"campaign {spec.name!r}: {spec.n_points} points -> {store_path}")
    print(f"campaign id: {cid} (journal: {journal.path})")
    telemetry = (
        (lambda sample: print(_telemetry_line(sample), flush=True))
        if args.progress else None
    )
    try:
        result = runner.run(spec, progress=print, telemetry=telemetry)
    except SpecDriftError as exc:
        raise SystemExit(str(exc)) from exc
    except KeyboardInterrupt:
        # Interrupted outside supervised execution (cache consult,
        # journal replay): completed jobs are already journaled.
        print(
            f"\ninterrupted; completed jobs are journaled — resume "
            f"with: repro sweep ... --resume {cid}"
        )
        return 130
    return _print_campaign_outcome(
        result, args, store, f"repro sweep ... --resume {cid}"
    )


def _parse_hostport(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError as exc:
        raise SystemExit(
            f"bad server address {text!r}; use HOST:PORT"
        ) from exc


def _sweep_via_server(args: argparse.Namespace, spec: SweepSpec) -> int:
    """`repro sweep --server`: work a served queue, report its drain."""
    from repro.service import SweepWorker

    if args.resume is not None or args.fault_plan is not None:
        raise SystemExit(
            "--resume/--fault-plan belong to the serve side; pass them "
            "to `repro serve`"
        )
    host, port = _parse_hostport(args.server)
    cid = campaign_id(spec)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    print(f"campaign id: {cid}; working against {host}:{port}")
    worker = SweepWorker(
        host, port, cache=cache, campaign_id=cid, report=True
    )
    summary = worker.run()
    if summary.get("rejected"):
        print(
            f"rejected by server: {summary['rejected']}",
            file=sys.stderr,
        )
        return 2
    if summary.get("server_lost"):
        print(
            f"server lost: {summary.get('error')}\nif it was "
            f"interrupted, its journal checkpoint resumes it: "
            f"repro serve ... --resume {cid}",
            file=sys.stderr,
        )
        return 3
    print(
        f"drained ({summary.get('reason')}): "
        f"{summary.get('jobs_done', 0)} job(s) executed here, "
        f"{summary.get('cache_hits', 0)} shared-cache hits"
    )
    if summary.get("summary"):
        print(summary["summary"])
    records = summary.get("records") or []
    if records:
        print()
        print(campaign_report(records))
    if summary.get("interrupted"):
        print(
            f"\nserver was draining; resume it with: "
            f"repro serve ... --resume {cid}"
        )
        return 130
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import SweepServer

    spec = _sweep_spec_from_args(args)
    try:
        spec.expand()
    except ValueError as exc:
        raise SystemExit(f"bad sweep grid: {exc}") from exc
    cache, store, store_path, cid, journal = _campaign_setup(args, spec)
    fault_plan = (
        _load_fault_plan(args.fault_plan) if args.fault_plan else None
    )
    server = SweepServer(
        spec,
        host=args.host,
        port=args.port,
        cache=cache,
        store=store,
        journal=journal,
        lease_seconds=args.lease,
        heartbeat_seconds=args.heartbeat,
        max_retries=args.max_retries,
        fault_plan=fault_plan,
    )
    try:
        host, port = server.start()
    except SpecDriftError as exc:
        raise SystemExit(str(exc)) from exc
    print(f"campaign {spec.name!r}: {spec.n_points} points -> {store_path}")
    print(f"campaign id: {cid} (journal: {journal.path})")
    print(
        f"serving on {host}:{port} "
        f"(lease {server.lease_seconds:g}s, heartbeat "
        f"{server.heartbeat_seconds:g}s) — attach workers with: "
        f"repro work --connect {host}:{port}",
        flush=True,
    )
    try:
        with sigterm_as_interrupt():
            while True:
                result = server.wait(0.5)
                if result is not None:
                    break
    except KeyboardInterrupt:
        result = server.shutdown()
        print(
            f"\ndraining: journal checkpointed at {journal.path} — "
            f"resume with: repro serve ... --resume {cid}"
        )
        server.linger()
        server.close()
        return 130
    server.linger()
    server.close()
    return _print_campaign_outcome(
        result, args, store, f"repro serve ... --resume {cid}"
    )


def _cmd_work(args: argparse.Namespace) -> int:
    from repro.service import SweepWorker

    host, port = _parse_hostport(args.connect)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    worker = SweepWorker(
        host,
        port,
        name=args.name,
        cache=cache,
        campaign_id=args.expect_campaign,
        reconnect_attempts=args.reconnect_attempts,
        reconnect_backoff=args.reconnect_backoff,
    )
    summary = worker.run()
    if summary.get("rejected"):
        print(
            f"rejected by server: {summary['rejected']}",
            file=sys.stderr,
        )
        return 2
    if summary.get("server_lost"):
        hint = (
            f"; if it was interrupted, resume it with: "
            f"repro serve ... --resume {summary['campaign_id']}"
            if summary.get("campaign_id") else ""
        )
        print(
            f"server lost: {summary.get('error')}{hint}",
            file=sys.stderr,
        )
        return 3
    print(
        f"worker {summary['worker']} drained "
        f"({summary.get('reason')}): {summary['jobs_done']} ok, "
        f"{summary['jobs_failed']} failed, "
        f"{summary['cache_hits']} shared-cache hits, "
        f"{summary['reconnects']} reconnects"
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    report = cache.verify(quarantine=not args.no_quarantine)
    print(
        f"cache {report['root']}: {report['checked']} entr"
        f"{'y' if report['checked'] == 1 else 'ies'} checked, "
        f"{report['ok']} ok, {report['legacy']} legacy, "
        f"{len(report['corrupt'])} corrupt"
    )
    for rel in report["corrupt"]:
        action = "left in place" if args.no_quarantine else "quarantined"
        print(f"  corrupt: {rel} ({action})")
    if report["quarantined"]:
        print(f"quarantined entries ({len(report['quarantined'])}):")
        for name in report["quarantined"]:
            print(f"  {name}")
    return 1 if report["corrupt"] else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import check_invariants, compare_bench, run_bench

    tag = args.tag or args.core
    workloads = _split_csv(args.workloads) if args.workloads else None
    try:
        payload = run_bench(
            tag,
            core=args.core,
            workloads=workloads,
            smoke=args.smoke,
            out_path=args.out,
            progress=print,
            codec=args.codec,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    totals = payload["totals"]
    print(
        f"total: {totals['wall_seconds']:.2f}s wall, "
        f"{totals['simulated_cycles']} cycles "
        f"({totals['steps_executed']} stepped), "
        f"{totals['cycles_per_second']:,.0f} cycles/s, "
        f"{totals['flit_hops_per_second']:,.0f} flit-hops/s, "
        f"peak RSS {payload['peak_rss_bytes'] / 1e6:.0f} MB"
    )
    out = args.out or f"BENCH_{tag}.json"
    print(f"wrote {out}")
    if args.check_invariant:
        failures = check_invariants(payload)
        for failure in failures:
            print(f"invariant violated: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("invariants ok: stepped-cycles <= simulated-cycles"
              + (", idle cycles were fast-forwarded"
                 if payload["core"] == "event" else ""))
    if args.compare:
        import json

        try:
            baseline = json.loads(pathlib.Path(args.compare).read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(
                f"bad bench baseline {args.compare!r}: {exc}"
            ) from exc
        regressions = compare_bench(
            baseline,
            payload,
            args.max_regression_pct,
            min_delta_seconds=args.min_delta_seconds,
        )
        for regression in regressions:
            print(f"perf regression: {regression}", file=sys.stderr)
        if regressions:
            return 1
        print(
            f"wall time within +{args.max_regression_pct:.0f}% of "
            f"{args.compare} on every workload"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    records = list(store.latest_by_job().values())
    if not records:
        print(f"no records in {args.store}", file=sys.stderr)
        return 1
    if args.failures:
        print(failures_report(records))
        return 0
    # Failed (or malformed) jobs never block reporting the points that
    # did finish — one summary line, not one warning per record.
    skipped = skipped_records(records)
    if skipped:
        first_record, first_reason = skipped[0]
        print(
            f"warning: skipped {len(skipped)} of {len(records)} "
            f"record(s) (first: {first_record.get('job_id', '?')}: "
            f"{first_reason}); reporting the rest",
            file=sys.stderr,
        )
    print(campaign_report(records, args.pivot))
    if args.csv:
        rows = store.to_csv(args.csv)
        print(f"\nwrote {rows} rows to {args.csv}")
    return 0


def _load_trace(path: str) -> TrafficTrace:
    try:
        return TrafficTrace.load(path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"bad trace file {path!r}: {exc}") from exc


def _cmd_trace_stats(args: argparse.Namespace) -> int:
    stats = trace_stats(_load_trace(args.trace))
    for line in stats.lines():
        print(line)
    if args.per_link:
        print()
        print("per-link BTs:")
        for name in sorted(stats.per_link):
            print(f"  {name}: {stats.per_link[name]}")
    return 0


def _cmd_trace_heat(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    try:
        heat = link_heat(trace, args.window)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    window_totals = heat.window_totals()
    print(
        f"{heat.n_windows} window(s) of {heat.window} cycle(s); "
        f"{sum(window_totals)} BTs total, "
        f"peak window {int(np.argmax(window_totals))} "
        f"({max(window_totals)} BTs)"
    )
    print(f"hottest cells (top {args.top}):")
    for name, w, bts in heat.hottest(args.top):
        print(
            f"  {name} window {w} (cycles "
            f"[{w * heat.window}, {(w + 1) * heat.window})): {bts} BTs"
        )
    if args.owners:
        try:
            owners = bt_by_owner(trace)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
        print(f"BTs by owning packet (top {args.top}):")
        ranked = sorted(owners.items(), key=lambda kv: (-kv[1], kv[0]))
        for pid, bts in ranked[:args.top]:
            label = "unknown owner" if pid < 0 else f"packet {pid}"
            print(f"  {label}: {bts} BTs")
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    a = _load_trace(args.trace_a)
    b = _load_trace(args.trace_b)
    try:
        diff = trace_diff(a, b, args.window)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    for line in diff.lines(args.top):
        print(line)
    return 0 if diff.is_empty else 1


def _cmd_trace_bisect(args: argparse.Namespace) -> int:
    a = _load_trace(args.trace_a)
    b = _load_trace(args.trace_b)
    try:
        result = bisect_divergence(
            a, b, window=args.window, probe=args.probe, core=args.core
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    for line in result.lines():
        print(line)
    return 1 if result.diverged else 0


_TRACE_COMMANDS = {
    "stats": _cmd_trace_stats,
    "heat": _cmd_trace_heat,
    "diff": _cmd_trace_diff,
    "bisect": _cmd_trace_bisect,
}


def _cmd_trace(args: argparse.Namespace) -> int:
    return _TRACE_COMMANDS[args.trace_command](args)


_COMMANDS = {
    "run-noc": _cmd_run_noc,
    "no-noc": _cmd_no_noc,
    "link-power": _cmd_link_power,
    "table2": _cmd_table2,
    "traffic": _cmd_traffic,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "work": _cmd_work,
    "cache": _cmd_cache,
    "bench": _cmd_bench,
    "report": _cmd_report,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
