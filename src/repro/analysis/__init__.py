"""Analytical BT models and bit-statistics analyses (Fig. 1, 10, 11)."""

from repro.analysis.distribution import (
    BitPositionStats,
    analyze_stream,
    bit_one_probability,
)
from repro.analysis.expectation import (
    expectation_surface,
    expected_flit_transitions,
    expected_transitions,
    monte_carlo_expected_transitions,
    pair_product_objective,
    random_word_with_popcount,
    transition_probability,
)
from repro.analysis.summary import (
    ReductionRow,
    format_series,
    format_table,
    reduction_rate,
)
from repro.analysis.viz import bar_chart, count_grid, side_by_side, sparkline

__all__ = [
    "BitPositionStats",
    "analyze_stream",
    "bit_one_probability",
    "expectation_surface",
    "expected_flit_transitions",
    "expected_transitions",
    "monte_carlo_expected_transitions",
    "pair_product_objective",
    "random_word_with_popcount",
    "transition_probability",
    "ReductionRow",
    "format_series",
    "format_table",
    "reduction_rate",
    "bar_chart",
    "count_grid",
    "side_by_side",
    "sparkline",
]
