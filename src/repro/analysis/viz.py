"""Terminal-friendly visualisation helpers.

The paper's figures are matplotlib plots; offline we render their
information content as text: sparklines for per-bit-position curves
(Fig. 10/11), horizontal bar charts for BT comparisons (Fig. 12/13),
and count grids for the Fig. 9 heat map.  Examples and benches share
these helpers so outputs stay uniform.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

__all__ = ["sparkline", "bar_chart", "count_grid", "side_by_side"]

_BLOCKS = " .:-=+*#%@"


def sparkline(values: Sequence[float], v_max: float | None = None) -> str:
    """Render values in [0, v_max] as a density string.

    Args:
        values: the series (probabilities fit the default scale).
        v_max: scale maximum; defaults to max(values) or 1.0.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    if v_max is None:
        v_max = float(arr.max()) if arr.max() > 0 else 1.0
    if v_max <= 0:
        raise ValueError("v_max must be positive")
    scaled = np.clip(
        (arr / v_max * (len(_BLOCKS) - 1)).round(), 0, len(_BLOCKS) - 1
    ).astype(int)
    return "".join(_BLOCKS[i] for i in scaled)


def bar_chart(
    data: Mapping[str, float],
    title: str,
    width: int = 50,
    fmt: str = "{:,.0f}",
) -> str:
    """Horizontal bar chart with aligned labels and values."""
    if not data:
        return title
    peak = max(data.values())
    if peak <= 0:
        peak = 1.0
    label_w = max(len(k) for k in data)
    lines = [title]
    for name, value in data.items():
        bar = "#" * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(
            f"  {name:<{label_w}} | {bar:<{width}} {fmt.format(value)}"
        )
    return "\n".join(lines)


def count_grid(
    grid: np.ndarray, title: str, max_rows: int = 24
) -> str:
    """Fig. 9-style integer grid, one flit per row."""
    lines = [title]
    for i, row in enumerate(np.asarray(grid)[:max_rows]):
        cells = " ".join(f"{int(v):>2d}" for v in row)
        lines.append(f"  {i:>4d} | {cells}")
    if grid.shape[0] > max_rows:
        lines.append(f"  ... ({grid.shape[0] - max_rows} more rows)")
    return "\n".join(lines)


def side_by_side(left: str, right: str, gap: int = 4) -> str:
    """Join two text blocks horizontally (Fig. 9 left/right layout)."""
    l_lines = left.splitlines()
    r_lines = right.splitlines()
    l_width = max((len(l) for l in l_lines), default=0)
    height = max(len(l_lines), len(r_lines))
    l_lines += [""] * (height - len(l_lines))
    r_lines += [""] * (height - len(r_lines))
    return "\n".join(
        f"{l:<{l_width}}{' ' * gap}{r}" for l, r in zip(l_lines, r_lines)
    )
