"""Result-summary helpers shared by benches and examples.

The benchmark harness prints paper-style rows (Table I, Fig. 12/13
series); these helpers keep the formatting in one place so every bench
emits the same layout that EXPERIMENTS.md records.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

__all__ = ["ReductionRow", "reduction_rate", "format_table", "format_series"]


def reduction_rate(baseline: float, treated: float) -> float:
    """BT reduction rate in percent: ``(baseline - treated)/baseline``.

    Returns 0.0 for a zero baseline (no traffic means nothing to
    reduce), keeping ratio reporting total.
    """
    if baseline < 0 or treated < 0:
        raise ValueError("BT counts cannot be negative")
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - treated) / baseline


@dataclass(frozen=True)
class ReductionRow:
    """One row of a Table-I-style summary.

    Attributes:
        label: configuration name (e.g. "Float-32 random").
        flit_bits: link/flit width in bits.
        baseline: BTs per flit without ordering.
        ordered: BTs per flit with ordering.
    """

    label: str
    flit_bits: int
    baseline: float
    ordered: float

    @property
    def reduction(self) -> float:
        """Reduction rate in percent."""
        return reduction_rate(self.baseline, self.ordered)


def format_table(rows: Sequence[ReductionRow], title: str) -> str:
    """Render reduction rows as an aligned text table."""
    lines = [title]
    header = (
        f"{'Weights':<22}{'Flit bits':>10}{'Baseline':>12}"
        f"{'Ordered':>12}{'Reduction':>12}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.label:<22}{row.flit_bits:>10}{row.baseline:>12.2f}"
            f"{row.ordered:>12.2f}{row.reduction:>11.2f}%"
        )
    return "\n".join(lines)


def format_series(series: Mapping[str, Mapping[str, float]], title: str) -> str:
    """Render a {config -> {variant -> value}} mapping as a grid.

    Used by the Fig. 12/13 benches where each NoC size / model reports
    O0/O1/O2 values.
    """
    variants: list[str] = []
    for values in series.values():
        for key in values:
            if key not in variants:
                variants.append(key)
    lines = [title]
    header = f"{'Config':<24}" + "".join(f"{v:>14}" for v in variants)
    lines.append(header)
    lines.append("-" * len(header))
    for config, values in series.items():
        cells = "".join(
            f"{values.get(v, float('nan')):>14.2f}" for v in variants
        )
        lines.append(f"{config:<24}{cells}")
    return "\n".join(lines)
