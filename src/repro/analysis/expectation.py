"""Analytical BT expectation model — Eq. (1)-(4) and Fig. 1.

Sec. III-A models two W-bit numbers crossing the same W single-bit
links.  If the first number has ``x`` '1' bits and the second has
``y``, and bit positions are i.i.d. given the counts, then:

* per-link transition probability (Eq. 1)::

      P(t) = 1 - (W - x)(W - y) / W^2 - x*y / W^2

* expected BT over the whole word (Eq. 2)::

      E = W * P(t) = x + y - x*y * 2 / W        (paper: W = 32 -> xy/16)

* for flits carrying N numbers each (Eq. 3) the total expectation is
  separable, and minimising it reduces to maximising
  ``F = sum_i x_i * y_i`` (Eq. 4).

The Monte-Carlo counterpart draws random words with fixed popcounts to
validate the closed form (used by tests and the Fig. 1 bench).
"""

from __future__ import annotations

import numpy as np

from repro.bits.popcount import popcount

__all__ = [
    "transition_probability",
    "expected_transitions",
    "expectation_surface",
    "expected_flit_transitions",
    "pair_product_objective",
    "monte_carlo_expected_transitions",
    "random_word_with_popcount",
]


def transition_probability(x: int, y: int, width: int = 32) -> float:
    """Eq. (1): per-link BT probability for counts ``x`` and ``y``.

    Args:
        x: '1'-bit count of the first word, in [0, width].
        y: '1'-bit count of the second word, in [0, width].
        width: word width W (32 in the paper's derivation).
    """
    _check_count(x, width)
    _check_count(y, width)
    w = float(width)
    return 1.0 - (w - x) * (w - y) / (w * w) - (x * y) / (w * w)


def expected_transitions(x: int, y: int, width: int = 32) -> float:
    """Eq. (2): expected BT between two W-bit words.

    ``E = W * P(t) = x + y - 2*x*y/W`` (paper writes ``xy/16`` for
    W = 32).
    """
    return width * transition_probability(x, y, width)


def expectation_surface(width: int = 32) -> np.ndarray:
    """Fig. 1: the full (x, y) -> E surface for a W-bit word.

    Returns:
        shape ``(width + 1, width + 1)`` array with entry ``[x, y]``
        equal to :func:`expected_transitions`.
    """
    counts = np.arange(width + 1, dtype=np.float64)
    x = counts[:, None]
    y = counts[None, :]
    return x + y - 2.0 * x * y / float(width)


def expected_flit_transitions(
    xs: np.ndarray, ys: np.ndarray, width: int = 32
) -> float:
    """Eq. (3): total expected BT between two N-number flits.

    Args:
        xs: '1'-bit counts of the N numbers in flit 1.
        ys: '1'-bit counts of the N numbers in flit 2 (same length).
        width: per-number word width.
    """
    xs_a = np.asarray(xs, dtype=np.float64)
    ys_a = np.asarray(ys, dtype=np.float64)
    if xs_a.shape != ys_a.shape:
        raise ValueError(f"count shapes differ: {xs_a.shape} vs {ys_a.shape}")
    return float(xs_a.sum() + ys_a.sum() - 2.0 * (xs_a * ys_a).sum() / width)


def pair_product_objective(xs: np.ndarray, ys: np.ndarray) -> float:
    """Eq. (4): the objective ``F = sum_i x_i * y_i`` to maximise."""
    xs_a = np.asarray(xs, dtype=np.float64)
    ys_a = np.asarray(ys, dtype=np.float64)
    if xs_a.shape != ys_a.shape:
        raise ValueError(f"count shapes differ: {xs_a.shape} vs {ys_a.shape}")
    return float((xs_a * ys_a).sum())


def random_word_with_popcount(
    count: int, width: int, rng: np.random.Generator
) -> int:
    """Draw a uniform random ``width``-bit word with exactly ``count`` ones."""
    _check_count(count, width)
    positions = rng.choice(width, size=count, replace=False)
    word = 0
    for pos in positions:
        word |= 1 << int(pos)
    return word


def monte_carlo_expected_transitions(
    x: int,
    y: int,
    width: int = 32,
    trials: int = 2000,
    rng: np.random.Generator | None = None,
) -> float:
    """Empirical mean BT between random words of popcounts ``x``, ``y``.

    Cross-checks Eq. (2); agreement is exact in expectation because the
    closed form assumes uniform placement of the '1' bits, which is
    exactly how the samples are drawn.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    total = 0
    for _ in range(trials):
        a = random_word_with_popcount(x, width, rng)
        b = random_word_with_popcount(y, width, rng)
        total += popcount(a ^ b)
    return total / trials


def _check_count(count: int, width: int) -> None:
    if not 0 <= count <= width:
        raise ValueError(f"'1'-bit count {count} outside [0, {width}]")
