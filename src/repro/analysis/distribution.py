"""Bit-position statistics — the Fig. 10 / Fig. 11 analyses.

Two per-position curves are studied for a stream of words crossing a
link lane:

* probability that bit position ``p`` is '1' (value statistics; the
  float-32 curve exposes the sign / exponent / mantissa structure the
  paper points out);
* probability that bit position ``p`` *flips* between consecutive
  words (transition statistics; ordering lowers this curve).

Positions are reported MSB-first, matching the paper's x-axis where
position 1 is the float-32 sign bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bits.transitions import per_bit_transitions

__all__ = ["BitPositionStats", "bit_one_probability", "analyze_stream"]


def bit_one_probability(words: np.ndarray, width: int) -> np.ndarray:
    """Per-bit-position '1' probability over a stream of words.

    Args:
        words: 1-D unsigned array of words.
        width: word width in bits.

    Returns:
        shape ``(width,)`` float array, MSB first.
    """
    arr = np.asarray(words).reshape(-1)
    if arr.dtype.kind != "u":
        raise ValueError(f"expected unsigned dtype, got {arr.dtype}")
    if arr.size == 0:
        return np.zeros(width, dtype=np.float64)
    probs = np.empty(width, dtype=np.float64)
    for pos in range(width):
        bit = (arr >> np.asarray(width - 1 - pos, dtype=arr.dtype)) & 1
        probs[pos] = float(bit.mean())
    return probs


@dataclass(frozen=True)
class BitPositionStats:
    """Per-bit-position statistics of one word stream.

    Attributes:
        width: word width in bits.
        one_probability: P(bit == 1) per position, MSB first.
        transition_probability: P(bit flips between consecutive words)
            per position, MSB first.
        mean_popcount: average '1' count per word.
    """

    width: int
    one_probability: np.ndarray
    transition_probability: np.ndarray
    mean_popcount: float

    def describe_float32_fields(self) -> dict[str, float]:
        """Summarise the IEEE-754 field structure (width 32 only).

        Returns mean '1' probability for the sign bit, exponent bits
        and mantissa bits — the three regimes visible in Fig. 10.
        """
        if self.width != 32:
            raise ValueError("float32 field breakdown needs width == 32")
        p = self.one_probability
        return {
            "sign": float(p[0]),
            "exponent": float(p[1:9].mean()),
            "mantissa": float(p[9:].mean()),
        }


def analyze_stream(words: np.ndarray, width: int) -> BitPositionStats:
    """Compute the full Fig. 10/11-style statistics for a word stream.

    Args:
        words: 1-D unsigned array, in the order the words cross a lane.
        width: word width in bits.
    """
    arr = np.asarray(words).reshape(-1)
    one_p = bit_one_probability(arr, width)
    trans_p = per_bit_transitions(arr, width)
    mean_pop = float(one_p.sum())
    return BitPositionStats(
        width=width,
        one_probability=one_p,
        transition_probability=trans_p,
        mean_popcount=mean_pop,
    )
