"""Serving-fleet configuration: tenants, arrivals, policies.

A fleet is a list of :class:`TenantSpec` plus fleet-wide defaults in
:class:`ServingConfig`.  Two tenant workloads exist:

* ``"model"`` — a DNN inference service.  Each request replays the
  tenant's captured single-inference injection schedule (the same
  wire traffic a ``model`` job produces, restricted to the tenant's
  mesh partition), so a lone tenant with the whole mesh reproduces the
  model job's BT totals bit-exactly.
* ``"synthetic"`` — background/interference traffic: each request is a
  burst of synthetic packets following one of the
  :mod:`repro.noc.traffic` patterns.

Tenant mixes are usually written in the compact CLI grammar parsed by
:func:`parse_tenant_mix`::

    lenet+uniform          one LeNet service plus uniform background
    lenet@O2+lenet@O0      two LeNet services with different orderings
    darknet+hotspot@0.05   DarkNet plus hotspot background at rate 0.05

Model tokens take an optional ``@O0|@O1|@O2`` ordering override;
pattern tokens take an optional ``@<rate>`` arrival-rate override
(requests per cycle).  Duplicate tokens get ``#2``, ``#3``… name
suffixes so per-tenant report rows stay distinct.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any

__all__ = [
    "ARRIVAL_KINDS",
    "PARTITION_POLICIES",
    "SERVING_MODELS",
    "SERVING_PATTERNS",
    "TENANT_WORKLOADS",
    "TenantSpec",
    "ServingConfig",
    "parse_tenant_mix",
]

#: Model names a "model" tenant may serve (mirrors the campaign
#: engine's MODEL_NAMES; defined here so serving does not import the
#: experiments layer it sits below).
SERVING_MODELS = ("lenet", "darknet", "trained_lenet")

#: Synthetic patterns a background tenant may inject (string values of
#: :class:`repro.noc.traffic.TrafficPattern`).
SERVING_PATTERNS = ("uniform", "transpose", "complement", "hotspot")

TENANT_WORKLOADS = ("model", "synthetic")
PARTITION_POLICIES = ("interleaved", "blocks")
ARRIVAL_KINDS = ("poisson", "trace")

_ORDERING_NAMES = ("O0", "O1", "O2")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the fleet.

    ``None``-valued fields fall back to the fleet-wide default in
    :class:`ServingConfig` (``rate`` to ``request_rate`` for model
    tenants and ``background_rate`` for synthetic ones).

    Attributes:
        name: unique tenant label (report row key).
        workload: "model" or "synthetic".
        model: served model (model tenants).
        ordering: per-tenant transmission-ordering override
            ("O0"/"O1"/"O2"; model tenants).
        pattern: traffic pattern (synthetic tenants).
        share: partition weight — node counts are proportional.
        rate: arrival rate in requests per cycle.
        n_requests: requests to issue (overrides the fleet default).
        max_outstanding: admission cap (0 = unlimited).
        batch_window: batching quantum in cycles (0 = none).
    """

    name: str
    workload: str = "synthetic"
    model: str = "lenet"
    ordering: str | None = None
    pattern: str = "uniform"
    share: int = 1
    rate: float | None = None
    n_requests: int | None = None
    max_outstanding: int | None = None
    batch_window: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.workload not in TENANT_WORKLOADS:
            raise ValueError(
                f"unknown tenant workload {self.workload!r}; "
                f"use one of {TENANT_WORKLOADS}"
            )
        if self.workload == "model" and self.model not in SERVING_MODELS:
            raise ValueError(
                f"unknown tenant model {self.model!r}; "
                f"use one of {SERVING_MODELS}"
            )
        if self.workload == "synthetic" and (
            self.pattern not in SERVING_PATTERNS
        ):
            raise ValueError(
                f"unknown tenant pattern {self.pattern!r}; "
                f"use one of {SERVING_PATTERNS}"
            )
        if self.ordering is not None and self.ordering not in _ORDERING_NAMES:
            raise ValueError(
                f"unknown ordering {self.ordering!r}; "
                f"use one of {_ORDERING_NAMES}"
            )
        if self.share <= 0:
            raise ValueError("tenant share must be positive")
        if self.rate is not None and self.rate < 0:
            raise ValueError("tenant rate must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; exact inverse of :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TenantSpec":
        """Rebuild a spec from :meth:`to_dict` output (strict keys)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown TenantSpec fields: {sorted(unknown)}")
        return cls(**data)


def parse_tenant_mix(text: str) -> tuple[TenantSpec, ...]:
    """Parse a ``+``-separated tenant-mix string into specs.

    Each token is a model name (→ model tenant, optional ``@O<n>``
    ordering) or a pattern name (→ synthetic tenant, optional
    ``@<rate>``).  See the module docstring for examples.
    """
    tenants: list[TenantSpec] = []
    counts: dict[str, int] = {}
    for token in text.split("+"):
        token = token.strip()
        if not token:
            raise ValueError(f"empty tenant token in mix {text!r}")
        base, _, modifier = token.partition("@")
        counts[base] = counts.get(base, 0) + 1
        name = base if counts[base] == 1 else f"{base}#{counts[base]}"
        if base in SERVING_MODELS:
            ordering = modifier or None
            if ordering is not None and ordering not in _ORDERING_NAMES:
                raise ValueError(
                    f"bad ordering {modifier!r} in tenant {token!r}; "
                    f"use one of {_ORDERING_NAMES}"
                )
            tenants.append(
                TenantSpec(
                    name=name,
                    workload="model",
                    model=base,
                    ordering=ordering,
                )
            )
        elif base in SERVING_PATTERNS:
            rate: float | None = None
            if modifier:
                try:
                    rate = float(modifier)
                except ValueError:
                    raise ValueError(
                        f"bad rate {modifier!r} in tenant {token!r}"
                    ) from None
            tenants.append(
                TenantSpec(
                    name=name,
                    workload="synthetic",
                    pattern=base,
                    rate=rate,
                )
            )
        else:
            raise ValueError(
                f"unknown tenant {base!r} in mix {text!r}; use a model "
                f"{SERVING_MODELS} or a pattern {SERVING_PATTERNS}"
            )
    if not tenants:
        raise ValueError("tenant mix must name at least one tenant")
    return tuple(tenants)


@dataclass(frozen=True)
class ServingConfig:
    """Fleet-wide serving parameters.

    Attributes:
        tenants: the fleet (unique names).
        partitioning: mesh split policy — "interleaved" (tenants share
            every region; interference default) or "blocks" (contiguous
            isolation baseline).
        ordering: default transmission ordering of model tenants.
        data_format: link data format of the fleet ("float32" or
            "fixed8"); fixes the link width for all tenants.
        request_rate: default arrival rate of model tenants
            (requests per cycle).
        background_rate: default arrival rate of synthetic tenants;
            the interference-level sweep axis.
        n_requests: default requests per tenant.
        packets_per_request: packets per synthetic burst request.
        flits_per_packet: flits per synthetic packet.
        payload: synthetic payload kind ("random"/"zero"/"counter").
        arrival: arrival process — "poisson" or "trace".
        inter_arrivals: recorded inter-arrival gaps for "trace"
            (cycled; see :func:`repro.noc.traffic.trace_arrivals`).
        max_outstanding: default admission cap (0 = unlimited).
        batch_window: default batching quantum in cycles (0 = none).
        max_tasks_per_layer: workload scale of model tenants.
        n_mcs: memory controllers per model tenant partition.
        seed: root seed of arrivals and synthetic traffic.
        model_seed / image_seed: model-tenant workload seeds.
        task_seed: model-tenant task-sampling seed
            (:attr:`AcceleratorConfig.seed`).
    """

    tenants: tuple[TenantSpec, ...] = (TenantSpec(name="uniform"),)
    partitioning: str = "interleaved"
    ordering: str = "O0"
    data_format: str = "fixed8"
    request_rate: float = 0.001
    background_rate: float = 0.01
    n_requests: int = 2
    packets_per_request: int = 8
    flits_per_packet: int = 4
    payload: str = "random"
    arrival: str = "poisson"
    inter_arrivals: tuple[int, ...] = ()
    max_outstanding: int = 0
    batch_window: int = 0
    max_tasks_per_layer: int = 4
    n_mcs: int = 2
    seed: int = 0
    model_seed: int = 1
    image_seed: int = 5
    task_seed: int = 2025

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("serving fleet needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        if self.partitioning not in PARTITION_POLICIES:
            raise ValueError(
                f"unknown partitioning {self.partitioning!r}; "
                f"use one of {PARTITION_POLICIES}"
            )
        if self.ordering not in _ORDERING_NAMES:
            raise ValueError(
                f"unknown ordering {self.ordering!r}; "
                f"use one of {_ORDERING_NAMES}"
            )
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.arrival!r}; "
                f"use one of {ARRIVAL_KINDS}"
            )
        if self.arrival == "trace" and not self.inter_arrivals:
            raise ValueError("trace arrivals need inter_arrivals gaps")
        if self.payload not in ("random", "zero", "counter"):
            raise ValueError(f"unknown payload kind {self.payload!r}")
        if self.request_rate < 0 or self.background_rate < 0:
            raise ValueError("arrival rates must be non-negative")
        if self.n_requests < 0:
            raise ValueError("n_requests must be non-negative")
        if self.packets_per_request <= 0 or self.flits_per_packet <= 0:
            raise ValueError("synthetic burst shape must be positive")
        if self.max_outstanding < 0 or self.batch_window < 0:
            raise ValueError("policy knobs must be non-negative")

    # -- per-tenant effective values -------------------------------------

    def tenant_rate(self, tenant: TenantSpec) -> float:
        """Arrival rate of a tenant after default fallback."""
        if tenant.rate is not None:
            return tenant.rate
        if tenant.workload == "model":
            return self.request_rate
        return self.background_rate

    def tenant_requests(self, tenant: TenantSpec) -> int:
        return (
            tenant.n_requests
            if tenant.n_requests is not None
            else self.n_requests
        )

    def tenant_ordering(self, tenant: TenantSpec) -> str:
        return tenant.ordering if tenant.ordering is not None else self.ordering

    def tenant_max_outstanding(self, tenant: TenantSpec) -> int:
        return (
            tenant.max_outstanding
            if tenant.max_outstanding is not None
            else self.max_outstanding
        )

    def tenant_batch_window(self, tenant: TenantSpec) -> int:
        return (
            tenant.batch_window
            if tenant.batch_window is not None
            else self.batch_window
        )

    def with_tenants(self, tenants: tuple[TenantSpec, ...]) -> "ServingConfig":
        return replace(self, tenants=tenants)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; exact inverse of :meth:`from_dict`."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "tenants":
                value = [t.to_dict() for t in value]
            elif f.name == "inter_arrivals":
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServingConfig":
        """Rebuild a config from :meth:`to_dict` output (strict keys)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ServingConfig fields: {sorted(unknown)}"
            )
        kwargs = dict(data)
        if "tenants" in kwargs:
            kwargs["tenants"] = tuple(
                t if isinstance(t, TenantSpec) else TenantSpec.from_dict(t)
                for t in kwargs["tenants"]
            )
        if "inter_arrivals" in kwargs:
            kwargs["inter_arrivals"] = tuple(
                int(g) for g in kwargs["inter_arrivals"]
            )
        return cls(**kwargs)
