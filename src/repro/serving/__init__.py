"""Multi-tenant serving-fleet scenarios on one NoC mesh.

The source paper gives each model the whole mesh; this package models
the serving question it never asks — several tenants co-resident on
one mesh (per-tenant PE partitions from
:func:`repro.accelerator.mapping.partition_mesh`), open-loop request
arrivals, admission control and batching, and per-tenant tail-latency
accounting next to the per-tenant BT split.

:mod:`repro.serving.fleet` holds the declarative configuration
(:class:`TenantSpec` / :class:`ServingConfig` and the ``lenet+uniform``
tenant-mix grammar); :mod:`repro.serving.scenario` executes a fleet
(:func:`run_serving`).  The ``serving`` campaign job kind in
:mod:`repro.experiments.kinds` is a thin wrapper over these.
"""

from repro.serving.fleet import (
    ARRIVAL_KINDS,
    PARTITION_POLICIES,
    SERVING_MODELS,
    SERVING_PATTERNS,
    ServingConfig,
    TenantSpec,
    parse_tenant_mix,
)
from repro.serving.scenario import ServingResult, TenantStats, run_serving

__all__ = [
    "ARRIVAL_KINDS",
    "PARTITION_POLICIES",
    "SERVING_MODELS",
    "SERVING_PATTERNS",
    "ServingConfig",
    "ServingResult",
    "TenantSpec",
    "TenantStats",
    "parse_tenant_mix",
    "run_serving",
]
