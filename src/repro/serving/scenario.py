"""Serving-fleet execution: partitions, arrivals, replay, accounting.

:func:`run_serving` simulates a :class:`~repro.serving.fleet.ServingConfig`
fleet on one NoC:

1. The mesh is split into per-tenant partitions
   (:func:`repro.accelerator.mapping.partition_mesh`).
2. Each tenant's *request template* is built once.  Model tenants run
   one partition-restricted inference through
   :class:`~repro.accelerator.simulator.AcceleratorSimulator` with a
   schedule-capturing collector; the captured injection schedule *is*
   the template, so replaying it reproduces the inference's wire
   traffic exactly (per-link BTs are shift-invariant: a constant shift
   of every injection cycle preserves all relative timing and hence
   every per-link flit sequence).  Synthetic tenants get a burst of
   pattern traffic per request.
3. Open-loop arrivals are pre-generated per tenant
   (:func:`repro.noc.traffic.poisson_arrivals` /
   :func:`~repro.noc.traffic.trace_arrivals`) — sampling outside the
   simulation loop keeps the schedule identical across the event and
   stepped cores.
4. One merged drive loop injects every admitted request's packets on
   schedule; per-tenant admission caps and batch windows apply at
   arrival time.
5. Delivery sinks account per-packet and per-request latency per
   tenant; a trace-hook tracker attributes every recorded link
   transition to the owning tenant (mirroring
   :class:`~repro.noc.recorder.LinkRecorder`'s first-traversal-free
   semantics, so tenant BTs sum exactly to the ledger total).

A single-tenant fleet given the whole mesh with zero background
arrivals therefore reproduces the corresponding ``model`` job's BT
totals bit-exactly — the conformance anchor pinned in the golden
suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any

import numpy as np

from repro.accelerator.config import AcceleratorConfig, link_width_for
from repro.accelerator.mapping import partition_mesh, placement_for_nodes
from repro.accelerator.simulator import AcceleratorSimulator
from repro.bits.popcount import popcount
from repro.dnn.datasets import synthetic_digits, synthetic_shapes
from repro.dnn.models import ModelSpec, build_model
from repro.noc.flit import Packet, make_packet
from repro.noc.network import (
    Network,
    NoCConfig,
    SimulationTimeout,
    percentile,
)
from repro.noc.topology import manhattan_distance, node_id
from repro.noc.traffic import (
    TrafficPattern,
    destination_for,
    poisson_arrivals,
    trace_arrivals,
)
from repro.noc.traffic import _payload_words
from repro.obs.metrics import active_registry, metrics_suspended
from repro.ordering.strategies import OrderingMethod
from repro.serving.fleet import ServingConfig, TenantSpec
from repro.workloads.streams import trained_lenet_model

__all__ = ["TenantStats", "ServingResult", "run_serving"]

#: (cycle, src, dst, payloads) — one template injection event.
_Event = tuple[int, int, int, tuple[int, ...]]


class _ScheduleCollector:
    """Trace collector that captures the injection schedule only."""

    def __init__(self) -> None:
        self.events: list[_Event] = []

    def record(self, name, bits, cycle, vc, flit) -> None:
        """Per-hop hook: unused, but required by the hook binding."""

    def record_send(self, cycle: int, packet: Packet) -> None:
        self.events.append(
            (
                cycle,
                packet.src,
                packet.dst,
                tuple(f.payload for f in packet.flits),
            )
        )


class _TenantTracker:
    """Attribute recorded link transitions to the owning tenant.

    Mirrors :class:`~repro.noc.recorder.LinkRecorder` exactly — per
    link, the first traversal causes zero transitions — and the trace
    hook fires precisely where the ledger records, so the per-tenant
    totals sum to ``stats.total_bit_transitions``.
    """

    def __init__(self, n_tenants: int) -> None:
        self.previous: dict[str, int] = {}
        self.transitions = [0] * n_tenants
        self.flits = [0] * n_tenants
        self.tenant_of: dict[int, int] = {}  # packet_id -> tenant index

    def record(self, name, bits, cycle, vc, flit) -> None:
        prev = self.previous.get(name)
        caused = 0 if prev is None else popcount(prev ^ bits)
        self.previous[name] = bits
        tenant = self.tenant_of.get(flit.packet_id)
        if tenant is not None:
            self.transitions[tenant] += caused
            self.flits[tenant] += 1


@dataclass
class TenantStats:
    """Per-tenant serving outcome.

    Request latency is measured from *arrival* to last-packet delivery,
    so batching delay counts against the tenant; packet latency is the
    usual injection-to-ejection cycle count.
    """

    name: str
    workload: str
    nodes: tuple[int, ...]
    requests_arrived: int = 0
    requests_admitted: int = 0
    requests_rejected: int = 0
    requests_completed: int = 0
    packets_injected: int = 0
    request_latencies: list[int] = field(default_factory=list)
    packet_latencies: list[int] = field(default_factory=list)
    bit_transitions: int = 0
    flit_hops: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON summary (the campaign record's per-tenant row)."""
        return {
            "name": self.name,
            "workload": self.workload,
            "n_nodes": len(self.nodes),
            "requests_arrived": self.requests_arrived,
            "requests_admitted": self.requests_admitted,
            "requests_rejected": self.requests_rejected,
            "requests_completed": self.requests_completed,
            "packets_injected": self.packets_injected,
            "bit_transitions": self.bit_transitions,
            "flit_hops": self.flit_hops,
            "mean_request_latency": (
                sum(self.request_latencies) / len(self.request_latencies)
                if self.request_latencies
                else 0.0
            ),
            "p50_request_latency": percentile(self.request_latencies, 50),
            "p95_request_latency": percentile(self.request_latencies, 95),
            "p99_request_latency": percentile(self.request_latencies, 99),
            "mean_packet_latency": (
                sum(self.packet_latencies) / len(self.packet_latencies)
                if self.packet_latencies
                else 0.0
            ),
            "p50_packet_latency": percentile(self.packet_latencies, 50),
            "p95_packet_latency": percentile(self.packet_latencies, 95),
            "p99_packet_latency": percentile(self.packet_latencies, 99),
        }


@dataclass
class ServingResult:
    """Outcome of one fleet simulation."""

    config: ServingConfig
    noc: NoCConfig
    tenants: list[TenantStats]
    total_cycles: int
    total_bit_transitions: int
    flit_hops: int
    packets_injected: int
    packets_delivered: int
    flits_injected: int
    packet_latencies: list[int]
    per_link: dict[str, int]
    steps_executed: int
    idle_cycles_skipped: int
    metrics: dict[str, int]

    @property
    def mean_packet_latency(self) -> float:
        if not self.packet_latencies:
            return 0.0
        return sum(self.packet_latencies) / len(self.packet_latencies)

    def latency_percentile(self, p: float) -> float:
        return percentile(self.packet_latencies, p)


def _tenant_model_image(
    model_name: str, model_seed: int, image_seed: int
) -> tuple[ModelSpec, np.ndarray]:
    """(model, sample image) of a model tenant.

    Mirrors the campaign engine's ``_build_model_images`` (serving
    sits below the experiments layer, so the builder is duplicated
    rather than imported) — same builders, same seeds, so a tenant's
    workload is identical to the equivalent ``model`` job's.
    """
    if model_name == "trained_lenet":
        model = trained_lenet_model(seed=model_seed)
        images = synthetic_digits(1, seed=image_seed).images
    elif model_name == "lenet":
        model = build_model("lenet", rng=np.random.default_rng(model_seed))
        images = synthetic_digits(1, seed=image_seed).images
    elif model_name == "darknet":
        model = build_model("darknet", rng=np.random.default_rng(model_seed))
        images = synthetic_shapes(1, seed=image_seed).images
    else:  # pragma: no cover - TenantSpec already validates the name
        raise ValueError(f"unknown model {model_name!r}")
    return model, images[0]


def _accelerator_config_for(
    config: ServingConfig, noc: NoCConfig, tenant: TenantSpec
) -> AcceleratorConfig:
    """The per-tenant accelerator config whose NoC equals ``noc``."""
    acc = AcceleratorConfig(
        width=noc.width,
        height=noc.height,
        n_mcs=config.n_mcs,
        data_format=config.data_format,
        ordering=OrderingMethod.from_name(config.tenant_ordering(tenant)),
        max_tasks_per_layer=config.max_tasks_per_layer,
        n_vcs=noc.n_vcs,
        vc_depth=noc.vc_depth,
        routing=noc.routing,
        injection_rate=noc.injection_rate,
        record_ejection=noc.record_ejection,
        core=noc.core,
        seed=config.task_seed,
    )
    if acc.noc_config() != noc:
        raise ValueError(
            f"model tenant {tenant.name!r} cannot run on this NoC: the "
            f"accelerator derives {acc.noc_config()}, the fleet mesh is "
            f"{noc}.  Model tenants need link_width == "
            f"link_width_for(data_format) = "
            f"{link_width_for(config.data_format)} and default "
            f"record_injection/include_header_bits/link_latency."
        )
    return acc


def _model_template(
    config: ServingConfig,
    noc: NoCConfig,
    tenant: TenantSpec,
    nodes: tuple[int, ...],
    max_cycles: int,
) -> list[_Event]:
    """Capture one inference's injection schedule on the partition."""
    acc = _accelerator_config_for(config, noc, tenant)
    if config.n_mcs >= len(nodes):
        raise ValueError(
            f"model tenant {tenant.name!r} has {len(nodes)} nodes but "
            f"needs more than n_mcs={config.n_mcs}"
        )
    model, image = _tenant_model_image(
        tenant.model, config.model_seed, config.image_seed
    )
    placement = placement_for_nodes(
        noc.width, noc.height, config.n_mcs, nodes
    )
    collector = _ScheduleCollector()
    sim = AcceleratorSimulator(acc, model, image, placement=placement)
    # The capture run is workload preparation, not fleet measurement:
    # keep its counters out of any active metrics registry.
    with metrics_suspended():
        sim.run(max_cycles_per_layer=max_cycles, trace_collector=collector)
    events = sorted(collector.events, key=lambda e: e[0])
    if events:
        base = events[0][0]
        events = [(c - base, s, d, p) for c, s, d, p in events]
    return events


def _synthetic_templates(
    config: ServingConfig,
    noc: NoCConfig,
    tenant: TenantSpec,
    nodes: tuple[int, ...],
    n_requests: int,
    rng: np.random.Generator,
) -> list[list[_Event]]:
    """Per-request burst blueprints for a synthetic tenant.

    Sources are drawn from the tenant's partition.  Uniform and
    hotspot destinations stay inside the partition; transpose and
    complement keep their global node mapping, so they deliberately
    cross partition boundaries (worst-case interference traffic).
    """
    pattern = TrafficPattern(tenant.pattern)
    hotspot = None
    if pattern is TrafficPattern.HOTSPOT:
        centre = node_id(noc.width // 2, noc.height // 2, noc.width)
        hotspot = min(
            nodes,
            key=lambda n: (manhattan_distance(n, centre, noc.width), n),
        )
    # Collision-free counter payloads across the whole tenant stream.
    stride = max(16, config.flits_per_packet)
    requests: list[list[_Event]] = []
    packet_index = 0
    for _ in range(n_requests):
        events: list[_Event] = []
        for j in range(config.packets_per_request):
            src = int(nodes[int(rng.integers(0, len(nodes)))])
            if pattern is TrafficPattern.UNIFORM_RANDOM:
                dst = int(nodes[int(rng.integers(0, len(nodes)))])
            elif pattern is TrafficPattern.HOTSPOT:
                dst = int(hotspot)
            else:
                dst = destination_for(
                    src, pattern, noc.width, noc.height, rng
                )
            payloads = tuple(
                _payload_words(
                    config.payload,
                    noc.link_width,
                    rng,
                    packet_index * stride + f,
                )
                for f in range(config.flits_per_packet)
            )
            # One packet per cycle: a request is a short burst.
            events.append((j, src, dst, payloads))
            packet_index += 1
        requests.append(events)
    return requests


def _tenant_arrivals(
    config: ServingConfig,
    tenant: TenantSpec,
    tenant_index: int,
    n_requests: int,
) -> list[int]:
    """Pre-generated arrival cycles of one tenant."""
    if config.arrival == "trace":
        return trace_arrivals(list(config.inter_arrivals), n_requests)
    rng = np.random.default_rng([config.seed, tenant_index, 0])
    return poisson_arrivals(config.tenant_rate(tenant), n_requests, rng)


def run_serving(
    config: ServingConfig,
    noc: NoCConfig | None = None,
    max_cycles: int = 2_000_000,
) -> ServingResult:
    """Simulate a serving fleet; returns the per-tenant accounting.

    Args:
        config: the fleet.
        noc: the shared mesh; defaults to the mesh a model job with
            the fleet's data format would use.  ``record_injection``
            must be off (per-tenant BT attribution mirrors the ledger,
            which the injection recorders would double-count).
        max_cycles: total cycle budget, and the per-layer drain budget
            of model-tenant template captures.
    """
    if noc is None:
        noc = NoCConfig(link_width=link_width_for(config.data_format))
    if noc.record_injection:
        raise ValueError(
            "serving runs need record_injection=False (tenant BT "
            "attribution follows the traced transmit links)"
        )
    shares = [t.share for t in config.tenants]
    partitions = partition_mesh(
        noc.width, noc.height, shares, config.partitioning
    )

    # -- per-tenant templates and arrivals -------------------------------
    templates: list[list[list[_Event]]] = []  # tenant -> request -> events
    arrivals_per_tenant: list[list[int]] = []
    stats: list[TenantStats] = []
    for t_idx, tenant in enumerate(config.tenants):
        nodes = partitions[t_idx]
        n_requests = config.tenant_requests(tenant)
        arrivals = _tenant_arrivals(config, tenant, t_idx, n_requests)
        n_requests = len(arrivals)
        if tenant.workload == "model":
            template = _model_template(
                config, noc, tenant, nodes, max_cycles
            )
            templates.append([template] * n_requests)
        else:
            rng = np.random.default_rng([config.seed, t_idx, 1])
            templates.append(
                _synthetic_templates(
                    config, noc, tenant, nodes, n_requests, rng
                )
            )
        arrivals_per_tenant.append(arrivals)
        stats.append(
            TenantStats(
                name=tenant.name, workload=tenant.workload, nodes=nodes
            )
        )

    # Merged arrival stream, (cycle, tenant, request) ascending; the
    # tenant index tie-breaks so same-cycle arrivals process in fleet
    # order deterministically.
    merged: list[tuple[int, int, int]] = sorted(
        (cycle, t_idx, r_idx)
        for t_idx, arrivals in enumerate(arrivals_per_tenant)
        for r_idx, cycle in enumerate(arrivals)
    )

    # -- drive -----------------------------------------------------------
    network = Network(noc)
    tracker = _TenantTracker(len(config.tenants))
    network.trace_collector = tracker

    outstanding = [0] * len(config.tenants)
    arrival_cycle: dict[tuple[int, int], int] = {}
    remaining: dict[tuple[int, int], int] = {}
    batch_delay_total = 0

    def sink(packet: Packet, cycle: int) -> None:
        meta = packet.metadata
        tenant = meta.get("tenant")
        if tenant is None:
            return
        tstats = stats[tenant]
        tstats.packet_latencies.append(packet.latency)
        key = (tenant, meta["request"])
        remaining[key] -= 1
        if remaining[key] == 0:
            del remaining[key]
            outstanding[tenant] -= 1
            tstats.requests_completed += 1
            tstats.request_latencies.append(cycle - arrival_cycle[key])

    for node in range(noc.n_nodes):
        network.attach_sink(node, sink)

    heap: list[tuple[int, int, Packet]] = []
    seq = itertools.count()

    def admit(now: int, t_idx: int, r_idx: int) -> None:
        nonlocal batch_delay_total
        tenant = config.tenants[t_idx]
        tstats = stats[t_idx]
        tstats.requests_arrived += 1
        cap = config.tenant_max_outstanding(tenant)
        if cap > 0 and outstanding[t_idx] >= cap:
            tstats.requests_rejected += 1
            return
        window = config.tenant_batch_window(tenant)
        start = now if window <= 0 else -(-now // window) * window
        batch_delay_total += start - now
        template = templates[t_idx][r_idx]
        key = (t_idx, r_idx)
        arrival_cycle[key] = now
        remaining[key] = len(template)
        outstanding[t_idx] += 1
        tstats.requests_admitted += 1
        if not template:
            # A degenerate empty request completes instantly.
            del remaining[key]
            outstanding[t_idx] -= 1
            tstats.requests_completed += 1
            tstats.request_latencies.append(0)
            return
        for cycle, src, dst, payloads in template:
            packet = make_packet(
                src,
                dst,
                list(payloads),
                noc.link_width,
                metadata={"tenant": t_idx, "request": r_idx},
            )
            tracker.tenant_of[packet.packet_id] = t_idx
            tstats.packets_injected += 1
            heappush(heap, (start + cycle, next(seq), packet))

    arr_idx = 0
    n_arrivals = len(merged)
    event = network.event_core
    while arr_idx < n_arrivals or heap or network.has_work:
        if event and network.is_idle:
            target = max_cycles
            if arr_idx < n_arrivals:
                target = min(target, merged[arr_idx][0])
            if heap:
                target = min(target, heap[0][0])
            internal = network.next_internal_event()
            if internal is not None:
                target = min(target, internal)
            network.fast_forward(target)
        while arr_idx < n_arrivals and merged[arr_idx][0] <= network.cycle:
            _, t_idx, r_idx = merged[arr_idx]
            admit(network.cycle, t_idx, r_idx)
            arr_idx += 1
        while heap and heap[0][0] <= network.cycle:
            _, _, packet = heappop(heap)
            network.send_packet(packet)
        if network.cycle >= max_cycles:
            raise SimulationTimeout(
                f"serving run exceeded {max_cycles} cycles"
            )
        network.step()

    # -- accounting ------------------------------------------------------
    for t_idx, tstats in enumerate(stats):
        tstats.bit_transitions = tracker.transitions[t_idx]
        tstats.flit_hops = tracker.flits[t_idx]

    net_stats = network.stats
    metrics: dict[str, int] = network.metrics_snapshot()
    metrics["serving.tenants"] = len(config.tenants)
    metrics["serving.requests_arrived"] = sum(
        t.requests_arrived for t in stats
    )
    metrics["serving.requests_admitted"] = sum(
        t.requests_admitted for t in stats
    )
    metrics["serving.requests_rejected"] = sum(
        t.requests_rejected for t in stats
    )
    metrics["serving.requests_completed"] = sum(
        t.requests_completed for t in stats
    )
    metrics["serving.packets_injected"] = net_stats.packets_injected
    metrics["serving.batch_delay_cycles"] = batch_delay_total
    registry = active_registry()
    if registry is not None:
        registry.merge(metrics)

    return ServingResult(
        config=config,
        noc=noc,
        tenants=stats,
        total_cycles=net_stats.cycles,
        total_bit_transitions=net_stats.total_bit_transitions,
        flit_hops=net_stats.flit_hops,
        packets_injected=net_stats.packets_injected,
        packets_delivered=net_stats.packets_delivered,
        flits_injected=net_stats.flits_injected,
        packet_latencies=list(net_stats.packet_latencies),
        per_link=network.ledger.per_link(),
        steps_executed=network.steps_executed,
        idle_cycles_skipped=network.idle_cycles_skipped,
        metrics=metrics,
    )
