"""The sweep job server: lease-based queue over a campaign journal.

A :class:`SweepServer` owns everything a `repro sweep` run owns — the
expanded job list, the content-addressed cache triage, the crash-safe
journal, the JSONL store — but executes nothing itself.  Workers
connect over the :mod:`repro.service.protocol` socket and pull jobs
under time-bounded leases; the server's only runtime duties are
bookkeeping and recovery:

* grant jobs (cache hits and journal-resumed jobs are never queued),
* renew leases on heartbeats,
* return orphaned jobs to the queue when a lease expires (dead or
  stalled worker — "work stealing" from the claimant's perspective),
* reconcile results idempotently: the first completion of a job wins
  and is journaled immediately; late results from presumed-dead
  workers are acknowledged as duplicates and discarded, which is safe
  because job execution is deterministic,
* retry transient job failures (re-queue) up to ``max_retries``,
  quarantining poison jobs exactly like the inline runner,
* on completion — or on a drain triggered by SIGINT/SIGTERM — write
  the store in grid order and journal the ``end``/``checkpoint``
  event, so ``--resume`` behaves identically to the inline engine.

The final :class:`~repro.experiments.runner.CampaignResult` is
byte-compatible with an inline run of the same spec: served records
carry no worker identity, no attempt counts (for ok records), and no
timing — the chaos determinism gate relies on it.

Fault injection: the server consults its
:class:`~repro.experiments.faults.FaultPlan` at grant time.  In-process
actions ride the job payload into the worker as usual; *network*
actions (connection drop, heartbeat stall, torn frame, duplicate
result) are shipped alongside the grant for the worker to fire through
the real socket path.

Threading model: an acceptor thread spawns one handler thread per
connection; a sweeper thread expires leases; one lock guards all
campaign state.  All threads are daemonic — lifecycle is owned by
:meth:`start` / :meth:`wait` / :meth:`shutdown` / :meth:`close`.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from typing import Any

from repro.experiments.cache import ResultCache
from repro.experiments.faults import FaultPlan, classify_error
from repro.experiments.kinds import job_kind
from repro.experiments.runner import CampaignResult, SpecDriftError
from repro.experiments.spec import SweepSpec, campaign_id
from repro.experiments.store import CampaignJournal, ResultStore
from repro.obs.metrics import merge_metrics
from repro.service.leases import LeaseTable
from repro.service.protocol import (
    ProtocolError,
    recv_frame,
    send_frame,
)

__all__ = ["SweepServer"]


def _kind_transients(kind_name: str) -> tuple[str, ...]:
    try:
        return job_kind(kind_name).transient_errors
    except Exception:
        return ()


def _lease_failure_record(
    payload: dict[str, Any], job_id: str, worker: str, attempt: int
) -> dict[str, Any]:
    """Synthetic error record for a job whose holder went dark.

    Same shape as the inline supervisor's WorkerCrash records, so
    ``repro report --failures`` and the failure report treat a dead
    remote worker like a dead local one.
    """
    return {
        "job_id": job_id,
        "kind": payload.get("kind", "model"),
        "model": payload.get("model", "?"),
        "model_seed": payload.get("model_seed"),
        "image_seed": payload.get("image_seed"),
        "n_images": payload.get("n_images"),
        "config": payload.get("config", {}),
        "status": "error",
        "result": None,
        "error": (
            f"LeaseExpired: worker {worker!r} stopped heartbeating "
            f"and its lease lapsed (attempt {attempt})"
        ),
        "error_class": "lease_expired",
    }


class SweepServer:
    """Serve one campaign's jobs to socket-connected workers.

    Attributes:
        spec: the campaign grid being served.
        campaign_id: :func:`~repro.experiments.spec.campaign_id` of
            the spec — the resume token, verified against worker
            hellos that carry one (the cross-wire spec-drift guard).
        host / port: bound address after :meth:`start` (``port=0``
            picks an ephemeral port).
        lease_seconds / heartbeat_seconds: lease budget and the beat
            interval advertised to workers.
        max_retries: transient-failure re-queues per job (lease
            expiries included) before quarantine.
        result: the final :class:`CampaignResult` once finished.
    """

    def __init__(
        self,
        spec: SweepSpec,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache: ResultCache | None = None,
        store: ResultStore | None = None,
        journal: CampaignJournal | None = None,
        lease_seconds: float = 30.0,
        heartbeat_seconds: float | None = None,
        max_retries: int = 2,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.spec = spec
        self.name = spec.name
        self.campaign_id = campaign_id(spec)
        self.host = host
        self.port = port
        self.cache = cache
        self.store = store
        self.journal = journal
        self.max_retries = max_retries
        self.fault_plan = fault_plan
        self.leases = LeaseTable(lease_seconds, heartbeat_seconds)
        self.lease_seconds = self.leases.lease_seconds
        self.heartbeat_seconds = self.leases.heartbeat_seconds
        self.result: CampaignResult | None = None

        self._jobs = spec.expand()
        self._payloads = [job.to_dict() for job in self._jobs]
        self._index_by_job = {
            job.job_id: index for index, job in enumerate(self._jobs)
        }
        self._lock = threading.RLock()
        self._pending: deque[int] = deque()
        self._cached: dict[int, dict[str, Any]] = {}
        self._resumed: dict[int, dict[str, Any]] = {}
        self._fresh: dict[int, dict[str, Any]] = {}
        self._attempts: dict[str, int] = {}
        self._quarantined: list[str] = []
        self._workers_seen: set[str] = set()
        self._retries = 0
        self._reconnects = 0
        self._duplicates = 0
        self._protocol_errors = 0
        self._misses = 0
        self._draining = False
        self._finished = False
        self._done = threading.Event()
        self._started_at = 0.0
        self._corrupt_before = 0
        self._sock: socket.socket | None = None
        self._conns: list[socket.socket] = []

    # -- lifecycle -------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Triage cache/journal, bind, and start serving; returns addr.

        Raises :class:`SpecDriftError` when an existing journal's
        ``start`` entry records a different campaign than this spec
        derives — resuming would silently mix results otherwise.
        """
        self._started_at = time.perf_counter()
        self._corrupt_before = (
            self.cache.corrupt_dropped if self.cache else 0
        )
        journal_done: dict[str, dict[str, Any]] = {}
        if self.journal is not None:
            if self.journal.exists():
                self.journal.recover()
                entry = self.journal.start_entry() or {}
                journaled = entry.get("campaign_id")
                if journaled is not None and journaled != self.campaign_id:
                    raise SpecDriftError(
                        f"journal {self.journal.path} records campaign "
                        f"{journaled!r} ({entry.get('campaign')!r}), but "
                        f"this spec derives {self.campaign_id!r}; the "
                        f"grid, seed, or name has drifted since the "
                        f"journal was written — serve the original spec "
                        f"or start a fresh campaign"
                    )
                journal_done = self.journal.completed()
                self.journal.append({"event": "resume"})
            else:
                self.journal.start(
                    self.campaign_id,
                    self.name,
                    self.spec.to_dict(),
                    str(self.store.path) if self.store else None,
                )
        for index, job in enumerate(self._jobs):
            record = journal_done.get(job.job_id)
            if record is not None:
                self._resumed[index] = record
                continue
            record = self.cache.get_job(job) if self.cache else None
            if record is not None:
                self._cached[index] = record
            else:
                self._pending.append(index)
        self._misses = len(self._pending)

        self._sock = socket.create_server((self.host, self.port))
        self.host, self.port = self._sock.getsockname()[:2]
        threading.Thread(
            target=self._accept_loop, daemon=True, name="sweep-accept"
        ).start()
        threading.Thread(
            target=self._sweep_loop, daemon=True, name="sweep-leases"
        ).start()
        self._maybe_finish()  # a fully cached/resumed campaign is done
        return self.host, self.port

    def wait(self, timeout: float | None = None) -> CampaignResult | None:
        """Block until the campaign finishes; None on timeout."""
        if not self._done.wait(timeout):
            return None
        return self.result

    def shutdown(self) -> CampaignResult:
        """Graceful drain: stop granting, checkpoint, finish partial.

        The journal already holds every completed job (they are
        appended as they land), so the checkpoint written here makes
        ``--resume`` behave exactly as after a SIGINT'd inline sweep.
        In-flight leased jobs are counted as remaining — their late
        results, if any, arrive after the store is written and are
        simply discarded.
        """
        with self._lock:
            self._draining = True
            if not self._finished:
                self._finish(interrupted=True)
        return self.result  # type: ignore[return-value]

    def linger(self, timeout: float = 5.0) -> bool:
        """Wait for attached workers to pick up their drain replies.

        The connection handlers are daemon threads, so a server
        process that exits the instant the result lands would strand
        still-connected workers mid-claim — they would burn their
        reconnect budget against a dead address and misreport a
        completed campaign as a lost server.  Returns True when every
        connection closed within the timeout.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._conns:
                    return True
            time.sleep(0.05)
        return False

    def close(self) -> None:
        """Stop accepting and tear down every connection."""
        if self._sock is not None:
            # shutdown() before close(): the acceptor thread blocked
            # in accept() pins the open file description, so a bare
            # close() leaves the port listening (and serving!) until
            # that thread wakes.  shutdown wakes it immediately.
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    # -- socket plumbing -------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listening socket closed
            with self._lock:
                self._conns.append(conn)
            threading.Thread(
                target=self._serve_conn,
                args=(conn,),
                daemon=True,
                name="sweep-conn",
            ).start()

    def _serve_conn(self, conn: socket.socket) -> None:
        try:
            while True:
                message = recv_frame(conn)
                if message is None:
                    return
                reply, fatal = self._dispatch(message)
                send_frame(conn, reply)
                if fatal:
                    return
        except ProtocolError:
            with self._lock:
                self._protocol_errors += 1
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _sweep_loop(self) -> None:
        interval = min(1.0, max(0.05, self.lease_seconds / 4.0))
        while not self._done.wait(interval):
            self._reap_expired()

    def _reap_expired(self) -> None:
        for lease in self.leases.expire():
            with self._lock:
                index = self._index_by_job.get(lease.job_id)
                if index is None or index in self._fresh:
                    continue  # completed just before expiry
                if lease.attempt <= self.max_retries:
                    # Back of the queue: clean jobs drain first, the
                    # repeat offender re-runs when a worker frees up.
                    self._pending.append(index)
                    self._retries += 1
                else:
                    record = _lease_failure_record(
                        self._payloads[index],
                        lease.job_id,
                        lease.worker,
                        lease.attempt,
                    )
                    record["attempts"] = lease.attempt
                    record["quarantined"] = True
                    self._quarantined.append(lease.job_id)
                    self._fresh[index] = record
        self._maybe_finish()

    # -- message dispatch ------------------------------------------------

    def _dispatch(
        self, message: dict[str, Any]
    ) -> tuple[dict[str, Any], bool]:
        """Handle one frame; returns (reply, close_after_reply)."""
        kind = message.get("type")
        worker = str(message.get("worker", "?"))
        if kind == "hello":
            return self._on_hello(message, worker)
        if kind == "claim":
            return self._on_claim(worker), False
        if kind == "heartbeat":
            renewed = self.leases.renew(
                str(message.get("job_id", "")), worker
            )
            return {"type": "ack", "renewed": renewed}, False
        if kind == "result":
            return self._on_result(message, worker), False
        if kind == "status":
            return self._on_status(), False
        if kind == "goodbye":
            return {"type": "ack"}, True
        return (
            {"type": "error", "reason": f"unknown message type {kind!r}"},
            False,
        )

    def _on_hello(
        self, message: dict[str, Any], worker: str
    ) -> tuple[dict[str, Any], bool]:
        claimed_id = message.get("campaign_id")
        if claimed_id is not None and claimed_id != self.campaign_id:
            return (
                {
                    "type": "error",
                    "reason": (
                        f"campaign mismatch: this server serves "
                        f"{self.campaign_id!r} ({self.name!r}), you "
                        f"asked for {claimed_id!r} — the sweep spec "
                        f"has drifted from the served campaign"
                    ),
                },
                True,
            )
        with self._lock:
            if worker in self._workers_seen:
                self._reconnects += 1
            else:
                self._workers_seen.add(worker)
        return (
            {
                "type": "welcome",
                "campaign": self.name,
                "campaign_id": self.campaign_id,
                "n_jobs": len(self._jobs),
                "lease_seconds": self.lease_seconds,
                "heartbeat_seconds": self.heartbeat_seconds,
            },
            False,
        )

    def _on_claim(self, worker: str) -> dict[str, Any]:
        with self._lock:
            if self._finished or self._draining:
                result = self.result
                reply: dict[str, Any] = {
                    "type": "drain",
                    "reason": (
                        "complete"
                        if result is not None and not result.interrupted
                        else "draining"
                    ),
                }
                if result is not None:
                    reply["interrupted"] = result.interrupted
                    reply["records"] = result.records
                    reply["summary"] = result.summary()
                return reply
            if not self._pending:
                return {
                    "type": "wait",
                    "seconds": min(
                        1.0, max(0.05, self.lease_seconds / 2.0)
                    ),
                }
            index = self._pending.popleft()
            job = self._jobs[index]
            attempt = self._attempts.get(job.job_id, 0) + 1
            self._attempts[job.job_id] = attempt
        lease = self.leases.grant(job.job_id, worker, attempt)
        payload = dict(self._payloads[index])
        network_faults: list[dict[str, Any]] = []
        if self.fault_plan is not None:
            actions = self.fault_plan.actions_for(
                job.job_id, index, attempt
            )
            in_process = [a for a in actions if not a.is_network]
            network_faults = [
                a.to_dict() for a in actions if a.is_network
            ]
            if in_process:
                payload["_fault"] = [a.to_dict() for a in in_process]
        return {
            "type": "job",
            "index": index,
            "job_id": job.job_id,
            "attempt": attempt,
            "payload": payload,
            "network_faults": network_faults,
            "lease_seconds": self.lease_seconds,
            "deadline_seconds": lease.deadline - lease.granted_at,
        }

    def _on_result(
        self, message: dict[str, Any], worker: str
    ) -> dict[str, Any]:
        job_id = str(message.get("job_id", ""))
        record = message.get("record")
        with self._lock:
            index = self._index_by_job.get(job_id)
            if index is None or not isinstance(record, dict):
                return {
                    "type": "ack",
                    "accepted": False,
                    "duplicate": False,
                    "reason": "unknown job or malformed record",
                }
            if (
                index in self._fresh
                or index in self._cached
                or index in self._resumed
            ):
                # Late result from a presumed-dead worker for a job
                # someone else already finished: idempotent discard.
                self._duplicates += 1
                if self.leases.holder(job_id) == worker:
                    self.leases.release(job_id)
                return {
                    "type": "ack",
                    "accepted": True,
                    "duplicate": True,
                }
            # First completion wins, even if the lease expired and the
            # job is pending (or re-leased) elsewhere: execution is
            # deterministic, so any re-run would produce this record.
            self.leases.release(job_id)
            try:
                self._pending.remove(index)
            except ValueError:
                pass
            if record.get("status") == "ok":
                if self.journal is not None:
                    self.journal.record_job(
                        {
                            **record,
                            "cached": False,
                            "campaign": self.name,
                        }
                    )
                if self.cache is not None:
                    self.cache.put_job(self._jobs[index], record)
                self._fresh[index] = record
            else:
                attempts = self._attempts.get(job_id, 1)
                error_class = record.get("error_class") or classify_error(
                    record.get("error"),
                    _kind_transients(record.get("kind", "model")),
                )
                if (
                    error_class != "permanent"
                    and attempts <= self.max_retries
                ):
                    self._retries += 1
                    self._pending.append(index)
                else:
                    final = dict(record)
                    final["error_class"] = error_class
                    final["attempts"] = attempts
                    final["quarantined"] = error_class != "permanent"
                    if final["quarantined"]:
                        self._quarantined.append(job_id)
                    self._fresh[index] = final
        self._maybe_finish()
        return {"type": "ack", "accepted": True, "duplicate": False}

    def _on_status(self) -> dict[str, Any]:
        with self._lock:
            return {
                "type": "status",
                "campaign": self.name,
                "campaign_id": self.campaign_id,
                "total": len(self._jobs),
                "done": len(self._fresh)
                + len(self._cached)
                + len(self._resumed),
                "pending": len(self._pending),
                "leased": len(self.leases),
                "workers": sorted(self._workers_seen),
                "finished": self._finished,
            }

    # -- completion ------------------------------------------------------

    def _maybe_finish(self) -> None:
        with self._lock:
            if self._finished:
                return
            settled = (
                len(self._fresh) + len(self._cached) + len(self._resumed)
            )
            if settled == len(self._jobs):
                self._finish(interrupted=False)

    def _finish(self, interrupted: bool) -> None:
        """Assemble the CampaignResult and persist; called under lock."""
        self._finished = True
        out = CampaignResult(
            name=self.name,
            hits=len(self._cached),
            misses=self._misses,
            workers=max(1, len(self._workers_seen)),
            resumed=len(self._resumed),
            retries=self._retries,
            interrupted=interrupted,
            quarantined=list(self._quarantined),
        )
        by_index: dict[int, dict[str, Any]] = dict(self._cached)
        by_index.update(self._fresh)
        by_index.update(self._resumed)
        for index in range(len(self._jobs)):
            if index not in by_index:
                out.remaining.append(self._jobs[index].job_id)
                continue
            record = dict(by_index[index])
            record["cached"] = index in self._cached
            record["campaign"] = self.name
            if index in self._resumed:
                record["resumed"] = True
            if record.get("status") == "error" and index in self._fresh:
                out.errors += 1
                out.failures.append(
                    {
                        "job_id": record.get("job_id"),
                        "kind": record.get("kind", "model"),
                        "label": self._jobs[index].label(),
                        "error": record.get("error"),
                        "error_class": record.get(
                            "error_class", "permanent"
                        ),
                        "attempts": record.get("attempts", 1),
                        "quarantined": record.get("quarantined", False),
                    }
                )
            out.records.append(record)
        out.elapsed_seconds = time.perf_counter() - self._started_at
        out.metrics = self._aggregate_metrics(out)
        if self.store is not None:
            self.store.extend(out.records)
        if self.journal is not None:
            event = "checkpoint" if interrupted else "end"
            self.journal.append(
                {"event": event, "report": out.failure_report()}
            )
        self.result = out
        self._done.set()

    def _aggregate_metrics(self, out: CampaignResult) -> dict[str, Any]:
        """Record metrics + runner-compatible counters + service.*."""
        metrics: dict[str, Any] = {}
        for record in out.records:
            result = record.get("result") or {}
            snapshot = result.get("metrics")
            if snapshot:
                merge_metrics(metrics, snapshot)
        corrupt = (
            self.cache.corrupt_dropped - self._corrupt_before
            if self.cache
            else 0
        )
        merge_metrics(
            metrics,
            {
                "cache.hits": out.hits,
                "cache.misses": out.misses,
                "cache.errors": out.errors,
                "cache.corrupt_entries": corrupt,
                "runner.jobs": out.n_jobs,
                "runner.workers.peak": len(self._workers_seen),
                "runner.resumed": out.resumed,
                "runner.retries": out.retries,
                "runner.quarantined": len(out.quarantined),
                **self.leases.counters(),
                "service.heartbeats": self.leases.renewed,
                "service.reconnects": self._reconnects,
                "service.results.duplicate": self._duplicates,
                "service.protocol.errors": self._protocol_errors,
                "service.workers.peak": len(self._workers_seen),
            },
        )
        return metrics
