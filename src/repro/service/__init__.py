"""repro.service — the distributed sweep job service.

Turns the campaign engine into a long-running, shareable system: one
:class:`SweepServer` process owns a :class:`~repro.experiments.spec.
SweepSpec`-derived job queue plus the crash-safe campaign journal, and
any number of :class:`SweepWorker` processes — same host or remote —
claim jobs over a small length-prefixed socket protocol
(:mod:`repro.service.protocol`), execute them through the ordinary
job-kind registry, and stream results back.

Robustness model
----------------

* **Time-bounded leases** (:mod:`repro.service.leases`) — a claimed
  job must be heartbeated before its lease deadline; a worker that
  dies, hangs, or drops off the network loses the lease and the job
  returns to the queue for another worker ("work stealing").
* **At-least-once, effectively-once** — re-executed jobs are
  deterministic, the content-addressed
  :class:`~repro.experiments.cache.ResultCache` dedups across
  processes (with a cross-process atomic claim under a shared cache
  root), and the server reconciles late results from presumed-dead
  workers idempotently: the first completion wins, duplicates are
  acknowledged and discarded.
* **Crash-safe progress** — every completed job is journaled the
  moment it lands, so a killed server resumes with ``repro serve
  --resume <campaign-id>`` exactly like ``repro sweep --resume``;
  SIGINT/SIGTERM drain gracefully and checkpoint the journal.
* **Dead-server detection** — workers that lose the server retry with
  backoff, then exit cleanly with a resume hint instead of spinning.
* **Chaos-tested** — the :class:`~repro.experiments.faults.FaultPlan`
  machinery grows network faults (connection drop, heartbeat stall,
  half-written frame, delayed duplicate result) that fire through the
  real socket path; the determinism gate pins a chaos-ridden served
  campaign's rows byte-identical to a fault-free inline run.

CLI: ``repro serve`` starts a server, ``repro work`` attaches a
worker, ``repro sweep --server HOST:PORT`` runs a sweep as a
worker-plus-reporter against a running server.
"""

from repro.service.leases import Lease, LeaseTable
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    FrameChannel,
    ProtocolError,
    connect,
    encode_frame,
    recv_frame,
    send_frame,
    torn_frame_bytes,
)
from repro.service.server import SweepServer
from repro.service.worker import ServerLostError, SweepWorker, run_worker

__all__ = [
    "FrameChannel",
    "Lease",
    "LeaseTable",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ServerLostError",
    "SweepServer",
    "SweepWorker",
    "connect",
    "encode_frame",
    "recv_frame",
    "run_worker",
    "send_frame",
    "torn_frame_bytes",
]
