"""Time-bounded job leases for the sweep server.

A lease is the server's claim-side contract: a worker that claims a
job must complete it — or at least heartbeat — before the lease
deadline, or the job returns to the queue for someone else.  Leases
(not connections) own job liveness: a dropped socket changes nothing
until the deadline passes, so a network blip doesn't forfeit work, and
a worker that silently dies can't strand a job forever.

Every mutation is counted (grants, renewals, expiries, steals, missed
heartbeats) so the server's ``service.*`` metrics family reads
straight off the table.  The clock is injectable for deterministic
tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Callable

__all__ = ["Lease", "LeaseTable"]


@dataclass(frozen=True)
class Lease:
    """One worker's time-bounded hold on one job.

    Attributes:
        job_id: the leased job.
        worker: holder's worker name.
        attempt: 1-based dispatch attempt this lease covers.
        granted_at: clock reading at grant time.
        last_heartbeat: clock reading of the latest renewal (grant
            counts as the first heartbeat).
        deadline: clock reading past which the lease is expired.
    """

    job_id: str
    worker: str
    attempt: int
    granted_at: float
    last_heartbeat: float
    deadline: float


class LeaseTable:
    """Grant / renew / expire job leases, with full accounting.

    Attributes:
        lease_seconds: grant-to-deadline budget; every heartbeat
            pushes the deadline out by this much again.
        heartbeat_seconds: the interval workers are told to beat at
            (default a third of the lease, so two beats can be lost
            before the lease lapses).
        granted / renewed / expired / stolen / heartbeats_missed:
            lifetime counters.  A *steal* is a grant of a job whose
            previous lease expired under a different worker — the
            dead-worker-recovery path.  A *missed heartbeat* is an
            expiry whose holder had been silent for at least two
            heartbeat intervals (vs. one that simply ran past its
            deadline while still beating).
    """

    def __init__(
        self,
        lease_seconds: float,
        heartbeat_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        self.lease_seconds = lease_seconds
        self.heartbeat_seconds = (
            lease_seconds / 3.0
            if heartbeat_seconds is None
            else heartbeat_seconds
        )
        if self.heartbeat_seconds <= 0:
            raise ValueError("heartbeat_seconds must be positive")
        self._clock = clock
        self._lock = threading.Lock()
        self._leases: dict[str, Lease] = {}
        # job_id -> worker whose lease on it last expired; consulted
        # at re-grant time to count steals.
        self._expired_holders: dict[str, str] = {}
        self.granted = 0
        self.renewed = 0
        self.expired = 0
        self.stolen = 0
        self.heartbeats_missed = 0

    def __len__(self) -> int:
        return len(self._leases)

    def grant(self, job_id: str, worker: str, attempt: int) -> Lease:
        """Lease ``job_id`` to ``worker`` until the deadline."""
        now = self._clock()
        with self._lock:
            lease = Lease(
                job_id=job_id,
                worker=worker,
                attempt=attempt,
                granted_at=now,
                last_heartbeat=now,
                deadline=now + self.lease_seconds,
            )
            self._leases[job_id] = lease
            self.granted += 1
            previous = self._expired_holders.pop(job_id, None)
            if previous is not None and previous != worker:
                self.stolen += 1
            return lease

    def renew(self, job_id: str, worker: str) -> bool:
        """Heartbeat: push the deadline out; False if not the holder.

        A renewal from a non-holder (the lease expired and moved, or
        was never granted) is refused, telling the worker its lease is
        gone — it may keep computing and submit late, which the server
        reconciles idempotently.
        """
        now = self._clock()
        with self._lock:
            lease = self._leases.get(job_id)
            if lease is None or lease.worker != worker:
                return False
            self._leases[job_id] = replace(
                lease,
                last_heartbeat=now,
                deadline=now + self.lease_seconds,
            )
            self.renewed += 1
            return True

    def release(self, job_id: str) -> Lease | None:
        """Drop the lease (job completed); returns it, or None."""
        with self._lock:
            return self._leases.pop(job_id, None)

    def holder(self, job_id: str) -> str | None:
        with self._lock:
            lease = self._leases.get(job_id)
            return None if lease is None else lease.worker

    def expire(self, now: float | None = None) -> list[Lease]:
        """Pop and return every lease past its deadline."""
        if now is None:
            now = self._clock()
        out: list[Lease] = []
        with self._lock:
            for job_id, lease in list(self._leases.items()):
                if lease.deadline > now:
                    continue
                del self._leases[job_id]
                self._expired_holders[job_id] = lease.worker
                self.expired += 1
                if (
                    now - lease.last_heartbeat
                    >= 2.0 * self.heartbeat_seconds
                ):
                    self.heartbeats_missed += 1
                out.append(lease)
        return out

    def next_deadline(self) -> float | None:
        """Earliest outstanding deadline, or None when idle."""
        with self._lock:
            if not self._leases:
                return None
            return min(l.deadline for l in self._leases.values())

    def counters(self) -> dict[str, int]:
        """The ``service.*`` metric names this table owns."""
        return {
            "service.leases.granted": self.granted,
            "service.leases.renewed": self.renewed,
            "service.leases.expired": self.expired,
            "service.jobs.stolen": self.stolen,
            "service.heartbeats.missed": self.heartbeats_missed,
        }
