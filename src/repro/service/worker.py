"""The sweep worker: claim, heartbeat, execute, submit, repeat.

A :class:`SweepWorker` attaches to a :class:`~repro.service.server.
SweepServer`, claims jobs under the server's leases, executes them
in-process through the ordinary :func:`~repro.experiments.runner.
execute_job` path, and streams results back.  A daemon heartbeat
thread renews the lease of whatever job is in flight, sharing the
single connection safely (the :class:`~repro.service.protocol.
FrameChannel` serialises request/response pairs).

Robustness duties on this side of the wire:

* **Reconnect with backoff** — any connection failure (drop, torn
  frame, server restart) triggers bounded reconnect attempts, each
  re-running the hello handshake; when they are exhausted the worker
  raises :class:`ServerLostError` and :meth:`SweepWorker.run` returns
  a ``server_lost`` summary so the CLI can exit cleanly with a resume
  hint instead of spinning against a dead address.
* **Shared verified cache** — with a cache under a shared root, the
  worker serves repeat keys from disk (verify-on-read) and takes a
  cross-process atomic claim before computing, so two workers landing
  on the same key at once don't duplicate the simulation; a worker
  that dies holding a claim is stolen from after the stale window.
* **Network fault injection** — the server ships
  :data:`~repro.experiments.faults.NETWORK_FAULT_KINDS` actions with
  a job grant and the worker fires them through the real socket:
  dropping the connection without submitting (lease expiry re-queues),
  stalling heartbeats while the job keeps computing (the late-result
  path), writing a half frame then resubmitting properly, and
  submitting a duplicate result.

In-process faults ride the payload as usual — including "kill", which
``os._exit``\\ s this whole worker process; dead-worker recovery is the
server's lease table, not anything here.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.experiments.cache import ResultCache
from repro.experiments.faults import FaultAction
from repro.experiments.runner import execute_job
from repro.experiments.spec import JobSpec
from repro.service.protocol import (
    FrameChannel,
    ProtocolError,
    connect,
    torn_frame_bytes,
)

import threading

__all__ = ["ServerLostError", "SweepWorker", "run_worker"]


class ServerLostError(ConnectionError):
    """The server is unreachable after exhausting reconnect attempts."""


class SweepWorker:
    """One worker process' client loop against a sweep server.

    Attributes:
        host / port: server address.
        name: worker identity sent with every message (default
            ``worker-<pid>``); the server counts reconnects and
            attributes leases by it.
        cache: optional shared :class:`ResultCache` — enables the
            cross-worker dedup path.
        campaign_id: expected campaign; sent in the hello so a worker
            pointed at the wrong server is rejected instead of
            computing for a drifted spec.  None skips the check.
        report: request the final records with the drain reply (the
            ``repro sweep --server`` reporter mode).
        reconnect_attempts / reconnect_backoff: dead-server detection
            budget — attempts are spaced ``backoff * 2**n`` seconds
            apart, capped at 5s.
        request_timeout: per-request socket timeout in seconds.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: str | None = None,
        cache: ResultCache | None = None,
        campaign_id: str | None = None,
        report: bool = False,
        reconnect_attempts: int = 10,
        reconnect_backoff: float = 0.25,
        request_timeout: float = 60.0,
        claim_poll_seconds: float = 5.0,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name or f"worker-{os.getpid()}"
        self.cache = cache
        self.campaign_id = campaign_id
        self.report = report
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_backoff = reconnect_backoff
        self.request_timeout = request_timeout
        self.claim_poll_seconds = claim_poll_seconds
        self.heartbeat_seconds: float | None = None
        self.jobs_done = 0
        self.jobs_failed = 0
        self.cache_hits = 0
        self.reconnects = 0
        self.drops = 0
        self._channel: FrameChannel | None = None
        self._stop = threading.Event()
        self._current_job: str | None = None
        self._stall_until = 0.0
        self._rejected: str | None = None

    # -- lifecycle -------------------------------------------------------

    def run(self) -> dict[str, Any]:
        """Work until the server drains (or is lost); returns a summary.

        Never raises for server death — the summary's ``server_lost``
        flag (plus the campaign id learned in the handshake, the
        resume hint) is the contract with the CLI.
        """
        summary: dict[str, Any] = {
            "worker": self.name,
            "campaign_id": self.campaign_id,
            "drained": False,
            "server_lost": False,
            "rejected": None,
        }
        beater = threading.Thread(
            target=self._heartbeat_loop, daemon=True, name="heartbeat"
        )
        try:
            try:
                self._connect_and_hello()
            except ServerLostError:
                raise
            except OSError:
                # The first dial failed (server not up yet, or already
                # gone): spend the reconnect budget before giving up.
                self._reconnect()
            summary["campaign_id"] = self.campaign_id
            beater.start()
            drain = self._work_loop()
            summary["drained"] = True
            summary["reason"] = drain.get("reason")
            summary["interrupted"] = drain.get("interrupted", False)
            if self.report:
                summary["records"] = drain.get("records")
                summary["summary"] = drain.get("summary")
        except ServerLostError as exc:
            summary["server_lost"] = True
            summary["error"] = str(exc)
            summary["campaign_id"] = self.campaign_id
        finally:
            self._stop.set()
            self._close()
        if self._rejected is not None:
            summary["rejected"] = self._rejected
        summary["jobs_done"] = self.jobs_done
        summary["jobs_failed"] = self.jobs_failed
        summary["cache_hits"] = self.cache_hits
        summary["reconnects"] = self.reconnects
        summary["drops"] = self.drops
        return summary

    def _work_loop(self) -> dict[str, Any]:
        while True:
            reply = self._request(
                {
                    "type": "claim",
                    "worker": self.name,
                    "report": self.report,
                }
            )
            kind = reply.get("type")
            if kind == "job":
                self._run_job(reply)
            elif kind == "wait":
                time.sleep(float(reply.get("seconds", 0.2)))
            elif kind == "drain":
                self._farewell()
                return reply
            else:
                raise ServerLostError(
                    f"server sent unexpected reply {kind!r} to a claim"
                )

    def _farewell(self) -> None:
        channel = self._channel
        if channel is None:
            return
        try:
            channel.request(
                {"type": "goodbye", "worker": self.name},
                timeout=self.request_timeout,
            )
        except OSError:
            pass

    def _close(self) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None

    # -- connection management -------------------------------------------

    def _connect_and_hello(self) -> None:
        """Dial and handshake; raises ServerLostError on rejection.

        A hello rejection (campaign mismatch) is deliberately final:
        reconnecting to the same wrong server cannot help.
        """
        self._channel = connect(self.host, self.port, self.request_timeout)
        hello: dict[str, Any] = {"type": "hello", "worker": self.name}
        if self.campaign_id is not None:
            hello["campaign_id"] = self.campaign_id
        welcome = self._channel.request(hello, timeout=self.request_timeout)
        if welcome.get("type") == "error":
            self._rejected = str(welcome.get("reason"))
            raise ServerLostError(f"server rejected us: {self._rejected}")
        self.campaign_id = welcome.get("campaign_id", self.campaign_id)
        self.heartbeat_seconds = welcome.get("heartbeat_seconds")

    def _reconnect(self) -> None:
        """Bounded redial-with-backoff; ServerLostError when exhausted."""
        self._close()
        for attempt in range(self.reconnect_attempts):
            time.sleep(min(5.0, self.reconnect_backoff * 2**attempt))
            try:
                self._connect_and_hello()
            except ServerLostError:
                raise  # rejected hello: retrying cannot change the answer
            except OSError:
                continue
            self.reconnects += 1
            return
        raise ServerLostError(
            f"server {self.host}:{self.port} unreachable after "
            f"{self.reconnect_attempts} reconnect attempts"
        )

    def _request(self, message: dict[str, Any]) -> dict[str, Any]:
        """One request/response, reconnecting underneath on failure.

        The retried request is always safe to repeat: claims are
        idempotent grants, heartbeats are renewals, and results are
        reconciled first-completion-wins by the server.
        """
        while True:
            channel = self._channel
            try:
                if channel is None:
                    raise ConnectionError("not connected")
                return channel.request(
                    message, timeout=self.request_timeout
                )
            except OSError:  # ProtocolError included
                self._reconnect()

    # -- heartbeats ------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while True:
            interval = self.heartbeat_seconds or 1.0
            if self._stop.wait(interval):
                return
            job_id = self._current_job
            if job_id is None:
                continue
            if time.monotonic() < self._stall_until:
                continue  # injected heartbeat stall: stay silent
            channel = self._channel
            if channel is None:
                continue
            try:
                channel.request(
                    {
                        "type": "heartbeat",
                        "worker": self.name,
                        "job_id": job_id,
                    },
                    timeout=self.request_timeout,
                )
            except Exception:
                # The main loop owns reconnects; a missed beat at
                # worst costs the lease, which the server re-grants.
                continue

    # -- job execution ---------------------------------------------------

    def _run_job(self, grant: dict[str, Any]) -> None:
        job_id = str(grant.get("job_id"))
        attempt = int(grant.get("attempt", 1))
        payload = grant.get("payload") or {}
        faults = [
            FaultAction.from_dict(dict(d))
            for d in grant.get("network_faults") or ()
        ]
        stall = next(
            (a for a in faults if a.kind == "heartbeat_stall"), None
        )
        if stall is not None:
            self._stall_until = time.monotonic() + stall.hang_seconds
        self._current_job = job_id
        try:
            record = self._execute(payload)
        finally:
            self._current_job = None
        if record.get("status") == "ok":
            self.jobs_done += 1
        else:
            self.jobs_failed += 1
        message = {
            "type": "result",
            "worker": self.name,
            "job_id": job_id,
            "attempt": attempt,
            "record": record,
        }
        if any(a.kind == "drop_connection" for a in faults):
            # Die on the wire: close without submitting.  The computed
            # record is discarded; the lease expires and the job is
            # re-queued for someone else — work lost, correctness kept.
            self.drops += 1
            self._close()
            self._reconnect()
            return
        if any(a.kind == "torn_frame" for a in faults):
            # A sender dying mid-frame: write half the result frame,
            # sever the connection, then submit properly — exercising
            # the server's torn-frame rejection *and* its idempotent
            # late/duplicate reconciliation in one go.
            channel = self._channel
            try:
                if channel is not None:
                    channel.send_raw(torn_frame_bytes(message))
            except OSError:
                pass
            self._close()
            self._reconnect()
        ack = self._request(message)
        if any(a.kind == "duplicate_result" for a in faults):
            # A presumed-lost result arriving twice; the server must
            # acknowledge the second copy as a duplicate.
            self._request(message)
        if not ack.get("accepted", False):
            self.jobs_failed += 1

    def _execute(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Run one payload, deduping through the shared cache if any."""
        if self.cache is None:
            return execute_job(payload)
        clean = dict(payload)
        clean.pop("_fault", None)
        try:
            job = JobSpec.from_dict(clean)
        except Exception:
            return execute_job(payload)
        key = self.cache.key_for(job)
        record = self.cache.get(key)
        if record is not None:
            self.cache_hits += 1
            return record
        claimed = self.cache.claim(key)
        if not claimed:
            # Another worker is computing this exact key right now.
            # Poll briefly for its entry; past the budget, compute
            # anyway — duplicated work is wasted, never wrong.
            deadline = time.monotonic() + self.claim_poll_seconds
            while time.monotonic() < deadline:
                time.sleep(0.05)
                record = self.cache.get(key)
                if record is not None:
                    self.cache_hits += 1
                    return record
                if self.cache.claim(key):
                    claimed = True
                    break
        try:
            record = execute_job(payload)
            if record.get("status") == "ok":
                self.cache.put(key, record)
            return record
        finally:
            if claimed:
                self.cache.release_claim(key)


def run_worker(
    host: str,
    port: int,
    *,
    name: str | None = None,
    cache_dir: str | None = None,
    campaign_id: str | None = None,
    report: bool = False,
    reconnect_attempts: int = 10,
    reconnect_backoff: float = 0.25,
    request_timeout: float = 60.0,
) -> dict[str, Any]:
    """Module-level worker entry point (CLI and multiprocessing target).

    Takes only picklable arguments; builds the cache from its root so
    a spawned process can run it directly.
    """
    cache = ResultCache(cache_dir) if cache_dir else None
    worker = SweepWorker(
        host,
        port,
        name=name,
        cache=cache,
        campaign_id=campaign_id,
        report=report,
        reconnect_attempts=reconnect_attempts,
        reconnect_backoff=reconnect_backoff,
        request_timeout=request_timeout,
    )
    return worker.run()
