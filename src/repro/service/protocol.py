"""Length-prefixed JSON frame protocol for the sweep job service.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding a single object.  Both sides
exchange whole frames only, so a receiver can always tell a cleanly
closed connection (EOF on a frame boundary -> ``None``) from a torn
one (EOF mid-header or mid-body -> :class:`ProtocolError`).  The
distinction is load-bearing: the server treats a torn frame as a
protocol error and drops the connection — the job's lease, not the
connection, decides when the work is re-queued — while a clean close
is just a worker going away.

:class:`ProtocolError` subclasses :class:`ConnectionError` so the
existing transient-error triage (:func:`repro.experiments.faults.
classify_error`) and every ``except OSError`` net treat torn frames
like any other network failure.

:func:`torn_frame_bytes` is the chaos-test counterpart: the bytes of a
deliberately half-written frame, driven through the real socket path
by the ``torn_frame`` network fault.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameChannel",
    "ProtocolError",
    "connect",
    "encode_frame",
    "recv_frame",
    "send_frame",
    "torn_frame_bytes",
]

_HEADER = struct.Struct(">I")

#: Upper bound on one frame's body.  Campaign records are small (a few
#: KiB); the cap exists so a corrupt or hostile header can't make the
#: receiver allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ConnectionError):
    """A malformed or torn frame on the service socket."""


def encode_frame(message: dict[str, Any]) -> bytes:
    """Serialize one message into header + JSON body bytes."""
    if not isinstance(message, dict):
        raise ProtocolError(
            f"messages must be dicts, got {type(message).__name__}"
        )
    body = json.dumps(message, sort_keys=True).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return _HEADER.pack(len(body)) + body


def send_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    """Send one whole frame (``sendall``, so no partial writes)."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on EOF before the first byte.

    EOF *after* the first byte means the peer died mid-frame — a torn
    frame — and raises :class:`ProtocolError`.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame "
                f"({n - remaining} of {n} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Receive one message; None on a clean close at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header claims {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ProtocolError("connection closed between header and body")
    try:
        message = json.loads(body)
    except ValueError as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got "
            f"{type(message).__name__}"
        )
    return message


def torn_frame_bytes(
    message: dict[str, Any], fraction: float = 0.5
) -> bytes:
    """Header plus only part of the body — a half-written frame.

    Writing these bytes and closing the socket reproduces a sender
    dying mid-``sendall``; the receiver must fail with
    :class:`ProtocolError`, never block forever or parse garbage.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    frame = encode_frame(message)
    body_len = len(frame) - _HEADER.size
    keep = _HEADER.size + max(0, int(body_len * fraction))
    # Always truncate at least one byte so the frame really is torn.
    return frame[: min(keep, len(frame) - 1)]


class FrameChannel:
    """A request/response client channel over one socket.

    ``request`` holds an internal lock across the send *and* the
    matching receive, so multiple threads (a worker's main loop and its
    heartbeat thread) can share one connection without interleaving
    replies.  The server side never needs this: it only ever replies
    to the frame it just read.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._lock = threading.Lock()

    def request(
        self,
        message: dict[str, Any],
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Send ``message`` and return the peer's reply frame.

        A clean close while awaiting the reply raises
        :class:`ProtocolError` — from a client's point of view a server
        that hangs up mid-exchange is gone, not politely done.
        """
        with self._lock:
            self.sock.settimeout(timeout)
            send_frame(self.sock, message)
            reply = recv_frame(self.sock)
        if reply is None:
            raise ProtocolError(
                "connection closed while awaiting a reply"
            )
        return reply

    def send_raw(self, data: bytes) -> None:
        """Write raw bytes (fault injection: torn frames)."""
        with self._lock:
            self.sock.sendall(data)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


def connect(
    host: str, port: int, timeout: float = 5.0
) -> FrameChannel:
    """Open a :class:`FrameChannel` to a server."""
    return FrameChannel(socket.create_connection((host, port), timeout))
