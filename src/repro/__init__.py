"""repro — reproduction of "Bit Transition Reduction by Data Transmission
Ordering in NoC-based DNN Accelerator" (Chen, Li, Zhu, Lu; SOCC 2025).

Subpackages:

* :mod:`repro.bits` — popcount, BT counting, wire formats, packing.
* :mod:`repro.analysis` — the Eq. (1)-(4) expectation model and the
  per-bit-position statistics of Fig. 10/11.
* :mod:`repro.ordering` — the contribution: '1'-bit count-based
  ordering (baseline / affiliated / separated) with optimality proofs.
* :mod:`repro.dnn` — numpy mini DNN framework, LeNet / DarkNet-like
  models, synthetic datasets, SGD training, fixed-8 quantisation.
* :mod:`repro.noc` — cycle-accurate 2-D mesh wormhole NoC with VCs and
  per-link BT recording (Fig. 8).
* :mod:`repro.accelerator` — the NOC-DNA: neuron tasks, half-half
  flitisation (Fig. 2), MC-side ordering units, full-DNN runs.
* :mod:`repro.hardware` — calibrated Table II / link-power models.
* :mod:`repro.workloads` — weight streams and the no-NoC experiments.
"""

__version__ = "1.0.0"

from repro.accelerator import AcceleratorConfig, run_model_on_noc
from repro.noc import Network, NoCConfig
from repro.ordering import OrderingMethod

__all__ = [
    "__version__",
    "AcceleratorConfig",
    "run_model_on_noc",
    "Network",
    "NoCConfig",
    "OrderingMethod",
]
