"""Numpy-backed immutable word sequences behind a tuple-facing API.

:class:`~repro.workloads.traces.TrafficTrace` historically stored each
link's wire images (and cycles / VCs / packet ids) as tuples of Python
ints, so every offline scoring pass — BT recomputation, heat
bucketing, reordering, slicing — paid an ``np.fromiter`` conversion
per call.  :class:`WordArray` keeps the values in a single numpy array
(uint64 for wire images, int64 for timing metadata) while looking and
comparing exactly like the tuple it replaced: indexing yields Python
ints, iteration yields Python ints, and ``==`` against tuples, lists
or other WordArrays is element-wise.

Wire images are allowed to exceed 64 bits (``include_header_bits``
folds a side-band header above the payload, and synthetic traces use
arbitrary link widths), so construction degrades to an
arbitrary-precision tuple backing whenever any value overflows the
storage dtype; :attr:`WordArray.array` is ``None`` on that path and
array-native consumers fall back to their scalar loops.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any, Iterator

import numpy as np

__all__ = ["WordArray", "as_int64_array"]


class WordArray(Sequence):
    """Immutable integer sequence backed by a numpy array when possible.

    Args:
        values: any sized iterable of ints (or a numpy integer array,
            adopted without a copy when the dtype already matches).
        dtype: storage dtype to attempt (default uint64 — wire
            images); pass ``np.int64`` for signed metadata such as
            packet ids, where ``-1`` marks an unknown owner.

    Values outside the dtype's range switch the whole sequence to an
    arbitrary-precision tuple backing (``array is None``) — the
    >64-bit-link fallback.
    """

    __slots__ = ("_array", "_tuple", "_dtype")

    def __init__(
        self, values: Any, dtype: np.dtype | type = np.uint64
    ) -> None:
        self._dtype = np.dtype(dtype)
        self._tuple: tuple[int, ...] | None = None
        if isinstance(values, WordArray):
            # Re-wrapping is free and idempotent (dataclasses.replace
            # re-runs __post_init__ on already-normalised fields).
            self._array = values._array
            self._tuple = values._tuple
            if values._array is not None:
                self._dtype = values._array.dtype
            return
        if isinstance(values, np.ndarray):
            if values.ndim != 1:
                raise ValueError(
                    f"expected a 1-D word array, got shape {values.shape}"
                )
            if values.dtype.kind not in "iu":
                raise ValueError(
                    f"expected an integer word array, got {values.dtype}"
                )
            self._array = np.ascontiguousarray(
                values.astype(self._dtype, copy=False)
            )
            return
        if not hasattr(values, "__len__"):
            values = tuple(values)
        try:
            self._array = np.fromiter(
                values, dtype=self._dtype, count=len(values)
            )
        except (OverflowError, ValueError, TypeError):
            # Arbitrary-precision fallback: at least one value does
            # not fit the storage dtype (e.g. a >64-bit wire image).
            self._array = None
            self._tuple = tuple(int(v) for v in values)

    # -- backing access ---------------------------------------------------

    @property
    def array(self) -> np.ndarray | None:
        """The numpy backing, or ``None`` on the tuple fallback path."""
        return self._array

    def to_tuple(self) -> tuple[int, ...]:
        """The values as a tuple of Python ints."""
        if self._tuple is not None:
            return self._tuple
        return tuple(self._array.tolist())

    def take(self, indices: Any) -> "WordArray":
        """Select ``indices`` (array, list, or mask indices) in order."""
        if self._array is not None:
            return WordArray(self._array[indices], self._dtype)
        picked = tuple(self._tuple[int(i)] for i in indices)
        return WordArray(picked, self._dtype)

    # -- sequence protocol ------------------------------------------------

    def __len__(self) -> int:
        if self._array is not None:
            return int(self._array.shape[0])
        return len(self._tuple)

    def __getitem__(self, index: Any) -> Any:
        if isinstance(index, slice):
            if self._array is not None:
                return WordArray(self._array[index], self._dtype)
            return WordArray(self._tuple[index], self._dtype)
        if self._array is not None:
            return int(self._array[index])
        return self._tuple[index]

    def __iter__(self) -> Iterator[int]:
        if self._array is not None:
            return iter(self._array.tolist())
        return iter(self._tuple)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, WordArray):
            if self._array is not None and other._array is not None:
                return self._array.shape == other._array.shape and bool(
                    np.array_equal(self._array, other._array)
                )
            return self.to_tuple() == other.to_tuple()
        if isinstance(other, (tuple, list)):
            return self.to_tuple() == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.to_tuple())

    def __repr__(self) -> str:
        values = self.to_tuple()
        if len(values) > 8:
            head = ", ".join(str(v) for v in values[:8])
            return f"WordArray(({head}, ... {len(values)} values))"
        return f"WordArray({values!r})"


def as_int64_array(seq: Any) -> np.ndarray:
    """Int64 numpy view of any int sequence, array-backed when possible.

    The zero-copy bridge for analytics consumers: a
    :class:`WordArray`'s backing (cycles, VCs, packet ids are stored
    int64 already) is returned directly; plain tuples and fallback
    sequences pay one conversion.
    """
    arr = getattr(seq, "array", None)
    if arr is not None:
        if arr.dtype == np.int64:
            return arr
        return arr.astype(np.int64, copy=False)
    return np.asarray(tuple(seq), dtype=np.int64)
