"""Bit-level substrate: popcount, BT counting, formats, payload packing."""

from repro.bits.formats import (
    DataFormat,
    Fixed8Format,
    Float32Format,
    format_by_name,
)
from repro.bits.lanes import (
    lane_fast_path,
    pack_lane_matrix,
    payloads_to_bytes,
    unpack_lane_matrix,
)
from repro.bits.packing import (
    array_from_words,
    pack_words,
    unpack_words,
    words_from_array,
)
from repro.bits.popcount import popcount, popcount_array, popcount_swar
from repro.bits.transitions import (
    per_bit_transitions,
    stream_transitions,
    stream_transitions_bytes,
    transition_matrix,
    transitions_between,
)

__all__ = [
    "DataFormat",
    "Fixed8Format",
    "Float32Format",
    "format_by_name",
    "lane_fast_path",
    "pack_lane_matrix",
    "payloads_to_bytes",
    "unpack_lane_matrix",
    "array_from_words",
    "pack_words",
    "unpack_words",
    "words_from_array",
    "popcount",
    "popcount_array",
    "popcount_swar",
    "per_bit_transitions",
    "stream_transitions",
    "stream_transitions_bytes",
    "transition_matrix",
    "transitions_between",
]
