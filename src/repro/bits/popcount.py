"""Population-count ('1'-bit counting) primitives.

The ordering method of the paper is driven entirely by the number of '1'
bits in each transmitted value (Sec. III-B).  This module provides three
interchangeable implementations:

* :func:`popcount` — exact scalar count for arbitrary-precision ints,
  the reference used throughout the simulator.
* :func:`popcount_swar` — the SWAR (SIMD Within A Register) algorithm
  that the paper's hardware ordering unit implements (Fig. 14).  It is
  bit-exact with :func:`popcount` for fixed-width words and doubles as a
  cycle/gate model input for :mod:`repro.hardware.ordering_unit`.
* :func:`popcount_array` — vectorised numpy byte-LUT popcount for bulk
  analysis over large weight tensors.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "popcount",
    "popcount_swar",
    "popcount_array",
    "POPCOUNT_LUT",
]

# Byte-indexed lookup table: POPCOUNT_LUT[b] == bin(b).count("1").
POPCOUNT_LUT = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)

# SWAR masks for the classic parallel-bits algorithm, per word width.
_SWAR_MASKS = {
    8: (0x55, 0x33, 0x0F, 0xFF),
    16: (0x5555, 0x3333, 0x0F0F, 0xFFFF),
    32: (0x55555555, 0x33333333, 0x0F0F0F0F, 0xFFFFFFFF),
    64: (
        0x5555555555555555,
        0x3333333333333333,
        0x0F0F0F0F0F0F0F0F,
        0xFFFFFFFFFFFFFFFF,
    ),
}


def popcount(value: int) -> int:
    """Count '1' bits in a non-negative arbitrary-precision integer.

    This is the reference popcount used by the ordering strategies and
    the link BT recorders.

    Raises:
        ValueError: if ``value`` is negative (bit patterns of negative
            Python ints are conceptually infinite).
    """
    if value < 0:
        raise ValueError(f"popcount requires a non-negative int, got {value}")
    return value.bit_count()


def popcount_swar(word: int, width: int = 32) -> int:
    """SWAR popcount over a fixed-width word, as in the paper's Fig. 14.

    The hardware ordering unit counts '1' bits with the classic
    divide-and-conquer SWAR sequence (pairs, nibbles, bytes, fold).
    This software model mirrors those steps so the hardware cost model
    can account one stage per adder layer.

    Args:
        word: the value to count; must fit in ``width`` bits.
        width: word width in bits; one of 8, 16, 32, 64.

    Returns:
        Number of '1' bits in ``word``.
    """
    if width not in _SWAR_MASKS:
        raise ValueError(f"unsupported SWAR width {width}; use 8/16/32/64")
    if not 0 <= word < (1 << width):
        raise ValueError(f"word {word:#x} does not fit in {width} bits")
    m1, m2, m4, full = _SWAR_MASKS[width]
    x = word
    x = x - ((x >> 1) & m1)
    x = (x & m2) + ((x >> 2) & m2)
    x = (x + (x >> 4)) & m4
    # Fold byte sums together; for width 8 the single byte already holds
    # the answer.
    shift = 8
    while shift < width:
        x = (x + (x >> shift)) & full
        shift *= 2
    return x & 0xFF


def popcount_array(words: np.ndarray) -> np.ndarray:
    """Vectorised popcount over an unsigned-integer numpy array.

    Views the array as raw bytes and sums a byte-wise lookup table, so
    any unsigned dtype works.  Used by the bulk bit-statistics paths
    (Fig. 10/11 analyses) where per-value Python ints would be too slow.

    Args:
        words: array of any unsigned integer dtype.

    Returns:
        ``uint32`` array of the same shape with per-element '1' counts.
    """
    arr = np.asarray(words)
    if arr.dtype.kind != "u":
        raise ValueError(
            f"popcount_array requires an unsigned dtype, got {arr.dtype}"
        )
    nbytes = arr.dtype.itemsize
    as_bytes = arr.reshape(-1).view(np.uint8).reshape(-1, nbytes)
    counts = POPCOUNT_LUT[as_bytes].sum(axis=1, dtype=np.uint32)
    return counts.reshape(arr.shape)
