"""Vectorised fixed-width lane kernels for the batch data plane.

The scalar codec path converts words one at a time (per-int
``popcount``, per-word ``to_bytes``, per-lane shift/or); these kernels
move whole ``(n_rows, n_lanes)`` word matrices between numpy storage
and payload integers in a handful of C-level calls:

* :func:`pack_lane_matrix` — one payload int per matrix row, lane 0 in
  the low bits (the :func:`repro.bits.packing.pack_words` layout).
* :func:`unpack_lane_matrix` — the inverse, payload ints back to a
  word matrix.
* :func:`payloads_to_bytes` — arbitrary-width payload ints to a
  ``(n, word_bytes)`` uint8 wire-image matrix, the input of the
  vectorised BT scorers in :mod:`repro.bits.transitions`.

All kernels are bit-exact with the scalar converters; widths that the
numpy fast path cannot express (non-byte-aligned, or lanes wider than
64 bits) raise :class:`ValueError` so callers fall back to the scalar
reference explicitly (see :func:`lane_fast_path`).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "lane_fast_path",
    "lane_dtype",
    "check_lane_range",
    "pack_lane_matrix",
    "unpack_lane_matrix",
    "payloads_to_bytes",
]

# Widths the numpy kernels express natively, mapped to the smallest
# little-endian storage dtype that holds one lane.
_NATIVE_DTYPES = {8: "<u1", 16: "<u2", 32: "<u4", 64: "<u8"}


def lane_fast_path(width: int) -> bool:
    """True when the numpy kernels support ``width``-bit lanes.

    Byte-aligned lanes up to 64 bits take the vectorised path; anything
    else (5-bit lanes, 128-bit lanes, ...) must use the scalar
    :mod:`repro.bits.packing` reference.
    """
    return width in _NATIVE_DTYPES or (width % 8 == 0 and 0 < width < 64)


def lane_dtype(width: int) -> np.dtype:
    """Smallest little-endian unsigned dtype holding a ``width``-bit lane."""
    for bits, dtype in _NATIVE_DTYPES.items():
        if width <= bits:
            return np.dtype(dtype)
    raise ValueError(f"no numpy lane dtype for width {width}")


def _lane_bytes(matrix: np.ndarray, width: int) -> np.ndarray:
    """``(n_rows, n_lanes * width//8)`` little-endian byte image of rows."""
    nbytes = width >> 3
    n_rows, n_lanes = matrix.shape
    if width in _NATIVE_DTYPES:
        packed = np.ascontiguousarray(
            matrix.astype(_NATIVE_DTYPES[width], copy=False)
        )
        return packed.view(np.uint8).reshape(n_rows, n_lanes * nbytes)
    # Odd byte-multiple widths (24/40/48/56): widen to u8 and keep the
    # low `nbytes` bytes of each lane.  astype preserves memory order,
    # so force C order — a Fortran-ordered input (e.g. a transposed
    # fill) cannot be reinterpreted bytewise along its last axis.
    wide = (
        matrix.astype("<u8", order="C")
        .view(np.uint8)
        .reshape(n_rows, n_lanes, 8)
    )
    return np.ascontiguousarray(wide[:, :, :nbytes]).reshape(
        n_rows, n_lanes * nbytes
    )


def check_lane_range(
    matrix: np.ndarray, width: int, what: str = ""
) -> None:
    """Reject integer matrices carrying words beyond ``width`` bits.

    The vectorised twin of the per-lane check in
    :func:`repro.bits.packing.pack_words`; ``what`` labels the word
    kind ("input", "weight", "bias") in error messages.
    """
    label = f"{what} word" if what else "word"
    if matrix.dtype.kind not in "iu":
        raise ValueError(
            f"expected integer {what or 'lane'} words, got dtype "
            f"{matrix.dtype}"
        )
    if matrix.size == 0:
        return
    if matrix.dtype.kind == "i" and int(matrix.min()) < 0:
        raise ValueError(f"negative {label} does not fit in {width} bits")
    if width < matrix.dtype.itemsize * 8:
        top = int(np.asarray(matrix.max(), dtype=np.uint64))
        if top >> width:
            raise ValueError(
                f"{label} {top:#x} does not fit in {width} bits"
            )


def pack_lane_matrix(matrix: np.ndarray, width: int) -> list[int]:
    """Pack each row of a word matrix into one payload integer.

    Bit-exact with calling :func:`repro.bits.packing.pack_words` on
    every row: lane 0 occupies the least-significant ``width`` bits.

    Args:
        matrix: ``(n_rows, n_lanes)`` integer array, every word in
            ``[0, 2**width)``.
        width: per-lane bit width; must satisfy :func:`lane_fast_path`.

    Returns:
        ``n_rows`` payload ints.
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D lane matrix, got shape {arr.shape}")
    if not lane_fast_path(width):
        raise ValueError(
            f"width {width} has no vectorised lane kernel; "
            "use repro.bits.packing.pack_words"
        )
    check_lane_range(arr, width)
    row_bytes = arr.shape[1] * (width >> 3)
    if row_bytes == 0:
        return [0] * arr.shape[0]
    blob = _lane_bytes(arr, width).tobytes()
    return [
        int.from_bytes(blob[start : start + row_bytes], "little")
        for start in range(0, len(blob), row_bytes)
    ]


def unpack_lane_matrix(
    payloads: Sequence[int], width: int, count: int
) -> np.ndarray:
    """Inverse of :func:`pack_lane_matrix`.

    Args:
        payloads: payload integers (bits above ``count`` lanes ignored,
            matching :func:`repro.bits.packing.unpack_words`).
        width: per-lane bit width; must satisfy :func:`lane_fast_path`.
        count: lanes to extract per payload.

    Returns:
        ``(len(payloads), count)`` array in the smallest unsigned dtype
        that holds ``width`` bits.
    """
    if not lane_fast_path(width):
        raise ValueError(
            f"width {width} has no vectorised lane kernel; "
            "use repro.bits.packing.unpack_words"
        )
    nbytes = width >> 3
    total = count * nbytes
    mask = (1 << (count * width)) - 1
    blob = b"".join(
        (int(p) & mask).to_bytes(total, "little") for p in payloads
    )
    n = len(payloads)
    if width in _NATIVE_DTYPES:
        return np.frombuffer(blob, dtype=_NATIVE_DTYPES[width]).reshape(
            n, count
        )
    lanes = np.frombuffer(blob, dtype=np.uint8).reshape(n, count, nbytes)
    wide = np.zeros((n, count, 8), dtype=np.uint8)
    wide[:, :, :nbytes] = lanes
    return wide.reshape(n, count * 8).view("<u8").reshape(n, count)


def payloads_to_bytes(
    payloads: Sequence[int], word_bytes: int, byte_order: str = "little"
) -> np.ndarray:
    """Fixed-width wire images of arbitrary-precision payload ints.

    One ``to_bytes`` per payload (payloads routinely exceed 64 bits, so
    numpy cannot hold them directly); everything downstream — XOR,
    popcount, argsort — then runs vectorised on the byte matrix.

    Args:
        payloads: non-negative ints, each below ``2**(8*word_bytes)``.
        word_bytes: bytes per wire image.
        byte_order: "little" (default) or "big" byte layout.

    Returns:
        ``(len(payloads), word_bytes)`` uint8 matrix.
    """
    blob = b"".join(int(p).to_bytes(word_bytes, byte_order) for p in payloads)
    return np.frombuffer(blob, dtype=np.uint8).reshape(
        len(payloads), word_bytes
    )
