"""Bit-level codecs for the two data formats the paper evaluates.

The paper studies float-32 and fixed-point-8 payloads (Sec. V).  BT
counting operates on raw bit patterns, so each format provides an
encode (real value -> fixed-width unsigned word) and decode direction.

* :class:`Float32Format` — IEEE-754 single precision, 32-bit words.
* :class:`Fixed8Format` — signed two's-complement 8-bit fixed point
  with a configurable scale (the accelerator uses symmetric per-tensor
  quantisation from :mod:`repro.dnn.quantize` to pick the scale).

Both codecs are exact round-trips on their representable sets and are
vectorised over numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DataFormat", "Float32Format", "Fixed8Format", "format_by_name"]


@dataclass(frozen=True)
class DataFormat:
    """Base class describing a fixed-width transmission word format.

    Attributes:
        name: short identifier ("float32" / "fixed8").
        width: word width in bits as transmitted on the link.
    """

    name: str
    width: int

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Convert real values to unsigned words of ``width`` bits."""
        raise NotImplementedError

    def decode(self, words: np.ndarray) -> np.ndarray:
        """Convert unsigned words back to real values."""
        raise NotImplementedError

    @property
    def mask(self) -> int:
        """All-ones mask of ``width`` bits."""
        return (1 << self.width) - 1


@dataclass(frozen=True)
class Float32Format(DataFormat):
    """IEEE-754 binary32: sign(1) | exponent(8) | mantissa(23)."""

    name: str = "float32"
    width: int = 32

    def encode(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float32)
        return arr.view(np.uint32)

    def decode(self, words: np.ndarray) -> np.ndarray:
        arr = np.asarray(words, dtype=np.uint32)
        return arr.view(np.float32)


@dataclass(frozen=True)
class Fixed8Format(DataFormat):
    """Signed 8-bit fixed point, two's complement on the wire.

    A real value ``v`` maps to ``round(v / scale)`` clipped to
    [-128, 127]; the wire word is the two's-complement byte.  The scale
    is part of the format instance so that encode/decode stay a pure
    function of the value.
    """

    name: str = "fixed8"
    width: int = 8
    scale: float = 1.0 / 64.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def encode(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        q = np.clip(np.rint(arr / self.scale), -128, 127).astype(np.int8)
        return q.view(np.uint8)

    def decode(self, words: np.ndarray) -> np.ndarray:
        arr = np.asarray(words, dtype=np.uint8)
        return arr.view(np.int8).astype(np.float32) * np.float32(self.scale)

    def with_scale(self, scale: float) -> "Fixed8Format":
        """Return a copy of this format using ``scale``."""
        return Fixed8Format(scale=scale)


def format_by_name(name: str, scale: float | None = None) -> DataFormat:
    """Look up a :class:`DataFormat` by its short name.

    Args:
        name: "float32" or "fixed8".
        scale: optional fixed-point scale (fixed8 only).

    Returns:
        A format instance ready for encode/decode.
    """
    if name == "float32":
        if scale is not None:
            raise ValueError("float32 takes no scale parameter")
        return Float32Format()
    if name == "fixed8":
        return Fixed8Format() if scale is None else Fixed8Format(scale=scale)
    raise ValueError(f"unknown data format {name!r}; use float32/fixed8")
