"""Packing fixed-width words into flit payloads and back.

A flit payload is modelled as a single arbitrary-precision Python int
(see DESIGN.md §4): XOR plus ``int.bit_count()`` gives exact per-link
BT counts at C speed.  This module converts between word sequences and
payload ints, with lane 0 occupying the least-significant bits.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.bits.lanes import lane_fast_path, unpack_lane_matrix

__all__ = ["pack_words", "unpack_words", "words_from_array", "array_from_words"]


def _reject_bad_word(words: Sequence[int], width: int) -> None:
    """Raise the lane-precise error for an out-of-range word."""
    for lane, word in enumerate(words):
        w = int(word)
        if not 0 <= w < (1 << width):
            raise ValueError(
                f"word {w:#x} in lane {lane} does not fit in {width} bits"
            )


def pack_words(words: Sequence[int], width: int) -> int:
    """Pack ``words`` (lane 0 first) into one payload integer.

    Args:
        words: unsigned words, each strictly below ``2**width``.
        width: per-word bit width.

    Returns:
        Payload int with word ``i`` at bit offset ``i * width``.
    """
    if width == 8:
        # Single-byte lanes (fixed8): bytes() both packs and
        # range-checks the whole sequence in one C call.  A numpy
        # array must be converted first — bytes(ndarray) serialises
        # the raw element buffer, not one byte per word.
        if isinstance(words, np.ndarray):
            words = words.tolist()
        try:
            return int.from_bytes(bytes(words), "little")
        except (ValueError, TypeError):
            _reject_bad_word(words, width)
            raise
    if width & 7 == 0:
        # Byte-aligned lanes (all the wire formats): build the payload
        # through one bytes buffer instead of per-lane shift/or over a
        # growing bignum.  to_bytes also range-checks each word.
        nbytes = width >> 3
        try:
            buf = b"".join(
                int(w).to_bytes(nbytes, "little") for w in words
            )
        except OverflowError:
            _reject_bad_word(words, width)
            raise
        return int.from_bytes(buf, "little")
    payload = 0
    for lane, word in enumerate(words):
        w = int(word)
        if not 0 <= w < (1 << width):
            raise ValueError(
                f"word {w:#x} in lane {lane} does not fit in {width} bits"
            )
        payload |= w << (lane * width)
    return payload


def unpack_words(payload: int, width: int, count: int) -> list[int]:
    """Inverse of :func:`pack_words`.

    Args:
        payload: packed payload integer.
        width: per-word bit width.
        count: number of lanes to extract.

    Returns:
        List of ``count`` unsigned words, lane 0 first.
    """
    if payload < 0:
        raise ValueError("payload must be non-negative")
    if lane_fast_path(width):
        # The shared lane-unpacking kernel: one bytes conversion + a
        # numpy view instead of `count` shifts over the bignum; bits
        # beyond `count` lanes are ignored, as in the generic path.
        return unpack_lane_matrix([payload], width, count)[0].tolist()
    # Scalar fallback for widths the kernel cannot express
    # (non-byte-aligned, or lanes wider than 64 bits).
    mask = (1 << width) - 1
    return [(payload >> (lane * width)) & mask for lane in range(count)]


def words_from_array(arr: np.ndarray) -> list[int]:
    """Convert an unsigned numpy array to a list of Python ints."""
    a = np.asarray(arr)
    if a.dtype.kind != "u":
        raise ValueError(f"expected unsigned dtype, got {a.dtype}")
    return a.reshape(-1).tolist()


def array_from_words(words: Iterable[int], width: int) -> np.ndarray:
    """Convert unsigned words to the numpy dtype matching ``width``."""
    dtype = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}.get(width)
    if dtype is None:
        raise ValueError(f"no numpy dtype for width {width}")
    return np.array(list(words), dtype=dtype)
