"""Bit-transition (BT) counting.

A BT is a '0'->'1' or '1'->'0' change on one wire between two
consecutive flits crossing the same link (Sec. III-A).  For two
payloads ``a`` and ``b`` the BT count is ``popcount(a XOR b)``.

Three granularities are provided:

* word/payload pair — :func:`transitions_between`;
* a stream of payloads crossing one link — :func:`stream_transitions`;
* bulk word matrices for the statistical analyses —
  :func:`transition_matrix` and :func:`per_bit_transitions`.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.bits.popcount import POPCOUNT_LUT, popcount

__all__ = [
    "transitions_between",
    "stream_transitions",
    "stream_transitions_bytes",
    "transition_matrix",
    "per_bit_transitions",
]


def transitions_between(a: int, b: int) -> int:
    """BT count between two payload integers on the same link."""
    if a < 0 or b < 0:
        raise ValueError("payloads must be non-negative ints")
    return popcount(a ^ b)


def stream_transitions(payloads: Iterable[int]) -> int:
    """Total BTs for a sequence of payloads crossing one link in order.

    The first payload establishes the link state without being charged
    any transitions (matching the Fig. 8 recorder, whose ``Flit_pre``
    register starts empty).
    """
    total = 0
    prev: int | None = None
    for payload in payloads:
        if prev is not None:
            total += popcount(prev ^ payload)
        prev = payload
    return total


def stream_transitions_bytes(images: np.ndarray) -> int:
    """Vectorised :func:`stream_transitions` over fixed-width wire images.

    Args:
        images: ``(n_flits, word_bytes)`` uint8 matrix, one row per
            wire image in link order (see
            :func:`repro.bits.lanes.payloads_to_bytes`).

    Returns:
        Total BTs between consecutive rows; the first row establishes
        the link state without being charged, as in
        :func:`stream_transitions`.
    """
    arr = np.asarray(images)
    if arr.dtype != np.uint8 or arr.ndim != 2:
        raise ValueError(
            f"expected a 2-D uint8 wire-image matrix, got "
            f"{arr.dtype} shape {arr.shape}"
        )
    if arr.shape[0] < 2:
        return 0
    xored = arr[:-1] ^ arr[1:]
    return int(POPCOUNT_LUT[xored].sum(dtype=np.int64))


def transition_matrix(words: np.ndarray) -> np.ndarray:
    """Per-row BT counts between consecutive rows of a word matrix.

    Args:
        words: shape ``(n_flits, lanes)`` unsigned array; each row is
            one flit's worth of words.

    Returns:
        shape ``(n_flits - 1,)`` array of BT counts between row ``i``
        and row ``i + 1``.
    """
    arr = np.asarray(words)
    if arr.dtype.kind != "u":
        raise ValueError(f"expected unsigned dtype, got {arr.dtype}")
    if arr.ndim != 2:
        raise ValueError(f"expected 2-D (flits, lanes), got shape {arr.shape}")
    if arr.shape[0] < 2:
        return np.zeros(0, dtype=np.int64)
    xored = arr[:-1] ^ arr[1:]
    nbytes = arr.dtype.itemsize
    as_bytes = xored.view(np.uint8).reshape(xored.shape[0], -1)
    if as_bytes.shape[1] != xored.shape[1] * nbytes:
        raise AssertionError("byte view shape mismatch")
    return POPCOUNT_LUT[as_bytes].sum(axis=1, dtype=np.int64)


def per_bit_transitions(words: np.ndarray, width: int) -> np.ndarray:
    """Transition probability at each bit position of a word stream.

    Used by the Fig. 10/11 analyses: for a 1-D stream of words, compute
    the fraction of consecutive pairs in which bit position ``p``
    flips.  Position 0 is the most-significant bit to match the paper's
    left-to-right plotting (sign bit first for float-32).

    Args:
        words: 1-D unsigned array of the word stream, in link order.
        width: word width in bits.

    Returns:
        shape ``(width,)`` float array of flip probabilities, MSB first.
    """
    arr = np.asarray(words).reshape(-1)
    if arr.dtype.kind != "u":
        raise ValueError(f"expected unsigned dtype, got {arr.dtype}")
    if arr.size < 2:
        return np.zeros(width, dtype=np.float64)
    xored = arr[:-1] ^ arr[1:]
    nbits = 8 * xored.dtype.itemsize
    if width > nbits:
        # Positions above the storage dtype can never flip; widen so
        # the unpack below yields well-defined zeros for them.
        if width > 64:
            raise ValueError(
                f"width {width} exceeds the 64-bit unpack limit"
            )
        xored = xored.astype(np.uint64)
        nbits = 64
    # One unpackbits pass instead of a per-position shift loop: view
    # the XORs as big-endian bytes so the unpacked columns run MSB
    # first, then keep the trailing `width` columns (bit width-1 .. 0).
    as_bytes = (
        xored.astype(xored.dtype.newbyteorder(">"), copy=False)
        .view(np.uint8)
        .reshape(xored.size, -1)
    )
    bits = np.unpackbits(as_bytes, axis=1)[:, nbits - width:]
    return bits.mean(axis=0, dtype=np.float64)
