"""Tests for repro.bits.popcount."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.popcount import (
    POPCOUNT_LUT,
    popcount,
    popcount_array,
    popcount_swar,
)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_all_ones_byte(self):
        assert popcount(0xFF) == 8

    def test_known_pattern(self):
        assert popcount(0b1011_0010) == 4

    def test_large_int(self):
        # 512-bit payload with alternating bits.
        word = int("10" * 256, 2)
        assert popcount(word) == 256

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_matches_bin_count(self, value):
        assert popcount(value) == bin(value).count("1")


class TestPopcountSwar:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_matches_reference_32(self, word):
        assert popcount_swar(word, 32) == popcount(word)

    @given(st.integers(min_value=0, max_value=2**8 - 1))
    def test_matches_reference_8(self, word):
        assert popcount_swar(word, 8) == popcount(word)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_matches_reference_64(self, word):
        assert popcount_swar(word, 64) == popcount(word)

    def test_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            popcount_swar(1 << 32, 32)

    def test_rejects_unsupported_width(self):
        with pytest.raises(ValueError):
            popcount_swar(1, 12)


class TestPopcountArray:
    def test_lut_is_correct(self):
        for i in (0, 1, 3, 127, 128, 255):
            assert POPCOUNT_LUT[i] == bin(i).count("1")

    def test_uint8(self):
        arr = np.array([0, 1, 255, 170], dtype=np.uint8)
        np.testing.assert_array_equal(popcount_array(arr), [0, 1, 8, 4])

    def test_uint32(self):
        arr = np.array([0, 0xFFFFFFFF, 0x0F0F0F0F], dtype=np.uint32)
        np.testing.assert_array_equal(popcount_array(arr), [0, 32, 16])

    def test_preserves_shape(self):
        arr = np.arange(12, dtype=np.uint16).reshape(3, 4)
        assert popcount_array(arr).shape == (3, 4)

    def test_rejects_signed(self):
        with pytest.raises(ValueError):
            popcount_array(np.array([1, 2], dtype=np.int32))

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**32 - 1),
            min_size=1,
            max_size=50,
        )
    )
    def test_matches_scalar(self, values):
        arr = np.array(values, dtype=np.uint32)
        expected = [popcount(v) for v in values]
        np.testing.assert_array_equal(popcount_array(arr), expected)
