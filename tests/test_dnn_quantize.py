"""Tests for repro.dnn.quantize."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dnn.quantize import QuantizedTensor, quantize_symmetric, tensor_format


class TestQuantizeSymmetric:
    def test_max_maps_to_127(self):
        q = quantize_symmetric(np.array([-2.0, 1.0, 2.0]))
        assert q.codes.max() == 127
        assert q.scale == pytest.approx(2.0 / 127.0)

    def test_zero_tensor(self):
        q = quantize_symmetric(np.zeros(5))
        assert (q.codes == 0).all()
        assert q.scale == 1.0

    def test_symmetry(self):
        q = quantize_symmetric(np.array([-1.0, 1.0]))
        assert q.codes[0] == -127
        assert q.codes[1] == 127

    def test_dequantize_error_bound(self, rng):
        values = rng.normal(0, 0.3, 500)
        q = quantize_symmetric(values)
        err = np.abs(q.dequantize() - values)
        assert err.max() <= q.scale / 2 + 1e-9

    def test_words_are_twos_complement(self):
        q = quantize_symmetric(np.array([-1.0, 1.0]))
        words = q.words()
        assert words.dtype == np.uint8
        assert words[0] == (256 - 127)

    def test_small_values_become_zero_codes(self):
        # The zero-heavy regime behind the paper's trained fixed-8 win.
        values = np.array([1.0] + [1e-5] * 9)
        q = quantize_symmetric(values)
        assert (q.codes[1:] == 0).all()

    @given(
        arrays(
            np.float64,
            st.integers(min_value=1, max_value=50),
            elements=st.floats(
                min_value=-100, max_value=100, allow_nan=False
            ),
        )
    )
    def test_codes_in_range(self, values):
        q = quantize_symmetric(values)
        assert q.codes.min() >= -128
        assert q.codes.max() <= 127


class TestQuantizedTensor:
    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            QuantizedTensor(codes=np.zeros(3, dtype=np.int16), scale=1.0)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            QuantizedTensor(codes=np.zeros(3, dtype=np.int8), scale=0.0)


class TestTensorFormat:
    def test_scale_matches_quantizer(self):
        values = np.array([-0.5, 0.25, 0.5])
        fmt = tensor_format(values)
        assert fmt.scale == pytest.approx(0.5 / 127.0)

    def test_round_trip_via_format(self, rng):
        values = rng.normal(0, 0.2, 100)
        fmt = tensor_format(values)
        decoded = fmt.decode(fmt.encode(values))
        assert np.abs(decoded - values).max() <= fmt.scale / 2 + 1e-6
