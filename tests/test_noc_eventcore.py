"""Cycle-exactness of the event-driven core vs the reference stepper.

The event core (active-set tracking, arrival heap, merged router
phases, idle fast-forward) is an optimization, not a remodel: every
simulation must produce *identical* results to the retained reference
stepper — same cycle counts, same latencies, same per-link BT dicts,
same aggregate stats.  This matrix pins that equivalence across the
configuration axes that stress different parts of the fast path:
multi-cycle links, multi-flit injection, congestion-heavy arbitration,
packet scheduling policies, pipelined (no-barrier) mode, and
injection-link recording.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import AcceleratorSimulator
from repro.dnn.models import build_model
from repro.noc.flit import make_packet
from repro.noc.network import (
    CORES,
    Network,
    NoCConfig,
    default_core,
    network_core,
    set_default_core,
)
from repro.noc.traffic import (
    SyntheticTrafficConfig,
    TrafficPattern,
    drive_synthetic,
)
from repro.ordering.strategies import OrderingMethod


def run_synthetic_pair(traffic: SyntheticTrafficConfig, noc: NoCConfig):
    """The same synthetic run under both cores."""
    networks = {}
    for core in CORES:
        with network_core(core):
            networks[core] = drive_synthetic(traffic, noc)
    return networks["event"], networks["stepped"]


def assert_networks_equal(event: Network, stepped: Network) -> None:
    """Full-stats equivalence of two drained networks."""
    assert dataclasses.asdict(event.stats) == dataclasses.asdict(
        stepped.stats
    )
    assert event.ledger.per_link() == stepped.ledger.per_link()
    assert (
        event.ledger.total_transitions == stepped.ledger.total_transitions
    )
    assert (
        event.ledger.total_flit_traversals
        == stepped.ledger.total_flit_traversals
    )
    # The event core may only ever *skip* cycles, never add them.
    assert event.steps_executed <= event.stats.cycles
    assert stepped.steps_executed == stepped.stats.cycles


class TestCoreSelection:
    def test_default_core_is_event(self):
        assert default_core() == "event"
        assert Network(NoCConfig(width=2, height=2)).event_core

    def test_explicit_core_argument(self):
        net = Network(NoCConfig(width=2, height=2), core="stepped")
        assert net.core == "stepped"
        assert not net.event_core

    def test_unknown_core_rejected(self):
        with pytest.raises(ValueError, match="unknown network core"):
            Network(NoCConfig(width=2, height=2), core="warp")
        with pytest.raises(ValueError, match="unknown network core"):
            set_default_core("warp")

    def test_network_core_scope_restores(self):
        before = default_core()
        with network_core("stepped"):
            assert default_core() == "stepped"
        assert default_core() == before


SYNTHETIC_MATRIX = [
    # (label, traffic kwargs, noc kwargs)
    ("uniform_dense", dict(n_packets=60, injection_window=20), {}),
    ("uniform_sparse", dict(n_packets=25, injection_window=4000), {}),
    (
        "hotspot_congested",
        dict(
            pattern=TrafficPattern.HOTSPOT,
            n_packets=70,
            injection_window=25,
        ),
        {},
    ),
    (
        "link_latency_3",
        dict(n_packets=40, injection_window=60),
        dict(link_latency=3),
    ),
    (
        "injection_rate_2",
        dict(n_packets=40, injection_window=40, flits_per_packet=6),
        dict(injection_rate=2),
    ),
    (
        "record_injection",
        dict(n_packets=40, injection_window=50),
        dict(record_injection=True),
    ),
    (
        "header_bits",
        dict(n_packets=30, injection_window=40),
        dict(include_header_bits=True),
    ),
    (
        "transpose_vc1",
        dict(pattern=TrafficPattern.TRANSPOSE, n_packets=32,
             injection_window=10),
        dict(n_vcs=1, vc_depth=2),
    ),
]


class TestSyntheticEquivalence:
    @pytest.mark.parametrize(
        "label,traffic_kw,noc_kw",
        SYNTHETIC_MATRIX,
        ids=[row[0] for row in SYNTHETIC_MATRIX],
    )
    def test_matrix(self, label, traffic_kw, noc_kw):
        traffic = SyntheticTrafficConfig(seed=11, **traffic_kw)
        noc = NoCConfig(width=4, height=4, link_width=64, **noc_kw)
        event, stepped = run_synthetic_pair(traffic, noc)
        assert_networks_equal(event, stepped)

    def test_sparse_run_fast_forwards(self):
        traffic = SyntheticTrafficConfig(n_packets=20,
                                         injection_window=5000, seed=3)
        noc = NoCConfig(width=4, height=4, link_width=64)
        event, stepped = run_synthetic_pair(traffic, noc)
        assert_networks_equal(event, stepped)
        # The wide injection window is idle-dominated: the event core
        # must have jumped over most of it.
        assert event.steps_executed < event.stats.cycles // 2

    def test_multi_cycle_links_use_arrival_heap(self):
        noc = NoCConfig(width=4, height=1, link_width=32, link_latency=5)
        results = {}
        for core in CORES:
            with network_core(core):
                net = Network(noc)
                net.send_packet(make_packet(0, 3, [7, 9], 32))
                net.send_packet(make_packet(1, 3, [3], 32))
                net.run_until_drained()
                results[core] = net
        assert_networks_equal(results["event"], results["stepped"])
        # 3 hops at 5 cycles each plus router stages: latency must
        # reflect the link pipeline under both cores.
        assert results["event"].stats.cycles > 15


ACCEL_MATRIX = [
    ("defaults", {}),
    ("count_desc", dict(packet_scheduling="count_desc")),
    ("pipelined", dict(layer_barrier=False)),
    ("no_responses", dict(include_responses=False, compute_delay=0)),
    ("compute_delay_7", dict(compute_delay=7)),
    (
        "weight_cache",
        dict(weight_cache=True, mapping_policy="group_affine"),
    ),
    ("ordering_latency", dict(extra={"model_ordering_latency": True})),
]


class TestAcceleratorEquivalence:
    @pytest.fixture(scope="class")
    def workload(self):
        model = build_model("lenet", rng=np.random.default_rng(9))
        image = (
            np.random.default_rng(5)
            .random(model.input_shape)
            .astype(np.float32)
        )
        return model, image

    @pytest.mark.parametrize(
        "label,overrides",
        ACCEL_MATRIX,
        ids=[row[0] for row in ACCEL_MATRIX],
    )
    def test_matrix(self, workload, label, overrides):
        model, image = workload
        config = AcceleratorConfig(
            width=3,
            height=3,
            n_mcs=1,
            data_format="fixed8",
            ordering=OrderingMethod.SEPARATED,
            max_tasks_per_layer=3,
            seed=2025,
            **overrides,
        )
        results = {}
        steps = {}
        for core in CORES:
            with network_core(core):
                sim = AcceleratorSimulator(config, model, image)
                results[core] = sim.run()
                steps[core] = sim.last_network.steps_executed
        event, stepped = results["event"], results["stepped"]
        assert event.total_cycles == stepped.total_cycles
        assert event.total_bit_transitions == stepped.total_bit_transitions
        assert event.flit_hops == stepped.flit_hops
        assert event.mean_packet_latency == stepped.mean_packet_latency
        assert event.per_link == stepped.per_link
        assert event.layers == stepped.layers
        assert event.tasks_verified == stepped.tasks_verified
        assert event.all_verified
        assert steps["event"] <= event.total_cycles
        assert steps["stepped"] == stepped.total_cycles


# Recording-side axes of the replay conformance matrix: the pipelining
# mode and each MC packet-scheduling policy shape the captured traffic
# differently (barrier drains vs free pipelining, FIFO vs count-sorted
# injection order).
RECORDING_MATRIX = [
    ("barrier_fifo", dict(layer_barrier=True, packet_scheduling="fifo")),
    (
        "barrier_count_desc",
        dict(layer_barrier=True, packet_scheduling="count_desc"),
    ),
    (
        "pipelined_fifo",
        dict(layer_barrier=False, packet_scheduling="fifo"),
    ),
    (
        "pipelined_count_desc",
        dict(layer_barrier=False, packet_scheduling="count_desc"),
    ),
]


class TestReplayConformanceMatrix:
    """Cross-core differential conformance on *recorded* traffic.

    A trace captured from a live accelerator run is a durable oracle:
    replaying it must produce bit-identical per-link BT ledgers on the
    event and the stepped core — across recording configurations
    (pipelined on/off, each scheduling policy) and replay-side link
    latencies.  At the recorded latency the replay must additionally
    reproduce the capture's own per-link transitions exactly.
    """

    @pytest.fixture(scope="class")
    def traces(self):
        from repro.noc.recorder import TraceRecorder

        model = build_model("lenet", rng=np.random.default_rng(9))
        image = (
            np.random.default_rng(5)
            .random(model.input_shape)
            .astype(np.float32)
        )
        traces = {}
        for label, overrides in RECORDING_MATRIX:
            config = AcceleratorConfig(
                width=3,
                height=3,
                n_mcs=1,
                data_format="fixed8",
                ordering=OrderingMethod.SEPARATED,
                max_tasks_per_layer=2,
                seed=2025,
                **overrides,
            )
            sim = AcceleratorSimulator(config, model, image)
            recorder = TraceRecorder()
            result = sim.run(trace_collector=recorder)
            trace = recorder.finish(sim.last_network.config)
            assert (
                trace.total_transitions() == result.total_bit_transitions
            )
            traces[label] = trace
        return traces

    @pytest.mark.parametrize(
        "label",
        [row[0] for row in RECORDING_MATRIX],
    )
    @pytest.mark.parametrize("link_latency", [1, 2])
    def test_cores_produce_identical_ledgers(
        self, traces, label, link_latency
    ):
        from repro.workloads.traces import replay_through_network

        trace = traces[label]
        overrides = (
            None if link_latency == 1 else {"link_latency": link_latency}
        )
        ledgers = {}
        stats = {}
        for core in CORES:
            network = replay_through_network(
                trace, core=core, overrides=overrides
            )
            ledgers[core] = network.ledger.per_link()
            stats[core] = dataclasses.asdict(network.stats)
        # The conformance pin: identical per-link BT dicts, not just
        # matching totals — a cross-core divergence on one link must
        # not hide behind a compensating divergence on another.
        assert ledgers["event"] == ledgers["stepped"]
        assert stats["event"] == stats["stepped"]
        if link_latency == 1:
            # Recorded latency: the replay reproduces the capture.
            assert ledgers["event"] == trace.per_link_transitions()
