"""Campaign runner: caching, failure capture, parallel determinism."""

from __future__ import annotations

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.experiments.cache import ResultCache
from repro.experiments.runner import CampaignRunner, execute_job
from repro.experiments.spec import JobSpec, SweepSpec
from repro.experiments.store import ResultStore


def small_spec(**overrides) -> SweepSpec:
    kwargs = dict(
        name="t",
        model="lenet",
        base={"max_tasks_per_layer": 2},
        axes={
            "mesh": ["2x2:1", "3x3:1"],
            "ordering": ["O0", "O2"],
        },
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestExecuteJob:
    def test_successful_record_shape(self):
        job = JobSpec(
            model="lenet",
            config=AcceleratorConfig(
                width=2, height=2, n_mcs=1, max_tasks_per_layer=1
            ),
        )
        record = execute_job(job.to_dict())
        assert record["status"] == "ok"
        assert record["job_id"] == job.job_id
        assert record["result"]["total_bit_transitions"] > 0
        assert record["result"]["tasks_verified"] == (
            record["result"]["tasks_total"]
        )
        assert record["error"] is None

    def test_failure_is_captured_not_raised(self):
        job = JobSpec(
            model="lenet",
            config=AcceleratorConfig(
                width=2, height=2, n_mcs=1, max_tasks_per_layer=1
            ),
            max_cycles_per_layer=1,  # impossible budget -> timeout
        )
        record = execute_job(job.to_dict())
        assert record["status"] == "error"
        assert "SimulationTimeout" in record["error"]
        assert "traceback" in record
        assert record["result"] is None


class TestCampaignRunner:
    def test_cold_run_then_full_cache_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = CampaignRunner(cache=cache, workers=1)
        spec = small_spec()
        first = runner.run(spec)
        assert (first.hits, first.misses) == (0, 4)
        assert first.errors == 0
        second = runner.run(spec)
        assert (second.hits, second.misses) == (4, 0)
        assert second.hit_rate == 1.0
        stripped = lambda recs: [
            {k: v for k, v in r.items() if k != "cached"} for r in recs
        ]
        assert stripped(second.records) == stripped(first.records)
        assert all(r["cached"] for r in second.records)

    def test_partial_cache_only_simulates_new_points(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = CampaignRunner(cache=cache, workers=1)
        runner.run(small_spec(axes={"mesh": ["2x2:1"],
                                    "ordering": ["O0", "O2"]}))
        grown = runner.run(small_spec())
        assert (grown.hits, grown.misses) == (2, 2)

    def test_error_jobs_are_not_cached_and_counted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = CampaignRunner(cache=cache, workers=1)
        spec = small_spec(max_cycles_per_layer=1)
        result = runner.run(spec)
        assert result.errors == result.n_jobs == 4
        assert all(r["status"] == "error" for r in result.records)
        assert len(cache) == 0
        # The retry simulates again instead of serving stale errors.
        retry = runner.run(spec)
        assert retry.hits == 0

    def test_store_receives_every_record(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        runner = CampaignRunner(
            cache=ResultCache(tmp_path / "cache"), store=store, workers=1
        )
        spec = small_spec()
        runner.run(spec)
        runner.run(spec)
        records = store.load()
        assert len(records) == 8  # both runs logged
        assert len(store.latest_by_job()) == 4
        assert all(r["campaign"] == "t" for r in records)

    def test_runs_plain_job_lists(self, tmp_path):
        jobs = small_spec().expand()[:2]
        result = CampaignRunner(workers=1).run(jobs)
        assert result.n_jobs == 2
        assert result.name == "jobs"

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(workers=0)


class TestParallelDeterminism:
    def test_workers_1_vs_4_identical_records(self, tmp_path):
        spec = small_spec()
        serial = CampaignRunner(
            cache=ResultCache(tmp_path / "c1"), workers=1
        ).run(spec)
        parallel = CampaignRunner(
            cache=ResultCache(tmp_path / "c4"), workers=4
        ).run(spec)
        assert serial.records == parallel.records
        # Cache contents are byte-identical too: same keys, same values.
        c1 = ResultCache(tmp_path / "c1")
        c4 = ResultCache(tmp_path / "c4")
        for job in spec.expand():
            assert c1.get_job(job) == c4.get_job(job)

    def test_parallel_run_hits_serial_cache(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        CampaignRunner(cache=cache, workers=1).run(spec)
        replay = CampaignRunner(cache=cache, workers=4).run(spec)
        assert (replay.hits, replay.misses) == (4, 0)
