"""Campaign runner: caching, failure capture, parallel determinism."""

from __future__ import annotations

import json

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.experiments.cache import ResultCache
from repro.experiments.kinds import JOB_KINDS, JobKind, register_job_kind
from repro.experiments.runner import CampaignRunner, execute_job
from repro.experiments.spec import JobSpec, SweepSpec
from repro.experiments.store import ResultStore


def small_spec(**overrides) -> SweepSpec:
    kwargs = dict(
        name="t",
        model="lenet",
        base={"max_tasks_per_layer": 2},
        axes={
            "mesh": ["2x2:1", "3x3:1"],
            "ordering": ["O0", "O2"],
        },
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestExecuteJob:
    def test_successful_record_shape(self):
        job = JobSpec(
            model="lenet",
            config=AcceleratorConfig(
                width=2, height=2, n_mcs=1, max_tasks_per_layer=1
            ),
        )
        record = execute_job(job.to_dict())
        assert record["status"] == "ok"
        assert record["job_id"] == job.job_id
        assert record["result"]["total_bit_transitions"] > 0
        assert record["result"]["tasks_verified"] == (
            record["result"]["tasks_total"]
        )
        assert record["error"] is None

    def test_failure_is_captured_not_raised(self):
        job = JobSpec(
            model="lenet",
            config=AcceleratorConfig(
                width=2, height=2, n_mcs=1, max_tasks_per_layer=1
            ),
            max_cycles_per_layer=1,  # impossible budget -> timeout
        )
        record = execute_job(job.to_dict())
        assert record["status"] == "error"
        assert "SimulationTimeout" in record["error"]
        assert "traceback" in record
        assert record["result"] is None


class TestCampaignRunner:
    def test_cold_run_then_full_cache_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = CampaignRunner(cache=cache, workers=1)
        spec = small_spec()
        first = runner.run(spec)
        assert (first.hits, first.misses) == (0, 4)
        assert first.errors == 0
        second = runner.run(spec)
        assert (second.hits, second.misses) == (4, 0)
        assert second.hit_rate == 1.0
        stripped = lambda recs: [
            {k: v for k, v in r.items() if k != "cached"} for r in recs
        ]
        assert stripped(second.records) == stripped(first.records)
        assert all(r["cached"] for r in second.records)

    def test_partial_cache_only_simulates_new_points(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = CampaignRunner(cache=cache, workers=1)
        runner.run(small_spec(axes={"mesh": ["2x2:1"],
                                    "ordering": ["O0", "O2"]}))
        grown = runner.run(small_spec())
        assert (grown.hits, grown.misses) == (2, 2)

    def test_error_jobs_are_not_cached_and_counted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = CampaignRunner(cache=cache, workers=1)
        spec = small_spec(max_cycles_per_layer=1)
        result = runner.run(spec)
        assert result.errors == result.n_jobs == 4
        assert all(r["status"] == "error" for r in result.records)
        assert len(cache) == 0
        # The retry simulates again instead of serving stale errors.
        retry = runner.run(spec)
        assert retry.hits == 0

    def test_store_receives_every_record(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        runner = CampaignRunner(
            cache=ResultCache(tmp_path / "cache"), store=store, workers=1
        )
        spec = small_spec()
        runner.run(spec)
        runner.run(spec)
        records = store.load()
        assert len(records) == 8  # both runs logged
        assert len(store.latest_by_job()) == 4
        assert all(r["campaign"] == "t" for r in records)

    def test_runs_plain_job_lists(self, tmp_path):
        jobs = small_spec().expand()[:2]
        result = CampaignRunner(workers=1).run(jobs)
        assert result.n_jobs == 2
        assert result.name == "jobs"

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(workers=0)


@pytest.fixture
def flaky_kind():
    """A registered kind whose handler raises until told otherwise."""

    class FlakyKind(JobKind):
        name = "flaky"
        broken = True

        def execute(self, job):
            if FlakyKind.broken:
                raise RuntimeError("handler exploded")
            return super().execute(job)

    kind = register_job_kind(FlakyKind())
    yield kind
    del JOB_KINDS["flaky"]


def flaky_job() -> JobSpec:
    return JobSpec(
        model="lenet",
        config=AcceleratorConfig(
            width=2, height=2, n_mcs=1, max_tasks_per_layer=1
        ),
        kind="flaky",
    )


class TestHandlerFailurePaths:
    """A raising job-kind handler must never corrupt a campaign."""

    def test_raise_is_captured_with_error_status(self, flaky_kind):
        record = execute_job(flaky_job().to_dict())
        assert record["status"] == "error"
        assert "RuntimeError: handler exploded" in record["error"]
        assert "handler exploded" in record["traceback"]
        assert record["result"] is None

    def test_failed_job_is_not_cached_and_excluded(
        self, flaky_kind, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        store = ResultStore(tmp_path / "runs.jsonl")
        runner = CampaignRunner(cache=cache, store=store, workers=1)
        result = runner.run([flaky_job()])
        assert result.errors == 1
        assert result.ok_records() == []  # errors never count as ok
        assert len(cache) == 0  # the cache is not poisoned
        # ...but the store still logged the failure for inspection.
        (logged,) = store.load()
        assert logged["status"] == "error"

    def test_failed_job_reruns_instead_of_replaying(
        self, flaky_kind, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        runner = CampaignRunner(cache=cache, workers=1)
        runner.run([flaky_job()])
        type(flaky_kind).broken = False  # the bug gets fixed...
        retry = runner.run([flaky_job()])
        # ...and the next campaign simulates rather than serving the
        # stale failure: a fresh ok record, produced by a cache miss.
        assert (retry.hits, retry.misses, retry.errors) == (0, 1, 0)
        assert retry.records[0]["status"] == "ok"
        type(flaky_kind).broken = True

    def test_mixed_campaign_continues_past_failures(
        self, flaky_kind, tmp_path
    ):
        good = JobSpec(
            model="lenet",
            config=AcceleratorConfig(
                width=2, height=2, n_mcs=1, max_tasks_per_layer=1
            ),
        )
        result = CampaignRunner(workers=1).run([flaky_job(), good])
        assert [r["status"] for r in result.records] == ["error", "ok"]
        assert result.errors == 1
        assert len(result.ok_records()) == 1


class TestReplayDeterminism:
    def test_cached_replay_is_byte_identical_jsonl(self, tmp_path):
        """Two warm replays append byte-identical JSONL records."""
        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        CampaignRunner(cache=cache, workers=1).run(spec)  # cold fill
        store_a = ResultStore(tmp_path / "a.jsonl")
        store_b = ResultStore(tmp_path / "b.jsonl")
        CampaignRunner(cache=cache, store=store_a, workers=1).run(spec)
        CampaignRunner(cache=cache, store=store_b, workers=4).run(spec)
        lines_a = store_a.path.read_bytes()
        assert lines_a == store_b.path.read_bytes()
        assert all(
            json.loads(line)["cached"]
            for line in lines_a.splitlines()
        )


class TestParallelDeterminism:
    def test_workers_1_vs_4_identical_records(self, tmp_path):
        spec = small_spec()
        serial = CampaignRunner(
            cache=ResultCache(tmp_path / "c1"), workers=1
        ).run(spec)
        parallel = CampaignRunner(
            cache=ResultCache(tmp_path / "c4"), workers=4
        ).run(spec)
        assert serial.records == parallel.records
        # Cache contents are byte-identical too: same keys, same values.
        c1 = ResultCache(tmp_path / "c1")
        c4 = ResultCache(tmp_path / "c4")
        for job in spec.expand():
            assert c1.get_job(job) == c4.get_job(job)

    def test_parallel_run_hits_serial_cache(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        CampaignRunner(cache=cache, workers=1).run(spec)
        replay = CampaignRunner(cache=cache, workers=4).run(spec)
        assert (replay.hits, replay.misses) == (4, 0)


class TestTelemetry:
    """The live per-job feed behind `repro sweep --progress`."""

    def collect(self, tmp_path, workers=1, cache=None):
        samples = []
        runner = CampaignRunner(cache=cache, workers=workers)
        out = runner.run(
            small_spec(), telemetry=samples.append
        )
        return out, samples

    def test_one_sample_per_fresh_job(self, tmp_path):
        out, samples = self.collect(tmp_path)
        assert len(samples) == out.misses == 4
        assert [s["done"] for s in samples] == [1, 2, 3, 4]
        assert all(s["total"] == 4 for s in samples)
        assert all(s["failed"] == 0 for s in samples)
        assert samples[-1]["running"] == 0

    def test_sample_schema(self, tmp_path):
        _, samples = self.collect(tmp_path)
        expected_keys = {
            "job_id", "status", "done", "total", "cached", "failed",
            "running", "elapsed_seconds", "eta_seconds",
        }
        for sample in samples:
            assert set(sample) == expected_keys
            assert sample["status"] == "ok"
            assert sample["elapsed_seconds"] >= 0.0
        # The first sample has no rate estimate basis beyond itself;
        # later ones extrapolate the remaining work.
        assert samples[0]["eta_seconds"] is not None
        assert samples[-1]["eta_seconds"] == 0.0

    def test_pool_path_streams_samples_too(self, tmp_path):
        out, samples = self.collect(tmp_path, workers=2)
        assert not out.errors
        assert len(samples) == 4
        assert [s["done"] for s in samples] == [1, 2, 3, 4]

    def test_cached_jobs_emit_no_samples(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        CampaignRunner(cache=cache).run(small_spec())
        _, samples = self.collect(tmp_path, cache=cache)
        assert samples == []

    def test_failed_jobs_are_counted(self, flaky_kind, tmp_path):
        samples = []
        out = CampaignRunner().run(
            [flaky_job()], telemetry=samples.append
        )
        assert out.errors == 1
        assert samples[-1]["failed"] == 1
        assert samples[-1]["status"] == "error"
