"""Tests for repro.dnn.training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.datasets import synthetic_digits
from repro.dnn.layers import Linear, ReLU, Sequential
from repro.dnn.models import LeNet5
from repro.dnn.training import SGD, evaluate_accuracy, train_classifier


def tiny_mlp(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        [Linear(32 * 32, 32, rng=rng), ReLU(), Linear(32, 10, rng=rng)]
    )


class FlattenedDigits:
    """Adapter feeding flattened digit images to an MLP."""

    def __init__(self, n, seed):
        self.ds = synthetic_digits(n, seed=seed)

    def batches(self, batch_size, rng=None):
        for images, labels in self.ds.batches(batch_size, rng=rng):
            yield images.reshape(images.shape[0], -1), labels

    def __len__(self):
        return len(self.ds)


class TestSGD:
    def test_step_moves_parameters(self):
        model = tiny_mlp()
        opt = SGD(model, lr=0.1, momentum=0.0)
        x = np.random.default_rng(0).normal(size=(4, 1024))
        before = [p.value.copy() for p in model.parameters()]
        out = model.forward(x)
        model.backward(np.ones_like(out))
        opt.step()
        after = [p.value for p in model.parameters()]
        assert any(
            not np.array_equal(b, a) for b, a in zip(before, after)
        )

    def test_momentum_accumulates(self):
        model = tiny_mlp()
        opt = SGD(model, lr=0.1, momentum=0.9)
        x = np.ones((1, 1024))
        deltas = []
        prev = None
        for _ in range(3):
            model.zero_grad()
            out = model.forward(x)
            model.backward(np.ones_like(out))
            before = next(model.parameters()).value.copy()
            opt.step()
            delta = np.abs(next(model.parameters()).value - before).sum()
            deltas.append(delta)
        # Constant gradient + momentum -> growing step sizes.
        assert deltas[1] > deltas[0]

    def test_weight_decay_shrinks_unused(self):
        model = tiny_mlp()
        opt = SGD(model, lr=0.1, momentum=0.0, weight_decay=0.1)
        norm_before = sum(
            float(np.abs(p.value).sum()) for p in model.parameters()
        )
        # Zero gradients: only decay acts.
        model.zero_grad()
        opt.step()
        norm_after = sum(
            float(np.abs(p.value).sum()) for p in model.parameters()
        )
        assert norm_after < norm_before

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD(tiny_mlp(), lr=0.0)


class TestTrainClassifier:
    def test_loss_decreases_mlp(self):
        model = tiny_mlp(seed=1)
        data = FlattenedDigits(256, seed=4)
        report = train_classifier(
            model, data, epochs=4, batch_size=32, lr=0.1, seed=1
        )
        assert report.losses[-1] < report.losses[0]

    def test_loss_decreases_lenet(self):
        model = LeNet5(rng=np.random.default_rng(2))
        ds = synthetic_digits(160, seed=5)
        report = train_classifier(
            model, ds, epochs=2, batch_size=32, lr=0.05, seed=2
        )
        assert report.losses[-1] < report.losses[0]

    def test_accuracy_tracking(self):
        model = tiny_mlp(seed=1)
        data = FlattenedDigits(128, seed=4)
        report = train_classifier(
            model, data, epochs=2, batch_size=32, track_accuracy=True
        )
        assert len(report.accuracies) == 2
        assert all(0.0 <= a <= 1.0 for a in report.accuracies)

    def test_final_loss_property(self):
        model = tiny_mlp(seed=1)
        data = FlattenedDigits(64, seed=4)
        report = train_classifier(model, data, epochs=1, batch_size=32)
        assert report.final_loss == report.losses[-1]

    def test_beats_chance_after_training(self):
        model = tiny_mlp(seed=1)
        data = FlattenedDigits(512, seed=4)
        train_classifier(model, data, epochs=6, batch_size=32, lr=0.1, seed=1)
        acc = evaluate_accuracy(model, data)
        assert acc > 0.3  # chance is 0.1

    def test_deterministic(self):
        losses = []
        for _ in range(2):
            model = tiny_mlp(seed=1)
            data = FlattenedDigits(64, seed=4)
            report = train_classifier(
                model, data, epochs=1, batch_size=16, seed=9
            )
            losses.append(report.final_loss)
        assert losses[0] == losses[1]
