"""Tests for repro.dnn.models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.layers import Conv2d, Linear
from repro.dnn.models import DarkNetSlim, LeNet5, build_model


class TestLeNet5:
    def test_forward_shape(self, small_lenet):
        x = np.zeros((2, 1, 32, 32))
        assert small_lenet.forward(x).shape == (2, 10)

    def test_input_shape_metadata(self, small_lenet):
        assert small_lenet.input_shape == (1, 32, 32)
        assert small_lenet.name == "lenet"

    def test_weighted_layer_walk(self, small_lenet):
        layers = list(small_lenet.weighted_layers())
        assert len(layers) == 5  # conv1, conv2, fc1, fc2, fc3
        assert isinstance(layers[0][1], Conv2d)
        assert isinstance(layers[-1][1], Linear)

    def test_parameter_count(self, small_lenet):
        # Classic LeNet-5 has 61,706 parameters.
        assert small_lenet.parameter_count() == 61706

    def test_max_pool_variant(self):
        model = LeNet5(pool="max", rng=np.random.default_rng(0))
        assert model.forward(np.zeros((1, 1, 32, 32))).shape == (1, 10)

    def test_invalid_pool(self):
        with pytest.raises(ValueError):
            LeNet5(pool="median")

    def test_deterministic_given_seed(self):
        a = LeNet5(rng=np.random.default_rng(5))
        b = LeNet5(rng=np.random.default_rng(5))
        x = np.random.default_rng(0).normal(size=(1, 1, 32, 32))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_predict(self, small_lenet, digit_image):
        preds = small_lenet.predict(digit_image[None])
        assert preds.shape == (1,)
        assert 0 <= preds[0] < 10


class TestDarkNetSlim:
    def test_forward_shape(self):
        model = DarkNetSlim(rng=np.random.default_rng(0))
        x = np.zeros((2, 3, 64, 64))
        assert model.forward(x).shape == (2, 10)

    def test_reduced_input_size(self):
        # The paper reduces DarkNet's input to 64x64x3 (Sec. V-B).
        model = DarkNetSlim(rng=np.random.default_rng(0))
        assert model.input_shape == (3, 64, 64)

    def test_has_four_conv_stages(self):
        model = DarkNetSlim(rng=np.random.default_rng(0))
        convs = [
            layer
            for _, layer in model.weighted_layers()
            if isinstance(layer, Conv2d)
        ]
        assert len(convs) == 4
        assert [c.out_channels for c in convs] == [16, 32, 64, 128]

    def test_deeper_than_lenet(self, small_lenet):
        model = DarkNetSlim(rng=np.random.default_rng(0))
        assert model.parameter_count() > small_lenet.parameter_count()


class TestBuildModel:
    def test_lenet(self):
        assert build_model("lenet").name == "lenet"

    def test_darknet(self):
        assert build_model("DarkNet").name == "darknet"

    def test_unknown(self):
        with pytest.raises(ValueError):
            build_model("resnet")
