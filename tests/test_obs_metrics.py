"""The metrics registry and its publication paths.

Two contracts matter:

1. Determinism — ``RunResult.metrics`` (and the counters inside job
   records) is part of the simulation output: byte-identical whether a
   registry is enabled or not and regardless of sweep worker count.
2. Single publication — enabling a registry around a sweep yields each
   counter exactly once (the runner's post-run aggregate), never the
   runner's merge *plus* the simulator's direct merge.
"""

from __future__ import annotations

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import RunResult, run_model_on_noc
from repro.experiments.cache import ResultCache
from repro.experiments.runner import CampaignRunner
from repro.experiments.spec import SweepSpec
from repro.obs.metrics import (
    MetricsRegistry,
    active_registry,
    disable_metrics,
    enable_metrics,
    merge_metrics,
    metric_family,
    metrics_enabled,
    metrics_session,
    metrics_suspended,
)


@pytest.fixture(autouse=True)
def _no_leaked_registry():
    """Every test starts and ends with metrics disabled."""
    disable_metrics()
    yield
    disable_metrics()


class TestMergeMetrics:
    def test_sums_plain_counters(self):
        into = {"a.x": 1}
        assert merge_metrics(into, {"a.x": 2, "b.y": 3}) is into
        assert into == {"a.x": 3, "b.y": 3}

    def test_peak_names_merge_by_max(self):
        into = {"r.occ.peak": 5}
        merge_metrics(into, {"r.occ.peak": 3})
        assert into["r.occ.peak"] == 5
        merge_metrics(into, {"r.occ.peak": 9})
        assert into["r.occ.peak"] == 9

    def test_non_numeric_overwrites(self):
        into = {"tag": "old"}
        merge_metrics(into, {"tag": "new"})
        assert into["tag"] == "new"

    def test_family_is_prefix_before_first_dot(self):
        assert metric_family("event.heap_pushes") == "event"
        assert metric_family("router.buffer_occupancy.peak") == "router"
        assert metric_family("plain") == "plain"


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.count("a.hits")
        reg.count("a.hits", 4)
        assert reg.snapshot() == {"a.hits": 5}

    def test_record_max_keeps_running_maximum(self):
        reg = MetricsRegistry()
        reg.record_max("q.depth.peak", 3)
        reg.record_max("q.depth.peak", 7)
        reg.record_max("q.depth.peak", 2)
        assert reg.snapshot()["q.depth.peak"] == 7

    def test_histograms_flatten_to_scalars(self):
        reg = MetricsRegistry()
        for v in (2.0, 5.0, 3.0):
            reg.observe("lat", v)
        snap = reg.snapshot()
        assert snap["lat.count"] == 3
        assert snap["lat.total"] == 10.0
        assert snap["lat.max.peak"] == 5.0

    def test_timer_records_a_histogram_sample(self):
        reg = MetricsRegistry()
        with reg.timer("work.seconds"):
            pass
        snap = reg.snapshot()
        assert snap["work.seconds.count"] == 1
        assert snap["work.seconds.total"] >= 0.0

    def test_merge_routes_peaks_and_counters(self):
        reg = MetricsRegistry()
        reg.merge({"a.n": 2, "a.d.peak": 4, "skip": "text"})
        reg.merge({"a.n": 3, "a.d.peak": 1})
        snap = reg.snapshot()
        assert snap == {"a.n": 5, "a.d.peak": 4}

    def test_families_group_by_prefix(self):
        reg = MetricsRegistry()
        reg.count("event.pops", 1)
        reg.count("router.grants", 2)
        reg.record_max("router.occ.peak", 3)
        fams = reg.families()
        assert set(fams) == {"event", "router"}
        assert set(fams["router"]) == {"router.grants", "router.occ.peak"}

    def test_len_counts_distinct_metrics(self):
        reg = MetricsRegistry()
        assert len(reg) == 0
        reg.count("a", 1)
        reg.record_max("b.peak", 1)
        reg.observe("c", 1.0)
        assert len(reg) == 3


class TestSessionState:
    def test_disabled_by_default(self):
        assert active_registry() is None
        assert not metrics_enabled()

    def test_enable_disable(self):
        reg = enable_metrics()
        assert active_registry() is reg
        assert metrics_enabled()
        disable_metrics()
        assert active_registry() is None

    def test_session_restores_previous(self):
        outer = enable_metrics()
        with metrics_session() as inner:
            assert active_registry() is inner
            assert inner is not outer
        assert active_registry() is outer

    def test_session_accepts_existing_registry(self):
        mine = MetricsRegistry()
        with metrics_session(mine) as reg:
            assert reg is mine
            assert active_registry() is mine
        assert active_registry() is None

    def test_suspended_hides_and_restores(self):
        reg = enable_metrics()
        with metrics_suspended():
            assert active_registry() is None
        assert active_registry() is reg

    def test_suspended_is_a_no_op_when_disabled(self):
        with metrics_suspended():
            assert active_registry() is None
        assert active_registry() is None


def _tiny_run(small_lenet, digit_image) -> RunResult:
    config = AcceleratorConfig(
        width=3, height=3, n_mcs=1, max_tasks_per_layer=2, seed=11
    )
    return run_model_on_noc(config, small_lenet, digit_image)


class TestRunResultMetrics:
    def test_metrics_identical_with_and_without_registry(
        self, small_lenet, digit_image
    ):
        bare = _tiny_run(small_lenet, digit_image)
        with metrics_session():
            observed = _tiny_run(small_lenet, digit_image)
        assert bare.metrics == observed.metrics
        assert bare.metrics  # non-empty

    def test_expected_counter_families_present(
        self, small_lenet, digit_image
    ):
        result = _tiny_run(small_lenet, digit_image)
        families = {metric_family(name) for name in result.metrics}
        assert {"event", "router", "codec"} <= families
        assert result.metrics["event.steps_executed"] == (
            result.steps_executed
        )
        assert result.metrics["event.idle_cycles_skipped"] == (
            result.idle_cycles_skipped
        )
        assert result.metrics["router.vc_grants"] > 0
        assert result.metrics["router.buffer_occupancy.peak"] >= 1
        assert result.metrics["codec.batch_chunks"] > 0
        assert result.metrics["codec.scalar_chunks"] == 0

    def test_simulator_publishes_into_active_registry(
        self, small_lenet, digit_image
    ):
        with metrics_session() as reg:
            result = _tiny_run(small_lenet, digit_image)
        snap = reg.snapshot()
        for name, value in result.metrics.items():
            assert snap[name] == value

    def test_round_trip_keeps_metrics(self, small_lenet, digit_image):
        result = _tiny_run(small_lenet, digit_image)
        back = RunResult.from_dict(result.to_dict())
        assert back.metrics == result.metrics
        assert back.steps_executed == result.steps_executed
        assert back.idle_cycles_skipped == result.idle_cycles_skipped

    def test_old_payloads_default_new_fields(self):
        result = RunResult(
            config=AcceleratorConfig(width=2, height=2, n_mcs=1),
            total_bit_transitions=1,
            total_cycles=2,
            flit_hops=3,
            layers=[],
            tasks_verified=1,
            tasks_total=1,
            mean_packet_latency=0.0,
            ordering_latency_cycles=0,
        )
        payload = result.to_dict()
        for key in ("steps_executed", "idle_cycles_skipped", "metrics"):
            payload.pop(key)
        back = RunResult.from_dict(payload)
        assert back.steps_executed == 0
        assert back.idle_cycles_skipped == 0
        assert back.metrics == {}


def _smoke_spec(name: str) -> SweepSpec:
    """A tiny fig12-style model sweep (one mesh, two orderings)."""
    return SweepSpec(
        name=name,
        base={"max_tasks_per_layer": 2, "seed": 11},
        axes={"mesh": ["3x3:1"], "ordering": ["O0", "O2"]},
    )


class TestSweepMetrics:
    def test_campaign_metrics_cover_all_four_families(self, tmp_path):
        """Acceptance: a fig12 smoke sweep with metrics enabled emits
        event-core, router, codec, and cache counter families."""
        runner = CampaignRunner(
            cache=ResultCache(tmp_path / "cache"), workers=1
        )
        with metrics_session() as reg:
            out = runner.run(_smoke_spec("obs_smoke"))
        assert not out.errors, out.summary()
        families = {metric_family(name) for name in out.metrics}
        assert {"event", "router", "codec", "cache", "runner"} <= families
        snap = reg.snapshot()
        assert {metric_family(name) for name in snap} >= {
            "event", "router", "codec", "cache",
        }
        assert out.metrics["cache.misses"] == 2
        assert out.metrics["runner.jobs"] == 2

    def test_no_double_counting_through_registry(self, tmp_path):
        """The runner aggregate is the only publication path: the
        registry total equals the record totals exactly."""
        runner = CampaignRunner(
            cache=ResultCache(tmp_path / "cache"), workers=1
        )
        with metrics_session() as reg:
            out = runner.run(_smoke_spec("obs_once"))
        expected = 0
        for record in out.records:
            expected += record["result"]["metrics"]["event.steps_executed"]
        assert out.metrics["event.steps_executed"] == expected
        assert reg.snapshot()["event.steps_executed"] == expected

    def test_cached_records_still_contribute_metrics(self, tmp_path):
        runner = CampaignRunner(
            cache=ResultCache(tmp_path / "cache"), workers=1
        )
        cold = runner.run(_smoke_spec("obs_cached"))
        warm = runner.run(_smoke_spec("obs_cached"))
        assert warm.hits == 2 and warm.misses == 0
        for name, value in cold.metrics.items():
            if name.startswith(("cache.", "runner.")):
                continue
            assert warm.metrics[name] == value

    def test_record_metrics_match_across_worker_counts(self, tmp_path):
        """Job-record determinism extends to the metrics payloads."""
        inline = CampaignRunner(workers=1).run(_smoke_spec("obs_w"))
        pooled = CampaignRunner(workers=2).run(_smoke_spec("obs_w"))
        assert not inline.errors and not pooled.errors
        for a, b in zip(inline.records, pooled.records):
            assert a["result"]["metrics"] == b["result"]["metrics"]
            assert a["result"]["steps_executed"] == (
                b["result"]["steps_executed"]
            )
